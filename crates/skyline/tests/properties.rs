//! Property-based tests for the skyline operators.

use gss_skyline::{
    bnl_skyline, compare, dc2_skyline, dominates, k_skyband, naive_skyline, sfs_skyline,
    top_k_dominating, Dominance,
};
use proptest::prelude::*;

/// Strategy: a set of points with small integer coordinates (plenty of ties
/// and duplicates, the hard cases for skyline code).
fn points(max_n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..8).prop_map(f64::from), d..=d),
        0..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn all_algorithms_agree(pts in points(60, 3)) {
        let reference = naive_skyline(&pts);
        prop_assert_eq!(bnl_skyline(&pts), reference.clone());
        prop_assert_eq!(sfs_skyline(&pts), reference);
    }

    #[test]
    fn dc2_agrees_in_two_dimensions(pts in points(60, 2)) {
        prop_assert_eq!(dc2_skyline(&pts), naive_skyline(&pts));
    }

    #[test]
    fn skyline_is_sound_and_complete(pts in points(40, 3)) {
        let sky = bnl_skyline(&pts);
        for &s in &sky {
            for p in &pts {
                prop_assert!(!dominates(p, &pts[s]), "skyline member dominated");
            }
        }
        for i in 0..pts.len() {
            if !sky.contains(&i) {
                prop_assert!(
                    sky.iter().any(|&s| dominates(&pts[s], &pts[i])),
                    "excluded point must have a skyline dominator"
                );
            }
        }
    }

    #[test]
    fn dominance_is_a_strict_partial_order(
        a in prop::collection::vec((0u8..6).prop_map(f64::from), 3),
        b in prop::collection::vec((0u8..6).prop_map(f64::from), 3),
        c in prop::collection::vec((0u8..6).prop_map(f64::from), 3),
    ) {
        // Irreflexive.
        prop_assert!(!dominates(&a, &a));
        // Asymmetric.
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
            prop_assert_eq!(compare(&b, &a), Dominance::DominatedBy);
        }
        // Transitive.
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    #[test]
    fn skyband_is_monotone_and_contains_skyline(pts in points(40, 3), k in 1usize..5) {
        let sky = naive_skyline(&pts);
        let band_k = k_skyband(&pts, k);
        let band_k1 = k_skyband(&pts, k + 1);
        for s in &sky {
            prop_assert!(band_k.contains(s), "skyband ⊇ skyline");
        }
        for s in &band_k {
            prop_assert!(band_k1.contains(s), "skyband monotone in k");
        }
        prop_assert_eq!(k_skyband(&pts, 1), sky);
    }

    #[test]
    fn top_k_dominating_size_and_scores(pts in points(40, 3), k in 0usize..6) {
        let top = top_k_dominating(&pts, k);
        prop_assert_eq!(top.len(), k.min(pts.len()));
        // Every returned point's dominated-count is >= that of every
        // non-returned point (allowing ties broken by index).
        let score = |i: usize| {
            pts.iter().enumerate().filter(|&(j, q)| j != i && dominates(&pts[i], q)).count()
        };
        if let Some(min_in) = top.iter().map(|&i| score(i)).min() {
            for i in 0..pts.len() {
                if !top.contains(&i) {
                    prop_assert!(score(i) <= min_in, "missed a higher-scoring point");
                }
            }
        }
    }
}
