//! Skyline computation algorithms.
//!
//! All functions return the **indices** of skyline members in ascending
//! order and agree exactly (verified by tests and by the property suite in
//! the workspace root): they differ only in work performed.
//!
//! * [`naive_skyline`] — textbook `O(n²·d)` double loop; the reference.
//! * [`bnl_skyline`] — block-nested-loops (Börzsönyi et al., ICDE 2001, the
//!   paper's reference \[17\]): maintains a window of incomparable points.
//! * [`sfs_skyline`] — sort-filter-skyline: presorts by the coordinate sum
//!   (a monotone score), after which a point can only be dominated by
//!   already-accepted points, so one window pass suffices.
//! * [`dc2_skyline`] — `O(n log n)` sweep for the two-dimensional case.

use crate::dominance::{compare, Dominance};

/// Counters reported by the `*_with_stats` variants.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SkylineStats {
    /// Number of pairwise dominance comparisons performed.
    pub comparisons: u64,
}

/// Reference `O(n²)` skyline.
pub fn naive_skyline(points: &[Vec<f64>]) -> Vec<usize> {
    naive_skyline_with_stats(points).0
}

/// [`naive_skyline`] plus comparison counts.
pub fn naive_skyline_with_stats(points: &[Vec<f64>]) -> (Vec<usize>, SkylineStats) {
    let mut stats = SkylineStats::default();
    let mut out = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            stats.comparisons += 1;
            if compare(q, p) == Dominance::Dominates {
                continue 'outer;
            }
        }
        out.push(i);
    }
    (out, stats)
}

/// Block-nested-loops skyline.
pub fn bnl_skyline(points: &[Vec<f64>]) -> Vec<usize> {
    bnl_skyline_with_stats(points).0
}

/// [`bnl_skyline`] plus comparison counts.
pub fn bnl_skyline_with_stats(points: &[Vec<f64>]) -> (Vec<usize>, SkylineStats) {
    let mut stats = SkylineStats::default();
    let mut window: Vec<usize> = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        let mut k = 0;
        while k < window.len() {
            stats.comparisons += 1;
            match compare(&points[window[k]], p) {
                Dominance::Dominates => continue 'outer,
                Dominance::DominatedBy => {
                    window.swap_remove(k);
                }
                Dominance::Incomparable | Dominance::Equal => k += 1,
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    (window, stats)
}

/// Sort-filter-skyline.
pub fn sfs_skyline(points: &[Vec<f64>]) -> Vec<usize> {
    sfs_skyline_with_stats(points).0
}

/// [`sfs_skyline`] plus comparison counts.
pub fn sfs_skyline_with_stats(points: &[Vec<f64>]) -> (Vec<usize>, SkylineStats) {
    let mut stats = SkylineStats::default();
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Monotone presort: if p dominates q then sum(p) < sum(q), so no point
    // is dominated by a later one; window entries are final skyline members.
    order.sort_by(|&a, &b| {
        let sa: f64 = points[a].iter().sum();
        let sb: f64 = points[b].iter().sum();
        sa.total_cmp(&sb).then(a.cmp(&b))
    });
    let mut window: Vec<usize> = Vec::new();
    'outer: for &i in &order {
        for &w in &window {
            stats.comparisons += 1;
            if compare(&points[w], &points[i]) == Dominance::Dominates {
                continue 'outer;
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    (window, stats)
}

/// `O(n log n)` two-dimensional skyline by sweeping x-groups.
///
/// # Panics
/// Panics when any point is not two-dimensional.
pub fn dc2_skyline(points: &[Vec<f64>]) -> Vec<usize> {
    for p in points {
        assert_eq!(p.len(), 2, "dc2_skyline requires 2-dimensional points");
    }
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a][0]
            .total_cmp(&points[b][0])
            .then(points[a][1].total_cmp(&points[b][1]))
    });
    let mut out = Vec::new();
    let mut best_y = f64::INFINITY;
    let mut i = 0;
    while i < order.len() {
        // Group of equal x.
        let x = points[order[i]][0];
        let mut j = i;
        while j < order.len() && points[order[j]][0] == x {
            j += 1;
        }
        let gmin = points[order[i]][1]; // group sorted by y: first is min
        if gmin < best_y {
            for &idx in &order[i..j] {
                if points[idx][1] == gmin {
                    out.push(idx);
                }
            }
            best_y = gmin;
        }
        i = j;
    }
    out.sort_unstable();
    out
}

/// Algorithm selector for [`skyline`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Algorithm {
    /// Reference double loop.
    Naive,
    /// Block-nested-loops (default).
    #[default]
    Bnl,
    /// Sort-filter-skyline.
    Sfs,
    /// 2-d divide & conquer sweep (falls back to BNL for other d).
    DivideConquer2D,
}

/// Computes the skyline of `points` (minimizing every dimension) with the
/// chosen algorithm. Returns ascending indices.
pub fn skyline(points: &[Vec<f64>], algorithm: Algorithm) -> Vec<usize> {
    match algorithm {
        Algorithm::Naive => naive_skyline(points),
        Algorithm::Bnl => bnl_skyline(points),
        Algorithm::Sfs => sfs_skyline(points),
        Algorithm::DivideConquer2D => {
            if points.iter().all(|p| p.len() == 2) {
                dc2_skyline(points)
            } else {
                bnl_skyline(points)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::Rng;

    /// The paper's Table I (hotels): skyline must be {H2, H4, H6}.
    fn hotels() -> Vec<Vec<f64>> {
        vec![
            vec![4.0, 150.0], // H1
            vec![3.0, 110.0], // H2 ✓
            vec![2.5, 240.0], // H3
            vec![2.0, 180.0], // H4 ✓
            vec![1.7, 270.0], // H5
            vec![1.0, 195.0], // H6 ✓
            vec![1.2, 210.0], // H7
        ]
    }

    #[test]
    fn hotels_example_matches_paper() {
        let expected = vec![1, 3, 5];
        assert_eq!(naive_skyline(&hotels()), expected);
        assert_eq!(bnl_skyline(&hotels()), expected);
        assert_eq!(sfs_skyline(&hotels()), expected);
        assert_eq!(dc2_skyline(&hotels()), expected);
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<Vec<f64>> = vec![];
        for algo in [
            Algorithm::Naive,
            Algorithm::Bnl,
            Algorithm::Sfs,
            Algorithm::DivideConquer2D,
        ] {
            assert!(skyline(&empty, algo).is_empty());
        }
        let one = vec![vec![3.0, 4.0]];
        for algo in [
            Algorithm::Naive,
            Algorithm::Bnl,
            Algorithm::Sfs,
            Algorithm::DivideConquer2D,
        ] {
            assert_eq!(skyline(&one, algo), vec![0]);
        }
    }

    #[test]
    fn duplicates_all_survive() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        for algo in [
            Algorithm::Naive,
            Algorithm::Bnl,
            Algorithm::Sfs,
            Algorithm::DivideConquer2D,
        ] {
            assert_eq!(skyline(&pts, algo), vec![0, 1], "{algo:?}");
        }
    }

    #[test]
    fn single_total_order_chain() {
        let pts = vec![vec![3.0], vec![1.0], vec![2.0]];
        for algo in [Algorithm::Naive, Algorithm::Bnl, Algorithm::Sfs] {
            assert_eq!(skyline(&pts, algo), vec![1], "{algo:?}");
        }
    }

    #[test]
    fn all_incomparable() {
        let pts = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        for algo in [
            Algorithm::Naive,
            Algorithm::Bnl,
            Algorithm::Sfs,
            Algorithm::DivideConquer2D,
        ] {
            assert_eq!(skyline(&pts, algo), vec![0, 1, 2], "{algo:?}");
        }
    }

    #[test]
    fn algorithms_agree_on_random_data() {
        let mut rng = Rng::seed_from_u64(0x51c1);
        for case in 0..40 {
            let n = 1 + rng.gen_index(120);
            let d = 1 + rng.gen_index(4);
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..d).map(|_| (rng.gen_index(8)) as f64).collect())
                .collect();
            let reference = naive_skyline(&pts);
            assert_eq!(bnl_skyline(&pts), reference, "case {case} bnl");
            assert_eq!(sfs_skyline(&pts), reference, "case {case} sfs");
            if d == 2 {
                assert_eq!(dc2_skyline(&pts), reference, "case {case} dc2");
            }
        }
    }

    #[test]
    fn sfs_does_no_more_comparisons_than_naive() {
        let mut rng = Rng::seed_from_u64(0x77);
        let pts: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen_f64(), rng.gen_f64(), rng.gen_f64()])
            .collect();
        let (_, naive) = naive_skyline_with_stats(&pts);
        let (_, sfs) = sfs_skyline_with_stats(&pts);
        let (_, bnl) = bnl_skyline_with_stats(&pts);
        assert!(sfs.comparisons <= naive.comparisons);
        assert!(bnl.comparisons <= naive.comparisons);
    }

    #[test]
    fn skyline_members_are_not_dominated_and_cover_rest() {
        use crate::dominance::dominates;
        let mut rng = Rng::seed_from_u64(0xcab);
        let pts: Vec<Vec<f64>> = (0..80)
            .map(|_| {
                vec![
                    (rng.gen_index(6)) as f64,
                    (rng.gen_index(6)) as f64,
                    (rng.gen_index(6)) as f64,
                ]
            })
            .collect();
        let sky = bnl_skyline(&pts);
        // (1) no member is dominated by any point
        for &s in &sky {
            for p in &pts {
                assert!(!dominates(p, &pts[s]));
            }
        }
        // (2) every non-member is dominated by some member
        for i in 0..pts.len() {
            if !sky.contains(&i) {
                assert!(
                    sky.iter().any(|&s| dominates(&pts[s], &pts[i])),
                    "non-member {i} must have a dominating witness"
                );
            }
        }
    }
}
