//! Pareto dominance on numeric vectors (Definition 1 of the paper).
//!
//! All dimensions are **minimized**: point `p` dominates `q` iff `p[i] ≤
//! q[i]` on every dimension and `p[j] < q[j]` on at least one. Identical
//! points do not dominate each other (both survive in a skyline).

/// Relation between two points under Pareto dominance.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Dominance {
    /// The first point dominates the second.
    Dominates,
    /// The first point is dominated by the second.
    DominatedBy,
    /// Neither dominates (including the equal-points case).
    Incomparable,
    /// The points are identical in every dimension.
    Equal,
}

/// Compares `a` and `b` under minimizing Pareto dominance.
///
/// # Panics
/// Panics when the dimensionalities differ.
pub fn compare(a: &[f64], b: &[f64]) -> Dominance {
    assert_eq!(a.len(), b.len(), "points must share dimensionality");
    let mut a_better = false;
    let mut b_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            a_better = true;
        } else if y < x {
            b_better = true;
        }
        if a_better && b_better {
            return Dominance::Incomparable;
        }
    }
    match (a_better, b_better) {
        (true, false) => Dominance::Dominates,
        (false, true) => Dominance::DominatedBy,
        (false, false) => Dominance::Equal,
        (true, true) => unreachable!("early return above"),
    }
}

/// True iff `a` dominates `b` (the paper's `a ≻ b`).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    compare(a, b) == Dominance::Dominates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 3.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal: no strict dim
    }

    #[test]
    fn incomparable_points() {
        assert_eq!(compare(&[1.0, 5.0], &[2.0, 3.0]), Dominance::Incomparable);
        assert_eq!(compare(&[2.0, 3.0], &[1.0, 5.0]), Dominance::Incomparable);
    }

    #[test]
    fn equal_and_oriented() {
        assert_eq!(compare(&[1.0, 1.0], &[1.0, 1.0]), Dominance::Equal);
        assert_eq!(compare(&[0.0], &[1.0]), Dominance::Dominates);
        assert_eq!(compare(&[1.0], &[0.0]), Dominance::DominatedBy);
    }

    #[test]
    fn antisymmetry_and_transitivity_spotcheck() {
        let pts: [&[f64]; 3] = [&[1.0, 1.0, 4.0], &[1.0, 2.0, 4.0], &[2.0, 2.0, 4.0]];
        assert!(dominates(pts[0], pts[1]));
        assert!(dominates(pts[1], pts[2]));
        assert!(dominates(pts[0], pts[2])); // transitive
        assert!(!dominates(pts[2], pts[0])); // antisymmetric
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn mismatched_dims_panic() {
        compare(&[1.0], &[1.0, 2.0]);
    }
}
