//! Skyline-adjacent operators from the related-work space: k-skyband and
//! top-k dominating queries (references \[18\]–\[21\] of the paper). They
//! serve as baselines for the evaluation harness.

use crate::dominance::{compare, Dominance};

/// The k-skyband: points dominated by **fewer than** `k` other points.
/// `k = 1` is exactly the skyline.
pub fn k_skyband(points: &[Vec<f64>], k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let mut dominators = 0usize;
        for (j, q) in points.iter().enumerate() {
            if i != j && compare(q, p) == Dominance::Dominates {
                dominators += 1;
                if dominators >= k {
                    break;
                }
            }
        }
        if dominators < k {
            out.push(i);
        }
    }
    out
}

/// Top-k dominating query: the `k` points that dominate the most others
/// (ties broken by smaller index). Unlike the skyline this always returns
/// exactly `min(k, n)` points.
pub fn top_k_dominating(points: &[Vec<f64>], k: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, usize)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let score = points
                .iter()
                .enumerate()
                .filter(|&(j, q)| i != j && compare(p, q) == Dominance::Dominates)
                .count();
            (i, score)
        })
        .collect();
    scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    let mut out: Vec<usize> = scored.into_iter().map(|(i, _)| i).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive_skyline;

    fn hotels() -> Vec<Vec<f64>> {
        vec![
            vec![4.0, 150.0],
            vec![3.0, 110.0],
            vec![2.5, 240.0],
            vec![2.0, 180.0],
            vec![1.7, 270.0],
            vec![1.0, 195.0],
            vec![1.2, 210.0],
        ]
    }

    #[test]
    fn skyband_1_is_skyline() {
        let pts = hotels();
        assert_eq!(k_skyband(&pts, 1), naive_skyline(&pts));
    }

    #[test]
    fn skyband_grows_with_k() {
        let pts = hotels();
        let s1 = k_skyband(&pts, 1);
        let s2 = k_skyband(&pts, 2);
        let s3 = k_skyband(&pts, 100);
        assert!(s1.len() <= s2.len());
        assert!(s2.len() <= s3.len());
        assert_eq!(s3.len(), pts.len(), "huge k keeps everything");
        for i in &s1 {
            assert!(s2.contains(i), "skyband must be monotone in k");
        }
    }

    #[test]
    fn skyband_zero_is_empty() {
        assert!(k_skyband(&hotels(), 0).is_empty());
    }

    #[test]
    fn top_k_dominating_counts() {
        // Dominance scores: H6 (1.0,195) dominates H3, H5, H7 → 3;
        // H7 (1.2,210) dominates H3, H5 → 2; H2 → {H1}; H4 → {H3}.
        // Note the contrast with the skyline: H7 is *not* Pareto-optimal
        // (H6 dominates it) yet ranks second by dominated count.
        let pts = hotels();
        let top2 = top_k_dominating(&pts, 2);
        assert_eq!(top2, vec![5, 6]); // H6 and H7
        assert_eq!(top_k_dominating(&pts, 0).len(), 0);
        assert_eq!(top_k_dominating(&pts, 100).len(), pts.len());
    }
}
