//! # gss-skyline — generic Pareto skyline operators
//!
//! The skyline machinery the graph-similarity-skyline engine (Section V of
//! Abbaci et al., GDM/ICDE 2011) runs on, factored out as a standalone,
//! domain-independent crate: every "point" is a `Vec<f64>` whose dimensions
//! are all **minimized** (Definitions 1–2 of the paper).
//!
//! * [`dominance`] — the Pareto dominance relation;
//! * [`algorithms`] — naive, block-nested-loops, sort-filter-skyline and a
//!   2-d sweep, all returning identical results;
//! * [`extensions`] — k-skyband and top-k dominating baselines.
//!
//! ```
//! use gss_skyline::{skyline, Algorithm};
//!
//! // The paper's hotel example (Table I): price and beach distance.
//! let hotels = vec![
//!     vec![4.0, 150.0], vec![3.0, 110.0], vec![2.5, 240.0],
//!     vec![2.0, 180.0], vec![1.7, 270.0], vec![1.0, 195.0],
//!     vec![1.2, 210.0],
//! ];
//! // Skyline = {H2, H4, H6} (0-based indices 1, 3, 5).
//! assert_eq!(skyline(&hotels, Algorithm::Bnl), vec![1, 3, 5]);
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod dominance;
pub mod extensions;

pub use algorithms::{
    bnl_skyline, dc2_skyline, naive_skyline, sfs_skyline, skyline, Algorithm, SkylineStats,
};
pub use dominance::{compare, dominates, Dominance};
pub use extensions::{k_skyband, top_k_dominating};
