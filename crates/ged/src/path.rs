//! Vertex mappings, their induced edit cost, and edit-path extraction.
//!
//! Every (partial) injective vertex mapping between two graphs induces a
//! canonical edit path: relabel/delete/insert vertices according to the
//! mapping, then fix up edges pair by pair. For cost models where an
//! operation is never cheaper when simulated by other operations (true for
//! the uniform model), the minimum over all mappings *is* the graph edit
//! distance — this is the classical mapping formulation the solvers in this
//! crate search over.

use gss_graph::{Graph, Label, VertexId};

use crate::cost::CostModel;

/// A complete vertex mapping from `g1` to `g2`.
///
/// `map[u] = Some(v)` means `u → v` (substitution, relabeling if labels
/// differ); `map[u] = None` means `u` is deleted; `g2` vertices that are not
/// images are inserted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexMapping {
    /// Image of each `g1` vertex.
    pub map: Vec<Option<VertexId>>,
}

impl VertexMapping {
    /// The identity-shaped empty mapping for a graph with `n1` vertices
    /// (everything deleted).
    pub fn all_deleted(n1: usize) -> Self {
        VertexMapping {
            map: vec![None; n1],
        }
    }

    /// Inverse map: for each `g2` vertex, its `g1` preimage.
    pub fn inverse(&self, n2: usize) -> Vec<Option<VertexId>> {
        let mut inv = vec![None; n2];
        for (u, m) in self.map.iter().enumerate() {
            if let Some(v) = m {
                inv[v.index()] = Some(VertexId::new(u));
            }
        }
        inv
    }
}

/// A single edit operation (for reporting; costs come from [`CostModel`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Change the label of a `g1` vertex.
    RelabelVertex {
        /// The vertex in `g1`.
        vertex: VertexId,
        /// Original label.
        from: Label,
        /// New label.
        to: Label,
    },
    /// Delete a `g1` vertex.
    DeleteVertex {
        /// The vertex in `g1`.
        vertex: VertexId,
    },
    /// Insert a vertex matching the given `g2` vertex.
    InsertVertex {
        /// The vertex in `g2` being materialized.
        vertex: VertexId,
        /// Its label.
        label: Label,
    },
    /// Change the label of a `g1` edge.
    RelabelEdge {
        /// Endpoints in `g1`.
        u: VertexId,
        /// Second endpoint in `g1`.
        v: VertexId,
        /// Original label.
        from: Label,
        /// New label.
        to: Label,
    },
    /// Delete a `g1` edge.
    DeleteEdge {
        /// Endpoints in `g1`.
        u: VertexId,
        /// Second endpoint in `g1`.
        v: VertexId,
    },
    /// Insert an edge matching the given `g2` edge.
    InsertEdge {
        /// Endpoints in `g2`.
        u: VertexId,
        /// Second endpoint in `g2`.
        v: VertexId,
        /// Its label.
        label: Label,
    },
}

impl EditOp {
    /// The cost of this operation under `cost`.
    pub fn cost(&self, cost: &CostModel) -> f64 {
        match self {
            EditOp::RelabelVertex { .. } => cost.vertex_rel,
            EditOp::DeleteVertex { .. } => cost.vertex_del,
            EditOp::InsertVertex { .. } => cost.vertex_ins,
            EditOp::RelabelEdge { .. } => cost.edge_rel,
            EditOp::DeleteEdge { .. } => cost.edge_del,
            EditOp::InsertEdge { .. } => cost.edge_ins,
        }
    }

    /// A short human-readable kind tag ("vertex-relabel", "edge-insert", …).
    pub fn kind(&self) -> &'static str {
        match self {
            EditOp::RelabelVertex { .. } => "vertex-relabel",
            EditOp::DeleteVertex { .. } => "vertex-delete",
            EditOp::InsertVertex { .. } => "vertex-insert",
            EditOp::RelabelEdge { .. } => "edge-relabel",
            EditOp::DeleteEdge { .. } => "edge-delete",
            EditOp::InsertEdge { .. } => "edge-insert",
        }
    }
}

/// The exact edit cost induced by a complete vertex mapping.
///
/// Counts, exactly once each:
/// * vertex substitutions (relabel when labels differ), deletions,
///   insertions;
/// * `g1` edges whose endpoints are both mapped — matched against the `g2`
///   edge between the images (none → delete; different label → relabel);
/// * `g1` edges with a deleted endpoint — deletions;
/// * `g2` edges between images with no corresponding `g1` edge — insertions;
/// * `g2` edges with an inserted endpoint — insertions.
pub fn mapping_cost(g1: &Graph, g2: &Graph, mapping: &VertexMapping, cost: &CostModel) -> f64 {
    let total: f64 = edit_path_for_mapping(g1, g2, mapping)
        .iter()
        .map(|op| op.cost(cost))
        .sum();
    // `+ 0.0` normalizes a signed zero so perfect matches display as "0".
    total + 0.0
}

/// Materializes the canonical edit path induced by a mapping.
pub fn edit_path_for_mapping(g1: &Graph, g2: &Graph, mapping: &VertexMapping) -> Vec<EditOp> {
    assert_eq!(
        mapping.map.len(),
        g1.order(),
        "mapping must cover all g1 vertices"
    );
    let inv = mapping.inverse(g2.order());
    let mut ops = Vec::new();

    // Vertex operations.
    for u in g1.vertices() {
        match mapping.map[u.index()] {
            Some(v) => {
                let (lu, lv) = (g1.vertex_label(u), g2.vertex_label(v));
                if lu != lv {
                    ops.push(EditOp::RelabelVertex {
                        vertex: u,
                        from: lu,
                        to: lv,
                    });
                }
            }
            None => ops.push(EditOp::DeleteVertex { vertex: u }),
        }
    }
    for v in g2.vertices() {
        if inv[v.index()].is_none() {
            ops.push(EditOp::InsertVertex {
                vertex: v,
                label: g2.vertex_label(v),
            });
        }
    }

    // g1 edge operations (delete / relabel).
    for e in g1.edges() {
        let edge = g1.edge(e);
        match (mapping.map[edge.u.index()], mapping.map[edge.v.index()]) {
            (Some(iu), Some(iv)) => match g2.edge_between(iu, iv) {
                Some(e2) => {
                    let l2 = g2.edge_label(e2);
                    if l2 != edge.label {
                        ops.push(EditOp::RelabelEdge {
                            u: edge.u,
                            v: edge.v,
                            from: edge.label,
                            to: l2,
                        });
                    }
                }
                None => ops.push(EditOp::DeleteEdge {
                    u: edge.u,
                    v: edge.v,
                }),
            },
            _ => ops.push(EditOp::DeleteEdge {
                u: edge.u,
                v: edge.v,
            }),
        }
    }

    // g2 edge insertions (edges not hit by any g1 edge).
    for e in g2.edges() {
        let edge = g2.edge(e);
        let (pu, pv) = (inv[edge.u.index()], inv[edge.v.index()]);
        let covered = match (pu, pv) {
            (Some(a), Some(b)) => g1.edge_between(a, b).is_some(),
            _ => false,
        };
        if !covered {
            ops.push(EditOp::InsertEdge {
                u: edge.u,
                v: edge.v,
                label: edge.label,
            });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::{GraphBuilder, Vocabulary};

    fn pair() -> (Graph, Graph) {
        let mut v = Vocabulary::new();
        let g1 = GraphBuilder::new("g1", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .path(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let g2 = GraphBuilder::new("g2", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("x", "X")
            .edge("a", "b", "-")
            .edge("b", "x", "=")
            .build()
            .unwrap();
        (g1, g2)
    }

    #[test]
    fn identity_mapping_of_equal_graphs_is_free() {
        let (g1, _) = pair();
        let mapping = VertexMapping {
            map: (0..g1.order()).map(|i| Some(VertexId::new(i))).collect(),
        };
        assert_eq!(mapping_cost(&g1, &g1, &mapping, &CostModel::uniform()), 0.0);
        assert!(edit_path_for_mapping(&g1, &g1, &mapping).is_empty());
    }

    #[test]
    fn natural_mapping_counts_relabels() {
        let (g1, g2) = pair();
        // a→a, b→b, c→x : vertex relabel C→X plus edge relabel on b-c.
        let mapping = VertexMapping {
            map: vec![
                Some(VertexId::new(0)),
                Some(VertexId::new(1)),
                Some(VertexId::new(2)),
            ],
        };
        let ops = edit_path_for_mapping(&g1, &g2, &mapping);
        let kinds: Vec<_> = ops.iter().map(|o| o.kind()).collect();
        assert_eq!(kinds.len(), 2, "{kinds:?}");
        assert!(kinds.contains(&"vertex-relabel"));
        assert!(kinds.contains(&"edge-relabel"));
        assert_eq!(mapping_cost(&g1, &g2, &mapping, &CostModel::uniform()), 2.0);
    }

    #[test]
    fn all_deleted_costs_everything() {
        let (g1, g2) = pair();
        let mapping = VertexMapping::all_deleted(g1.order());
        // Delete 3 vertices + 2 edges, insert 3 vertices + 2 edges.
        assert_eq!(
            mapping_cost(&g1, &g2, &mapping, &CostModel::uniform()),
            10.0
        );
    }

    #[test]
    fn deleted_endpoint_forces_edge_delete_and_insert() {
        let (g1, g2) = pair();
        // a→a, b→b, c deleted; x inserted.
        let mapping = VertexMapping {
            map: vec![Some(VertexId::new(0)), Some(VertexId::new(1)), None],
        };
        let ops = edit_path_for_mapping(&g1, &g2, &mapping);
        // vertex-delete(c), vertex-insert(x), edge-delete(b-c), edge-insert(b-x)
        assert_eq!(ops.len(), 4);
        assert_eq!(mapping_cost(&g1, &g2, &mapping, &CostModel::uniform()), 4.0);
    }

    #[test]
    fn non_uniform_costs_scale() {
        let (g1, g2) = pair();
        let mapping = VertexMapping {
            map: vec![Some(VertexId::new(0)), Some(VertexId::new(1)), None],
        };
        let cost = CostModel::structure_weighted(5.0);
        // vertex-del(5) + vertex-ins(5) + edge-del(5) + edge-ins(5) = 20.
        assert_eq!(mapping_cost(&g1, &g2, &mapping, &cost), 20.0);
    }

    #[test]
    fn inverse_roundtrips() {
        let mapping = VertexMapping {
            map: vec![Some(VertexId::new(2)), None, Some(VertexId::new(0))],
        };
        let inv = mapping.inverse(3);
        assert_eq!(inv[2], Some(VertexId::new(0)));
        assert_eq!(inv[0], Some(VertexId::new(2)));
        assert_eq!(inv[1], None);
    }

    #[test]
    #[should_panic(expected = "mapping must cover")]
    fn incomplete_mapping_panics() {
        let (g1, g2) = pair();
        let mapping = VertexMapping { map: vec![None] };
        edit_path_for_mapping(&g1, &g2, &mapping);
    }
}
