//! Beam-search GED approximation.
//!
//! Explores the same vertex-decision tree as [`crate::exact`] but keeps only
//! the `width` cheapest partial states per depth. Polynomial
//! (`O(depth · width · branching)`), anytime-quality upper bound: with
//! `width = ∞` it would coincide with exhaustive search; tests verify it
//! never undercuts the exact distance and improves with width.

use gss_graph::{Graph, VertexId};

use crate::cost::CostModel;
use crate::exact::GedResult;
use crate::path::{mapping_cost, VertexMapping};

#[derive(Clone)]
struct State {
    /// Image per g1 vertex: None = undecided-or-deleted; tracked via `decided`.
    map: Vec<Option<VertexId>>,
    used2: Vec<bool>,
    cost: f64,
}

/// Approximates GED with a beam of the given `width` (≥ 1).
pub fn beam_ged(g1: &Graph, g2: &Graph, cost: &CostModel, width: usize) -> GedResult {
    cost.validate().expect("invalid cost model");
    let width = width.max(1);

    let mut order: Vec<VertexId> = g1.vertices().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g1.degree(v)));

    let mut beam = vec![State {
        map: vec![None; g1.order()],
        used2: vec![false; g2.order()],
        cost: 0.0,
    }];

    for (depth, &u) in order.iter().enumerate() {
        let mut next: Vec<State> = Vec::with_capacity(beam.len() * (g2.order() + 1));
        for st in &beam {
            // Substitutions.
            for v in g2.vertices() {
                if st.used2[v.index()] {
                    continue;
                }
                let step = decide_cost(g1, g2, cost, &order[..depth], &st.map, u, Some(v));
                let mut s = st.clone();
                s.map[u.index()] = Some(v);
                s.used2[v.index()] = true;
                s.cost += step;
                next.push(s);
            }
            // Deletion.
            let step = decide_cost(g1, g2, cost, &order[..depth], &st.map, u, None);
            let mut s = st.clone();
            s.map[u.index()] = None;
            s.cost += step;
            next.push(s);
        }
        next.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        next.truncate(width);
        beam = next;
    }

    // Complete the cheapest surviving state (re-evaluated exactly).
    let mut best: Option<(f64, VertexMapping)> = None;
    for st in beam {
        let mapping = VertexMapping { map: st.map };
        let total = mapping_cost(g1, g2, &mapping, cost);
        if best.as_ref().is_none_or(|(c, _)| total < *c) {
            best = Some((total, mapping));
        }
    }
    let (c, mapping) = best.expect("beam is never empty");
    GedResult {
        cost: c,
        mapping,
        exact: false,
        expanded: 0,
    }
}

/// Incremental cost of deciding `u` given that exactly the vertices in
/// `decided` (a prefix of the order) are already decided in `map`.
fn decide_cost(
    g1: &Graph,
    g2: &Graph,
    cm: &CostModel,
    decided: &[VertexId],
    map: &[Option<VertexId>],
    u: VertexId,
    choice: Option<VertexId>,
) -> f64 {
    let is_decided = |w: VertexId| decided.contains(&w);
    let mut c = 0.0;
    match choice {
        Some(v) => {
            if g1.vertex_label(u) != g2.vertex_label(v) {
                c += cm.vertex_rel;
            }
            for (w, ew) in g1.neighbors(u) {
                if !is_decided(w) {
                    continue;
                }
                match map[w.index()] {
                    Some(x) => match g2.edge_between(v, x) {
                        Some(e2) => {
                            if g2.edge_label(e2) != g1.edge_label(ew) {
                                c += cm.edge_rel;
                            }
                        }
                        None => c += cm.edge_del,
                    },
                    None => c += cm.edge_del,
                }
            }
            // g2 edges from v to already-used images lacking a g1 counterpart.
            for (x, _) in g2.neighbors(v) {
                let preimage = decided.iter().find(|w| map[w.index()] == Some(x)).copied();
                if let Some(w) = preimage {
                    if g1.edge_between(u, w).is_none() {
                        c += cm.edge_ins;
                    }
                }
            }
        }
        None => {
            c += cm.vertex_del;
            for (w, _) in g1.neighbors(u) {
                if is_decided(w) {
                    c += cm.edge_del;
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_ged, GedOptions};
    use gss_graph::{Graph, GraphBuilder, Label, Rng, Vocabulary};

    #[test]
    fn identical_graphs_zero() {
        let mut v = Vocabulary::new();
        let g = GraphBuilder::new("g", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .edge("a", "b", "-")
            .build()
            .unwrap();
        assert_eq!(beam_ged(&g, &g, &CostModel::uniform(), 4).cost, 0.0);
    }

    fn random_graph(rng: &mut Rng, n: usize, m: usize) -> Graph {
        let mut g = Graph::new("r");
        for _ in 0..n {
            g.add_vertex(Label(rng.gen_index(3) as u32));
        }
        let mut added = 0;
        let mut attempts = 0;
        while added < m && attempts < 100 {
            attempts += 1;
            let u = VertexId::new(rng.gen_index(n));
            let w = VertexId::new(rng.gen_index(n));
            if u != w && !g.has_edge(u, w) {
                g.add_edge(u, w, Label(10)).unwrap();
                added += 1;
            }
        }
        g
    }

    #[test]
    fn upper_bounds_exact_and_improves_with_width() {
        let mut rng = Rng::seed_from_u64(0xbea);
        for case in 0..40 {
            let (n1, m1) = (1 + rng.gen_index(5), rng.gen_index(6));
            let (n2, m2) = (1 + rng.gen_index(5), rng.gen_index(6));
            let g1 = random_graph(&mut rng, n1, m1);
            let g2 = random_graph(&mut rng, n2, m2);
            let exact = exact_ged(&g1, &g2, &GedOptions::default()).cost;
            let narrow = beam_ged(&g1, &g2, &CostModel::uniform(), 1).cost;
            let wide = beam_ged(&g1, &g2, &CostModel::uniform(), 64).cost;
            assert!(
                narrow >= exact - 1e-9,
                "case {case}: beam(1) {narrow} < exact {exact}"
            );
            assert!(
                wide >= exact - 1e-9,
                "case {case}: beam(64) {wide} < exact {exact}"
            );
            assert!(
                wide <= narrow + 1e-9,
                "case {case}: wider beam must not be worse"
            );
        }
    }

    #[test]
    fn wide_beam_matches_exact_on_small_graphs() {
        let mut rng = Rng::seed_from_u64(0xbeef);
        for _ in 0..20 {
            let (n1, m1) = (1 + rng.gen_index(4), rng.gen_index(4));
            let (n2, m2) = (1 + rng.gen_index(4), rng.gen_index(4));
            let g1 = random_graph(&mut rng, n1, m1);
            let g2 = random_graph(&mut rng, n2, m2);
            let exact = exact_ged(&g1, &g2, &GedOptions::default()).cost;
            // Width 10_000 on ≤4-vertex graphs is effectively exhaustive.
            let wide = beam_ged(&g1, &g2, &CostModel::uniform(), 10_000).cost;
            assert_eq!(wide, exact);
        }
    }
}
