//! Bipartite (assignment-based) GED approximation, after Riesen & Bunke.
//!
//! Builds the classical `(n1+n2) × (n1+n2)` cost matrix — substitutions with
//! a local edge-environment estimate, diagonal deletions/insertions — solves
//! it with the Hungarian algorithm, and returns the **true induced cost** of
//! the resulting vertex mapping. The result is therefore always an *upper
//! bound* on the exact GED (tests verify this against [`crate::exact`]),
//! computable in `O((n1+n2)³)`.

use gss_graph::stats::Multiset;
use gss_graph::{Graph, Label, VertexId};

use crate::cost::CostModel;
use crate::exact::GedResult;
use crate::hungarian::{self, FORBIDDEN};
use crate::path::{mapping_cost, VertexMapping};

fn incident_edge_labels(g: &Graph, v: VertexId) -> Multiset<Label> {
    g.neighbors(v).map(|(_, e)| g.edge_label(e)).collect()
}

/// Approximates GED via one linear assignment over vertices.
///
/// The returned [`GedResult`] has `exact = false`; its `cost` is the induced
/// cost of the assignment, an upper bound on the true GED.
pub fn bipartite_ged(g1: &Graph, g2: &Graph, cost: &CostModel) -> GedResult {
    cost.validate().expect("invalid cost model");
    let (n1, n2) = (g1.order(), g2.order());
    let n = n1 + n2;
    if n == 0 {
        return GedResult {
            cost: 0.0,
            mapping: VertexMapping { map: Vec::new() },
            exact: true,
            expanded: 0,
        };
    }

    // Pre-compute incident edge-label multisets.
    let env1: Vec<Multiset<Label>> = g1.vertices().map(|v| incident_edge_labels(g1, v)).collect();
    let env2: Vec<Multiset<Label>> = g2.vertices().map(|v| incident_edge_labels(g2, v)).collect();

    let mut matrix = vec![vec![0.0f64; n]; n];
    for i in 0..n1 {
        let vi = VertexId::new(i);
        for j in 0..n2 {
            let vj = VertexId::new(j);
            let sub = if g1.vertex_label(vi) == g2.vertex_label(vj) {
                0.0
            } else {
                cost.vertex_rel
            };
            // Local edge environment: unmatched incident labels must be
            // deleted/inserted. (Heuristic guidance only; each edge is seen
            // from both endpoints, so this over-weights structure, which
            // empirically produces better assignments than halving.)
            let common = env1[i].intersection_size(&env2[j]) as f64;
            let d1 = g1.degree(vi) as f64;
            let d2 = g2.degree(vj) as f64;
            let env = (d1 - common) * cost.edge_del + (d2 - common) * cost.edge_ins;
            matrix[i][j] = sub + env;
        }
        for (j, cell) in matrix[i][n2..].iter_mut().enumerate() {
            *cell = if i == j {
                cost.vertex_del + g1.degree(vi) as f64 * cost.edge_del
            } else {
                FORBIDDEN
            };
        }
    }
    for i in 0..n2 {
        let vi = VertexId::new(i);
        for (j, cell) in matrix[n1 + i][..n2].iter_mut().enumerate() {
            *cell = if i == j {
                cost.vertex_ins + g2.degree(vi) as f64 * cost.edge_ins
            } else {
                FORBIDDEN
            };
        }
        // bottom-right block stays 0 (ε → ε)
    }

    let (assignment, _) = hungarian::solve(&matrix);
    let map: Vec<Option<VertexId>> = (0..n1)
        .map(|i| {
            let j = assignment[i];
            (j < n2).then(|| VertexId::new(j))
        })
        .collect();
    let mapping = VertexMapping { map };
    let induced = mapping_cost(g1, g2, &mapping, cost);
    GedResult {
        cost: induced,
        mapping,
        exact: false,
        expanded: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_ged, GedOptions};
    use gss_graph::{Graph, GraphBuilder, Rng, Vocabulary};

    #[test]
    fn identical_graphs_zero() {
        let mut v = Vocabulary::new();
        let g = GraphBuilder::new("g", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .cycle(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let r = bipartite_ged(&g, &g, &CostModel::uniform());
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn empty_graphs() {
        let mut v = Vocabulary::new();
        let empty = GraphBuilder::new("e", &mut v).build().unwrap();
        let r = bipartite_ged(&empty, &empty, &CostModel::uniform());
        assert_eq!(r.cost, 0.0);
        assert!(r.exact);
    }

    #[test]
    fn upper_bounds_exact_on_random_graphs() {
        fn random_graph(rng: &mut Rng, n: usize, m: usize) -> Graph {
            use gss_graph::Label;
            let mut g = Graph::new("r");
            for _ in 0..n {
                g.add_vertex(Label(rng.gen_index(3) as u32));
            }
            let mut added = 0;
            let mut attempts = 0;
            while added < m && attempts < 100 {
                attempts += 1;
                let u = VertexId::new(rng.gen_index(n));
                let w = VertexId::new(rng.gen_index(n));
                if u != w && !g.has_edge(u, w) {
                    g.add_edge(u, w, Label(10 + rng.gen_index(2) as u32))
                        .unwrap();
                    added += 1;
                }
            }
            g
        }
        let mut rng = Rng::seed_from_u64(0xb1b);
        for case in 0..60 {
            let (n1, m1) = (1 + rng.gen_index(5), rng.gen_index(6));
            let (n2, m2) = (1 + rng.gen_index(5), rng.gen_index(6));
            let g1 = random_graph(&mut rng, n1, m1);
            let g2 = random_graph(&mut rng, n2, m2);
            let ub = bipartite_ged(&g1, &g2, &CostModel::uniform()).cost;
            let exact = exact_ged(&g1, &g2, &GedOptions::default()).cost;
            assert!(
                ub >= exact - 1e-9,
                "case {case}: bipartite {ub} must upper-bound exact {exact}"
            );
        }
    }

    #[test]
    fn warm_starting_exact_with_bipartite_keeps_optimality() {
        let mut v = Vocabulary::new();
        let g1 = GraphBuilder::new("g1", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .cycle(&["a", "b", "c", "d"], "-")
            .build()
            .unwrap();
        let g2 = GraphBuilder::new("g2", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .path(&["a", "b", "c", "d"], "-")
            .edge("a", "c", "=")
            .build()
            .unwrap();
        let ub = bipartite_ged(&g1, &g2, &CostModel::uniform());
        let warm = exact_ged(
            &g1,
            &g2,
            &GedOptions {
                warm_start: Some(ub.mapping.clone()),
                ..Default::default()
            },
        );
        let plain = exact_ged(&g1, &g2, &GedOptions::default());
        assert_eq!(warm.cost, plain.cost);
        assert!(warm.exact);
    }
}
