//! Bipartite (assignment-based) GED approximation, after Riesen & Bunke.
//!
//! Builds the classical `(n1+n2) × (n1+n2)` cost matrix — substitutions with
//! a local edge-environment estimate, diagonal deletions/insertions — solves
//! it with the Hungarian algorithm, and returns the **true induced cost** of
//! the resulting vertex mapping. The result is therefore always an *upper
//! bound* on the exact GED (tests verify this against [`crate::exact`]),
//! computable in `O((n1+n2)³)`.
//!
//! The similarity scans call this once per candidate pair — thousands of
//! times per query — so the hot entry point [`bipartite_ged_with`] takes a
//! caller-provided [`Workspace`] and reuses the flat cost matrix, the
//! Hungarian dual/slack buffers and the incident-label environment tables
//! across calls. [`bipartite_ged`] is the allocating one-shot wrapper; both
//! return bit-identical results (property-tested).

use gss_graph::{Graph, Label, VertexId};

use crate::cost::CostModel;
use crate::exact::GedResult;
use crate::hungarian::{self, FORBIDDEN};
use crate::path::{mapping_cost, VertexMapping};

/// Reusable buffers for [`bipartite_ged_with`]: the flat assignment matrix,
/// the Hungarian solver workspace, and per-vertex sorted incident-edge-label
/// tables for both graphs.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    hungarian: hungarian::Workspace,
    matrix: Vec<f64>,
    env_labels1: Vec<Label>,
    env_offsets1: Vec<usize>,
    env_labels2: Vec<Label>,
    env_offsets2: Vec<usize>,
}

impl Workspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Workspace::default()
    }
}

/// Fills `labels`/`offsets` with each vertex's incident edge labels, sorted
/// per vertex: the slice `labels[offsets[i]..offsets[i+1]]` is vertex `i`'s
/// sorted label environment.
fn build_env(g: &Graph, labels: &mut Vec<Label>, offsets: &mut Vec<usize>) {
    labels.clear();
    offsets.clear();
    for v in g.vertices() {
        offsets.push(labels.len());
        let start = labels.len();
        for (_, e) in g.neighbors(v) {
            labels.push(g.edge_label(e));
        }
        labels[start..].sort_unstable();
    }
    offsets.push(labels.len());
}

/// Multiset intersection size of two sorted label slices (two-pointer
/// merge) — the same count `Multiset::intersection_size` produces.
fn sorted_intersection_size(a: &[Label], b: &[Label]) -> usize {
    let (mut i, mut j, mut common) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    common
}

/// Approximates GED via one linear assignment over vertices.
///
/// The returned [`GedResult`] has `exact = false`; its `cost` is the induced
/// cost of the assignment, an upper bound on the true GED. One-shot
/// wrapper over [`bipartite_ged_with`].
pub fn bipartite_ged(g1: &Graph, g2: &Graph, cost: &CostModel) -> GedResult {
    bipartite_ged_with(g1, g2, cost, &mut Workspace::new())
}

/// [`bipartite_ged`] reusing the caller's [`Workspace`] — no per-call heap
/// allocation beyond the returned mapping.
pub fn bipartite_ged_with(
    g1: &Graph,
    g2: &Graph,
    cost: &CostModel,
    ws: &mut Workspace,
) -> GedResult {
    cost.validate().expect("invalid cost model");
    let (n1, n2) = (g1.order(), g2.order());
    let n = n1 + n2;
    if n == 0 {
        return GedResult {
            cost: 0.0,
            mapping: VertexMapping { map: Vec::new() },
            exact: true,
            expanded: 0,
        };
    }

    // Pre-compute per-vertex sorted incident edge-label environments.
    build_env(g1, &mut ws.env_labels1, &mut ws.env_offsets1);
    build_env(g2, &mut ws.env_labels2, &mut ws.env_offsets2);
    let Workspace {
        hungarian: hungarian_ws,
        matrix,
        env_labels1,
        env_offsets1,
        env_labels2,
        env_offsets2,
    } = ws;
    let env1 = |i: usize| &env_labels1[env_offsets1[i]..env_offsets1[i + 1]];
    let env2 = |j: usize| &env_labels2[env_offsets2[j]..env_offsets2[j + 1]];

    matrix.clear();
    matrix.resize(n * n, 0.0);
    for i in 0..n1 {
        let vi = VertexId::new(i);
        let row = &mut matrix[i * n..(i + 1) * n];
        for (j, cell) in row[..n2].iter_mut().enumerate() {
            let vj = VertexId::new(j);
            let sub = if g1.vertex_label(vi) == g2.vertex_label(vj) {
                0.0
            } else {
                cost.vertex_rel
            };
            // Local edge environment: unmatched incident labels must be
            // deleted/inserted. (Heuristic guidance only; each edge is seen
            // from both endpoints, so this over-weights structure, which
            // empirically produces better assignments than halving.)
            let common = sorted_intersection_size(env1(i), env2(j)) as f64;
            let d1 = g1.degree(vi) as f64;
            let d2 = g2.degree(vj) as f64;
            let env = (d1 - common) * cost.edge_del + (d2 - common) * cost.edge_ins;
            *cell = sub + env;
        }
        for (j, cell) in row[n2..].iter_mut().enumerate() {
            *cell = if i == j {
                cost.vertex_del + g1.degree(vi) as f64 * cost.edge_del
            } else {
                FORBIDDEN
            };
        }
    }
    for i in 0..n2 {
        let vi = VertexId::new(i);
        let row = &mut matrix[(n1 + i) * n..(n1 + i + 1) * n];
        for (j, cell) in row[..n2].iter_mut().enumerate() {
            *cell = if i == j {
                cost.vertex_ins + g2.degree(vi) as f64 * cost.edge_ins
            } else {
                FORBIDDEN
            };
        }
        // bottom-right block stays 0 (ε → ε)
    }

    hungarian::solve_into(matrix, n, hungarian_ws);
    let map: Vec<Option<VertexId>> = (0..n1)
        .map(|i| {
            let j = hungarian_ws.assignment[i];
            (j < n2).then(|| VertexId::new(j))
        })
        .collect();
    let mapping = VertexMapping { map };
    let induced = mapping_cost(g1, g2, &mapping, cost);
    GedResult {
        cost: induced,
        mapping,
        exact: false,
        expanded: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_ged, GedOptions};
    use gss_graph::{Graph, GraphBuilder, Rng, Vocabulary};

    #[test]
    fn identical_graphs_zero() {
        let mut v = Vocabulary::new();
        let g = GraphBuilder::new("g", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .cycle(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let r = bipartite_ged(&g, &g, &CostModel::uniform());
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn empty_graphs() {
        let mut v = Vocabulary::new();
        let empty = GraphBuilder::new("e", &mut v).build().unwrap();
        let r = bipartite_ged(&empty, &empty, &CostModel::uniform());
        assert_eq!(r.cost, 0.0);
        assert!(r.exact);
    }

    fn random_graph(rng: &mut Rng, n: usize, m: usize) -> Graph {
        use gss_graph::Label;
        let mut g = Graph::new("r");
        for _ in 0..n {
            g.add_vertex(Label(rng.gen_index(3) as u32));
        }
        let mut added = 0;
        let mut attempts = 0;
        while added < m && attempts < 100 {
            attempts += 1;
            let u = VertexId::new(rng.gen_index(n));
            let w = VertexId::new(rng.gen_index(n));
            if u != w && !g.has_edge(u, w) {
                g.add_edge(u, w, Label(10 + rng.gen_index(2) as u32))
                    .unwrap();
                added += 1;
            }
        }
        g
    }

    #[test]
    fn upper_bounds_exact_on_random_graphs() {
        let mut rng = Rng::seed_from_u64(0xb1b);
        for case in 0..60 {
            let (n1, m1) = (1 + rng.gen_index(5), rng.gen_index(6));
            let (n2, m2) = (1 + rng.gen_index(5), rng.gen_index(6));
            let g1 = random_graph(&mut rng, n1, m1);
            let g2 = random_graph(&mut rng, n2, m2);
            let ub = bipartite_ged(&g1, &g2, &CostModel::uniform()).cost;
            let exact = exact_ged(&g1, &g2, &GedOptions::default()).cost;
            assert!(
                ub >= exact - 1e-9,
                "case {case}: bipartite {ub} must upper-bound exact {exact}"
            );
        }
    }

    /// One shared workspace across many pairs must produce bit-identical
    /// results to fresh per-call workspaces.
    #[test]
    fn shared_workspace_matches_one_shot_calls() {
        let mut rng = Rng::seed_from_u64(0x7a5e);
        let mut ws = Workspace::new();
        for case in 0..60 {
            let (n1, m1) = (1 + rng.gen_index(6), rng.gen_index(7));
            let (n2, m2) = (1 + rng.gen_index(6), rng.gen_index(7));
            let g1 = random_graph(&mut rng, n1, m1);
            let g2 = random_graph(&mut rng, n2, m2);
            for cost in [CostModel::uniform(), CostModel::structure_weighted(2.5)] {
                let shared = bipartite_ged_with(&g1, &g2, &cost, &mut ws);
                let fresh = bipartite_ged(&g1, &g2, &cost);
                assert_eq!(shared.cost, fresh.cost, "case {case}");
                assert_eq!(shared.mapping.map, fresh.mapping.map, "case {case}");
            }
        }
    }

    #[test]
    fn warm_starting_exact_with_bipartite_keeps_optimality() {
        let mut v = Vocabulary::new();
        let g1 = GraphBuilder::new("g1", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .cycle(&["a", "b", "c", "d"], "-")
            .build()
            .unwrap();
        let g2 = GraphBuilder::new("g2", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .path(&["a", "b", "c", "d"], "-")
            .edge("a", "c", "=")
            .build()
            .unwrap();
        let ub = bipartite_ged(&g1, &g2, &CostModel::uniform());
        let warm = exact_ged(
            &g1,
            &g2,
            &GedOptions {
                warm_start: Some(ub.mapping.clone()),
                ..Default::default()
            },
        );
        let plain = exact_ged(&g1, &g2, &GedOptions::default());
        assert_eq!(warm.cost, plain.cost);
        assert!(warm.exact);
    }
}
