//! # gss-ged — graph edit distance for labeled graphs
//!
//! Implements `DistEd` of Abbaci et al. (GDM/ICDE 2011), Definition 8: the
//! minimum total cost of a sequence of edit operations (insert / delete /
//! relabel a vertex or an edge) transforming one graph into another, with the
//! paper's **uniform** cost model (every operation costs 1) as the default
//! and arbitrary non-negative models via [`CostModel`].
//!
//! Solvers, all searching the classical *vertex-mapping* formulation (whose
//! minimum equals GED for the uniform model):
//!
//! * [`exact::exact_ged`] — depth-first branch and bound with admissible
//!   label-alignment lower bounds and an optional node budget (anytime).
//! * [`bipartite::bipartite_ged`] — Riesen–Bunke linear-assignment upper
//!   bound in `O((n1+n2)³)`, built on an in-crate [`hungarian`] solver.
//! * [`beam::beam_ged`] — beam search over the same decision tree.
//!
//! Plus [`path`] utilities that turn any mapping into an explicit, costed
//! edit script (used to reproduce the paper's Example 2 op-by-op) and
//! [`lower_bound`] for the label-alignment lower bound on its own.
//!
//! The exact solver maintains its remaining-cost bound **incrementally**
//! and the bipartite solver reuses caller-provided [`Workspace`] buffers
//! (cost matrix, Hungarian duals/slacks) across calls — see the module docs
//! of [`exact`] and [`bipartite`]. The original rescanning solver is
//! retained in [`mod@reference`] as the parity oracle for property tests
//! and the baseline for the solver benchmarks.
//!
//! ```
//! use gss_graph::{GraphBuilder, Vocabulary};
//! use gss_ged::ged;
//!
//! let mut vocab = Vocabulary::new();
//! let g1 = GraphBuilder::new("g1", &mut vocab)
//!     .vertex("a", "A").vertex("b", "B").edge("a", "b", "-")
//!     .build().unwrap();
//! let g2 = GraphBuilder::new("g2", &mut vocab)
//!     .vertex("a", "A").vertex("b", "X").edge("a", "b", "-")
//!     .build().unwrap();
//! assert_eq!(ged(&g1, &g2), 1.0); // one vertex relabeling
//! ```

#![warn(missing_docs)]

pub mod beam;
pub mod bipartite;
pub mod cost;
pub mod exact;
pub mod hungarian;
pub mod path;
pub mod reference;

pub use bipartite::{bipartite_ged_with, Workspace};
pub use cost::CostModel;
pub use exact::{exact_ged, uniform_ged, GedOptions, GedResult};
pub use path::{edit_path_for_mapping, mapping_cost, EditOp, VertexMapping};

use gss_graph::stats::{edge_alignment_lower_bound, vertex_alignment_lower_bound};
use gss_graph::Graph;

/// Uniform-cost exact GED, warm-started with the bipartite upper bound —
/// the recommended entry point (identical value to [`uniform_ged`], usually
/// fewer expanded nodes).
pub fn ged(g1: &Graph, g2: &Graph) -> f64 {
    let cost = CostModel::uniform();
    let warm = bipartite::bipartite_ged(g1, g2, &cost);
    exact_ged(
        g1,
        g2,
        &GedOptions {
            cost,
            warm_start: Some(warm.mapping),
            node_limit: None,
        },
    )
    .cost
}

/// Admissible lower bound on uniform-cost GED from label multisets alone
/// (`O(|V| + |E|)`). `lower_bound(g1, g2) ≤ ged(g1, g2)` always.
pub fn lower_bound(g1: &Graph, g2: &Graph) -> f64 {
    (vertex_alignment_lower_bound(g1, g2) + edge_alignment_lower_bound(g1, g2)) as f64
}

/// Admissible lower bound on uniform-cost GED from degree sequences alone.
///
/// Every edge insertion/deletion changes exactly two vertex degrees by one,
/// so it moves the L1 distance between the (zero-padded, sorted) degree
/// sequences by at most 2; vertex operations move it by 0 (a vertex is
/// isolated when inserted/deleted, contributing a zero that padding already
/// accounts for, and relabeling leaves degrees untouched). Hence
/// `⌈L1 / 2⌉ ≤ ged(g1, g2)`.
///
/// Orthogonal to [`lower_bound`]: degree sequences see structure that label
/// multisets cannot (e.g. a path vs. a star over identical labels).
pub fn degree_lower_bound(g1: &Graph, g2: &Graph) -> f64 {
    (gss_graph::stats::degree_sequence_l1(g1, g2).div_ceil(2)) as f64
}

/// The strongest cheap admissible GED lower bound in the crate: the maximum
/// of the label-alignment bound ([`lower_bound`]) and the degree-sequence
/// bound ([`degree_lower_bound`]). Still `O(|V| log |V| + |E|)`.
///
/// The two component bounds count different edit obligations, but taking
/// their sum would double-charge a single edge operation, so only the
/// maximum is admissible.
pub fn combined_lower_bound(g1: &Graph, g2: &Graph) -> f64 {
    lower_bound(g1, g2).max(degree_lower_bound(g1, g2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::{Graph, GraphBuilder, Label, Rng, VertexId, Vocabulary};

    #[test]
    fn ged_matches_uniform_ged() {
        let mut v = Vocabulary::new();
        let g1 = GraphBuilder::new("g1", &mut v)
            .vertices(&["a", "b", "c"], "C")
            .cycle(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let g2 = GraphBuilder::new("g2", &mut v)
            .vertices(&["a", "b", "c"], "C")
            .path(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        assert_eq!(ged(&g1, &g2), uniform_ged(&g1, &g2));
        assert_eq!(ged(&g1, &g2), 1.0);
    }

    #[test]
    fn lower_bound_is_admissible_on_random_graphs() {
        fn random_graph(rng: &mut Rng, n: usize, m: usize) -> Graph {
            let mut g = Graph::new("r");
            for _ in 0..n {
                g.add_vertex(Label(rng.gen_index(3) as u32));
            }
            let mut added = 0;
            let mut attempts = 0;
            while added < m && attempts < 100 {
                attempts += 1;
                let u = VertexId::new(rng.gen_index(n));
                let w = VertexId::new(rng.gen_index(n));
                if u != w && !g.has_edge(u, w) {
                    g.add_edge(u, w, Label(5 + rng.gen_index(2) as u32))
                        .unwrap();
                    added += 1;
                }
            }
            g
        }
        let mut rng = Rng::seed_from_u64(0x1b);
        for _ in 0..50 {
            let (n1, m1) = (1 + rng.gen_index(4), rng.gen_index(5));
            let (n2, m2) = (1 + rng.gen_index(4), rng.gen_index(5));
            let g1 = random_graph(&mut rng, n1, m1);
            let g2 = random_graph(&mut rng, n2, m2);
            let exact = ged(&g1, &g2);
            assert!(lower_bound(&g1, &g2) <= exact + 1e-9);
            assert!(degree_lower_bound(&g1, &g2) <= exact + 1e-9);
            assert!(combined_lower_bound(&g1, &g2) <= exact + 1e-9);
            assert!(combined_lower_bound(&g1, &g2) >= lower_bound(&g1, &g2));
        }
    }

    #[test]
    fn degree_bound_sees_structure_labels_cannot() {
        // Path vs star over identical label multisets: the label-alignment
        // bound is blind (0), the degree bound is not.
        let mut v = Vocabulary::new();
        let path = GraphBuilder::new("p", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .path(&["a", "b", "c", "d"], "-")
            .build()
            .unwrap();
        let star = GraphBuilder::new("s", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .edge("a", "b", "-")
            .edge("a", "c", "-")
            .edge("a", "d", "-")
            .build()
            .unwrap();
        assert_eq!(lower_bound(&path, &star), 0.0);
        // Degree sequences [1,1,2,2] vs [1,1,1,3]: L1 = 2 → bound 1.
        assert_eq!(degree_lower_bound(&path, &star), 1.0);
        assert!(combined_lower_bound(&path, &star) <= ged(&path, &star) + 1e-9);
    }

    #[test]
    fn triangle_inequality_on_random_triples() {
        // Uniform GED is a metric; spot-check the triangle inequality.
        fn random_graph(rng: &mut Rng, n: usize, m: usize) -> Graph {
            let mut g = Graph::new("r");
            for _ in 0..n {
                g.add_vertex(Label(rng.gen_index(2) as u32));
            }
            let mut added = 0;
            let mut attempts = 0;
            while added < m && attempts < 60 {
                attempts += 1;
                let u = VertexId::new(rng.gen_index(n));
                let w = VertexId::new(rng.gen_index(n));
                if u != w && !g.has_edge(u, w) {
                    g.add_edge(u, w, Label(5)).unwrap();
                    added += 1;
                }
            }
            g
        }
        let mut rng = Rng::seed_from_u64(0x3a);
        for _ in 0..25 {
            let (na, ma) = (1 + rng.gen_index(3), rng.gen_index(4));
            let (nb, mb) = (1 + rng.gen_index(3), rng.gen_index(4));
            let (nc, mc) = (1 + rng.gen_index(3), rng.gen_index(4));
            let a = random_graph(&mut rng, na, ma);
            let b = random_graph(&mut rng, nb, mb);
            let c = random_graph(&mut rng, nc, mc);
            let ab = ged(&a, &b);
            let bc = ged(&b, &c);
            let ac = ged(&a, &c);
            assert!(
                ac <= ab + bc + 1e-9,
                "triangle violated: {ac} > {ab} + {bc}"
            );
        }
    }
}
