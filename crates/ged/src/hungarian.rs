//! The Hungarian algorithm (Kuhn–Munkres) for the square assignment problem.
//!
//! `O(n³)` shortest-augmenting-path formulation with dual potentials. This is
//! a substrate the bipartite GED approximation (Riesen & Bunke) needs; it is
//! exposed publicly because workload code also uses it for diagnostics.
//!
//! Forbidden assignments should be encoded as [`FORBIDDEN`] (a large finite
//! value) rather than `f64::INFINITY`, which would poison the potentials
//! with `inf − inf = NaN`.

/// Large finite cost standing in for "forbidden assignment".
pub const FORBIDDEN: f64 = 1.0e12;

/// Solves the square assignment problem for the given `n × n` cost matrix.
///
/// Returns `(assignment, total_cost)` where `assignment[row] = col` and the
/// total is minimal.
///
/// # Panics
/// Panics when the matrix is not square or rows have inconsistent lengths.
pub fn solve(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
    }

    // 1-based arrays; column 0 is virtual.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j]: row currently assigned to column j
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for j in 1..=n {
        if p[j] >= 1 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i][j])
        .sum();
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sizes() {
        let (a, c) = solve(&[]);
        assert!(a.is_empty());
        assert_eq!(c, 0.0);
        let (a, c) = solve(&[vec![7.0]]);
        assert_eq!(a, vec![0]);
        assert_eq!(c, 7.0);
    }

    #[test]
    fn classic_3x3() {
        // Optimal: (0,1), (1,0), (2,2) = 1 + 2 + 3 = 6? Check by brute force below.
        let m = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let (_, total) = solve(&m);
        assert_eq!(total, brute_force(&m));
    }

    #[test]
    fn assignment_is_a_permutation() {
        let m = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 4.0, 6.0, 8.0],
            vec![3.0, 6.0, 9.0, 12.0],
            vec![4.0, 8.0, 12.0, 16.0],
        ];
        let (a, _) = solve(&m);
        let mut seen = a.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn respects_forbidden_entries() {
        let m = vec![vec![FORBIDDEN, 1.0], vec![1.0, FORBIDDEN]];
        let (a, total) = solve(&m);
        assert_eq!(a, vec![1, 0]);
        assert_eq!(total, 2.0);
    }

    fn brute_force(m: &[Vec<f64>]) -> f64 {
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for i in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(i, n - 1);
                    out.push(q);
                }
            }
            out
        }
        perms(m.len())
            .into_iter()
            .map(|p| p.iter().enumerate().map(|(i, &j)| m[i][j]).sum())
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use gss_graph::Rng;
        let mut rng = Rng::seed_from_u64(99);
        for _ in 0..50 {
            let n = 1 + rng.gen_index(5);
            let m: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| (rng.gen_index(20)) as f64).collect())
                .collect();
            let (_, total) = solve(&m);
            let best = brute_force(&m);
            assert!(
                (total - best).abs() < 1e-9,
                "hungarian {total} vs brute {best} on {m:?}"
            );
        }
    }
}
