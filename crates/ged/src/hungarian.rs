//! The Hungarian algorithm (Kuhn–Munkres) for the square assignment problem.
//!
//! `O(n³)` shortest-augmenting-path formulation with dual potentials. This is
//! a substrate the bipartite GED approximation (Riesen & Bunke) needs; it is
//! exposed publicly because workload code also uses it for diagnostics.
//!
//! Forbidden assignments should be encoded as [`FORBIDDEN`] (a large finite
//! value) rather than `f64::INFINITY`, which would poison the potentials
//! with `inf − inf = NaN`.
//!
//! The hot entry point is [`solve_into`]: it takes the cost matrix as one
//! flat row-major slice and a caller-provided [`Workspace`] holding the dual
//! potential, slack and augmenting-path buffers, so a scan that solves
//! thousands of assignment problems (one per candidate pair) performs no
//! per-call heap allocation. [`solve`] is the allocating convenience wrapper
//! around it.

/// Large finite cost standing in for "forbidden assignment".
pub const FORBIDDEN: f64 = 1.0e12;

/// Reusable buffers for [`solve_into`]: dual potentials `u`/`v`, the
/// per-column slack (`minv`), the visited set and the augmenting-path
/// predecessor array, plus the output assignment.
///
/// One workspace serves any sequence of problem sizes; buffers grow to the
/// largest size seen and are reused from then on.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    u: Vec<f64>,
    v: Vec<f64>,
    p: Vec<usize>,
    way: Vec<usize>,
    minv: Vec<f64>,
    used: Vec<bool>,
    /// `assignment[row] = col` after [`solve_into`] returns.
    pub assignment: Vec<usize>,
}

impl Workspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Sizes every buffer for an `n × n` problem and resets the duals.
    fn reset(&mut self, n: usize) {
        self.u.clear();
        self.u.resize(n + 1, 0.0);
        self.v.clear();
        self.v.resize(n + 1, 0.0);
        self.p.clear();
        self.p.resize(n + 1, 0);
        self.way.clear();
        self.way.resize(n + 1, 0);
        self.minv.resize(n + 1, f64::INFINITY);
        self.used.resize(n + 1, false);
        self.assignment.clear();
        self.assignment.resize(n, usize::MAX);
    }
}

/// Solves the square assignment problem for an `n × n` cost matrix given as
/// a flat row-major slice (`cost[r * n + c]`), reusing the caller's
/// [`Workspace`]. Returns the minimal total cost; the argmin permutation is
/// left in [`Workspace::assignment`].
///
/// # Panics
/// Panics when `cost.len() != n * n`.
pub fn solve_into(cost: &[f64], n: usize, ws: &mut Workspace) -> f64 {
    assert_eq!(cost.len(), n * n, "cost matrix must be n × n");
    if n == 0 {
        ws.assignment.clear();
        return 0.0;
    }
    ws.reset(n);

    // 1-based arrays; column 0 is virtual.
    for i in 1..=n {
        ws.p[0] = i;
        let mut j0 = 0usize;
        for j in 0..=n {
            ws.minv[j] = f64::INFINITY;
            ws.used[j] = false;
        }
        loop {
            ws.used[j0] = true;
            let i0 = ws.p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            let row = &cost[(i0 - 1) * n..i0 * n];
            for j in 1..=n {
                if !ws.used[j] {
                    let cur = row[j - 1] - ws.u[i0] - ws.v[j];
                    if cur < ws.minv[j] {
                        ws.minv[j] = cur;
                        ws.way[j] = j0;
                    }
                    if ws.minv[j] < delta {
                        delta = ws.minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if ws.used[j] {
                    ws.u[ws.p[j]] += delta;
                    ws.v[j] -= delta;
                } else {
                    ws.minv[j] -= delta;
                }
            }
            j0 = j1;
            if ws.p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = ws.way[j0];
            ws.p[j0] = ws.p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    for j in 1..=n {
        if ws.p[j] >= 1 {
            ws.assignment[ws.p[j] - 1] = j - 1;
        }
    }
    ws.assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i * n + j])
        .sum()
}

/// Solves the square assignment problem for the given `n × n` cost matrix.
///
/// Returns `(assignment, total_cost)` where `assignment[row] = col` and the
/// total is minimal. Allocating convenience wrapper over [`solve_into`].
///
/// # Panics
/// Panics when the matrix is not square or rows have inconsistent lengths.
pub fn solve(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    for row in cost {
        assert_eq!(row.len(), n, "cost matrix must be square");
    }
    let flat: Vec<f64> = cost.iter().flat_map(|row| row.iter().copied()).collect();
    let mut ws = Workspace::new();
    let total = solve_into(&flat, n, &mut ws);
    (std::mem::take(&mut ws.assignment), total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sizes() {
        let (a, c) = solve(&[]);
        assert!(a.is_empty());
        assert_eq!(c, 0.0);
        let (a, c) = solve(&[vec![7.0]]);
        assert_eq!(a, vec![0]);
        assert_eq!(c, 7.0);
    }

    #[test]
    fn classic_3x3() {
        // Optimal: (0,1), (1,0), (2,2) = 1 + 2 + 3 = 6? Check by brute force below.
        let m = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let (_, total) = solve(&m);
        assert_eq!(total, brute_force(&m));
    }

    #[test]
    fn assignment_is_a_permutation() {
        let m = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 4.0, 6.0, 8.0],
            vec![3.0, 6.0, 9.0, 12.0],
            vec![4.0, 8.0, 12.0, 16.0],
        ];
        let (a, _) = solve(&m);
        let mut seen = a.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn respects_forbidden_entries() {
        let m = vec![vec![FORBIDDEN, 1.0], vec![1.0, FORBIDDEN]];
        let (a, total) = solve(&m);
        assert_eq!(a, vec![1, 0]);
        assert_eq!(total, 2.0);
    }

    fn brute_force(m: &[Vec<f64>]) -> f64 {
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for i in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(i, n - 1);
                    out.push(q);
                }
            }
            out
        }
        perms(m.len())
            .into_iter()
            .map(|p| p.iter().enumerate().map(|(i, &j)| m[i][j]).sum())
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use gss_graph::Rng;
        let mut rng = Rng::seed_from_u64(99);
        for _ in 0..50 {
            let n = 1 + rng.gen_index(5);
            let m: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| (rng.gen_index(20)) as f64).collect())
                .collect();
            let (_, total) = solve(&m);
            let best = brute_force(&m);
            assert!(
                (total - best).abs() < 1e-9,
                "hungarian {total} vs brute {best} on {m:?}"
            );
        }
    }

    /// One workspace across many problems of varying size must behave
    /// exactly like fresh allocations.
    #[test]
    fn workspace_reuse_matches_fresh_solves() {
        use gss_graph::Rng;
        let mut rng = Rng::seed_from_u64(0x5eed);
        let mut ws = Workspace::new();
        for _ in 0..40 {
            let n = 1 + rng.gen_index(6);
            let flat: Vec<f64> = (0..n * n).map(|_| rng.gen_index(30) as f64).collect();
            let reused = solve_into(&flat, n, &mut ws);
            let assignment_reused = ws.assignment.clone();
            let mut fresh_ws = Workspace::new();
            let fresh = solve_into(&flat, n, &mut fresh_ws);
            assert_eq!(reused, fresh);
            assert_eq!(assignment_reused, fresh_ws.assignment);
        }
    }
}
