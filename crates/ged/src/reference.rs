//! Retained reference implementation of the pre-rewrite exact GED solver.
//!
//! [`crate::exact`] was rewritten around an **incremental** remaining-cost
//! bound (the label-multiset alignment counters are updated on decide/undo
//! instead of re-scanning both edge sets — and re-allocating two label
//! histograms — at every search node). This module keeps the original
//! rescanning solver verbatim so that
//!
//! * property tests can assert the rewrite returns identical costs,
//!   mappings and `expanded` counters across cost models (the rewrite
//!   preserves the search order, so all three must match exactly), and
//! * the solver benchmarks (`benches/solvers.rs`, the S9 scaling scenario)
//!   can measure the speedup against the exact code it replaced.
//!
//! Nothing in the query pipeline calls this; it is test and benchmark
//! substrate only.

use gss_graph::{Graph, VertexId};

use crate::cost::CostModel;
use crate::exact::{GedOptions, GedResult};
use crate::path::{mapping_cost, VertexMapping};

const UNDECIDED: u32 = u32::MAX;
const DELETED: u32 = u32::MAX - 1;

struct RefSolver<'a> {
    g1: &'a Graph,
    g2: &'a Graph,
    cm: CostModel,
    order: Vec<VertexId>,
    map: Vec<u32>,
    inv: Vec<u32>,
    r1_vlabels: Vec<i64>,
    r2_vlabels: Vec<i64>,
    best_cost: f64,
    best_map: Vec<u32>,
    expanded: u64,
    node_limit: u64,
    aborted: bool,
}

impl RefSolver<'_> {
    fn decide_cost(&self, u: VertexId, choice: Option<VertexId>) -> f64 {
        let mut c = 0.0;
        match choice {
            Some(v) => {
                if self.g1.vertex_label(u) != self.g2.vertex_label(v) {
                    c += self.cm.vertex_rel;
                }
                for (w, ew) in self.g1.neighbors(u) {
                    match self.map[w.index()] {
                        UNDECIDED => {}
                        DELETED => c += self.cm.edge_del,
                        x => match self.g2.edge_between(v, VertexId(x)) {
                            Some(e2) => {
                                if self.g2.edge_label(e2) != self.g1.edge_label(ew) {
                                    c += self.cm.edge_rel;
                                }
                            }
                            None => c += self.cm.edge_del,
                        },
                    }
                }
                for (x, _ex) in self.g2.neighbors(v) {
                    let w = self.inv[x.index()];
                    if w == UNDECIDED {
                        continue;
                    }
                    if self.g1.edge_between(u, VertexId(w)).is_none() {
                        c += self.cm.edge_ins;
                    }
                }
            }
            None => {
                c += self.cm.vertex_del;
                for (w, _) in self.g1.neighbors(u) {
                    if self.map[w.index()] != UNDECIDED {
                        c += self.cm.edge_del;
                    }
                }
            }
        }
        c
    }

    fn completion_cost(&self) -> f64 {
        let mut c = 0.0;
        for v in self.g2.vertices() {
            if self.inv[v.index()] == UNDECIDED {
                c += self.cm.vertex_ins;
            }
        }
        for e in self.g2.edges() {
            let edge = self.g2.edge(e);
            if self.inv[edge.u.index()] == UNDECIDED || self.inv[edge.v.index()] == UNDECIDED {
                c += self.cm.edge_ins;
            }
        }
        c
    }

    /// The original remaining-cost bound: full rescans of both edge sets
    /// plus two fresh label histograms per call.
    fn lower_bound(&self, depth: usize) -> f64 {
        let n1r = (self.order.len() - depth) as i64;
        let n2r = self.inv.iter().filter(|&&w| w == UNDECIDED).count() as i64;
        let mut common_v = 0i64;
        for (l, &c1) in self.r1_vlabels.iter().enumerate() {
            common_v += c1.min(self.r2_vlabels[l]);
        }
        let vertex_ops = (n1r.max(n2r) - common_v).max(0) as f64;

        let mut e1_labels: Vec<i64> = vec![0; self.r1_vlabels.len()];
        let mut e1r = 0i64;
        for e in self.g1.edges() {
            let edge = self.g1.edge(e);
            if self.map[edge.u.index()] == UNDECIDED && self.map[edge.v.index()] == UNDECIDED {
                e1_labels[edge.label.index()] += 1;
                e1r += 1;
            }
        }
        let mut e2_labels: Vec<i64> = vec![0; self.r1_vlabels.len()];
        let mut e2r = 0i64;
        for e in self.g2.edges() {
            let edge = self.g2.edge(e);
            if self.inv[edge.u.index()] == UNDECIDED && self.inv[edge.v.index()] == UNDECIDED {
                e2_labels[edge.label.index()] += 1;
                e2r += 1;
            }
        }
        let mut common_e = 0i64;
        for (l, &c1) in e1_labels.iter().enumerate() {
            common_e += c1.min(e2_labels[l]);
        }
        let edge_ops = (e1r.max(e2r) - common_e).max(0) as f64;

        vertex_ops * self.cm.min_vertex_op() + edge_ops * self.cm.min_edge_op()
    }

    fn search(&mut self, depth: usize, cost_so_far: f64) {
        if self.aborted {
            return;
        }
        self.expanded += 1;
        if self.expanded > self.node_limit {
            self.aborted = true;
            return;
        }
        if depth == self.order.len() {
            let total = cost_so_far + self.completion_cost();
            if total < self.best_cost {
                self.best_cost = total;
                self.best_map = self.map.clone();
            }
            return;
        }
        if cost_so_far + self.lower_bound(depth) >= self.best_cost {
            return;
        }
        let u = self.order[depth];
        let lu = self.g1.vertex_label(u);

        let mut candidates: Vec<Option<VertexId>> = Vec::with_capacity(self.g2.order() + 1);
        for v in self.g2.vertices() {
            if self.inv[v.index()] == UNDECIDED && self.g2.vertex_label(v) == lu {
                candidates.push(Some(v));
            }
        }
        candidates.push(None);
        for v in self.g2.vertices() {
            if self.inv[v.index()] == UNDECIDED && self.g2.vertex_label(v) != lu {
                candidates.push(Some(v));
            }
        }

        for choice in candidates {
            let step = self.decide_cost(u, choice);
            if cost_so_far + step >= self.best_cost {
                continue;
            }
            self.r1_vlabels[lu.index()] -= 1;
            match choice {
                Some(v) => {
                    self.map[u.index()] = v.0;
                    self.inv[v.index()] = u.0;
                    self.r2_vlabels[self.g2.vertex_label(v).index()] -= 1;
                }
                None => self.map[u.index()] = DELETED,
            }
            self.search(depth + 1, cost_so_far + step);
            self.r1_vlabels[lu.index()] += 1;
            match choice {
                Some(v) => {
                    self.map[u.index()] = UNDECIDED;
                    self.inv[v.index()] = UNDECIDED;
                    self.r2_vlabels[self.g2.vertex_label(v).index()] += 1;
                }
                None => self.map[u.index()] = UNDECIDED,
            }
            if self.aborted {
                return;
            }
        }
    }
}

fn max_label_index(g1: &Graph, g2: &Graph) -> usize {
    let mut m = 0usize;
    for g in [g1, g2] {
        for v in g.vertices() {
            m = m.max(g.vertex_label(v).index() + 1);
        }
        for e in g.edges() {
            m = m.max(g.edge_label(e).index() + 1);
        }
    }
    m
}

/// The original exact GED solver, byte-for-byte the behavior [`crate::exact::exact_ged`]
/// had before the incremental-bound rewrite (same search order, same
/// `expanded` counts, same results).
pub fn reference_exact_ged(g1: &Graph, g2: &Graph, options: &GedOptions) -> GedResult {
    options.cost.validate().expect("invalid cost model");
    let labels = max_label_index(g1, g2);

    let mut order: Vec<VertexId> = g1.vertices().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g1.degree(v)));

    let mut r1 = vec![0i64; labels];
    for v in g1.vertices() {
        r1[g1.vertex_label(v).index()] += 1;
    }
    let mut r2 = vec![0i64; labels];
    for v in g2.vertices() {
        r2[g2.vertex_label(v).index()] += 1;
    }

    let trivial = VertexMapping::all_deleted(g1.order());
    let (seed_map, seed_cost) = match &options.warm_start {
        Some(m) => (m.clone(), mapping_cost(g1, g2, m, &options.cost)),
        None => (
            trivial.clone(),
            mapping_cost(g1, g2, &trivial, &options.cost),
        ),
    };

    let mut solver = RefSolver {
        g1,
        g2,
        cm: options.cost,
        order,
        map: vec![UNDECIDED; g1.order()],
        inv: vec![UNDECIDED; g2.order()],
        r1_vlabels: r1,
        r2_vlabels: r2,
        best_cost: seed_cost,
        best_map: seed_map
            .map
            .iter()
            .map(|m| m.map_or(DELETED, |v| v.0))
            .collect(),
        expanded: 0,
        node_limit: options.node_limit.unwrap_or(u64::MAX),
        aborted: false,
    };
    solver.search(0, 0.0);

    let mapping = VertexMapping {
        map: solver
            .best_map
            .iter()
            .map(|&x| {
                if x == DELETED || x == UNDECIDED {
                    None
                } else {
                    Some(VertexId(x))
                }
            })
            .collect(),
    };
    let cost = mapping_cost(g1, g2, &mapping, &options.cost);
    GedResult {
        cost,
        mapping,
        exact: !solver.aborted,
        expanded: solver.expanded,
    }
}
