//! Edit operation cost models.
//!
//! The paper (Section IV-A) uses the *uniform* model: every insertion,
//! deletion, or relabeling of a vertex or an edge costs 1, and relabeling is
//! free when the labels already agree. [`CostModel`] generalizes this to
//! arbitrary non-negative per-operation costs while keeping the uniform model
//! as the default.

/// Per-operation costs for graph edit distance.
///
/// All costs must be non-negative; [`CostModel::validate`] checks this. For
/// the exact solver's optimality, the mapping formulation additionally
/// assumes the usual metric-style sanity conditions hold (e.g. relabeling is
/// never more expensive than delete + insert), which the uniform model
/// satisfies.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Cost of inserting a vertex.
    pub vertex_ins: f64,
    /// Cost of deleting a vertex.
    pub vertex_del: f64,
    /// Cost of relabeling a vertex (labels differ).
    pub vertex_rel: f64,
    /// Cost of inserting an edge.
    pub edge_ins: f64,
    /// Cost of deleting an edge.
    pub edge_del: f64,
    /// Cost of relabeling an edge (labels differ).
    pub edge_rel: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::uniform()
    }
}

impl CostModel {
    /// The paper's uniform model: every operation costs 1.
    pub const fn uniform() -> Self {
        CostModel {
            vertex_ins: 1.0,
            vertex_del: 1.0,
            vertex_rel: 1.0,
            edge_ins: 1.0,
            edge_del: 1.0,
            edge_rel: 1.0,
        }
    }

    /// A model that makes structural change (insert/delete) `w` times more
    /// expensive than relabeling — useful for ablations.
    pub fn structure_weighted(w: f64) -> Self {
        CostModel {
            vertex_ins: w,
            vertex_del: w,
            vertex_rel: 1.0,
            edge_ins: w,
            edge_del: w,
            edge_rel: 1.0,
        }
    }

    /// Returns an error message when any cost is negative or non-finite.
    pub fn validate(&self) -> Result<(), String> {
        let all = [
            ("vertex_ins", self.vertex_ins),
            ("vertex_del", self.vertex_del),
            ("vertex_rel", self.vertex_rel),
            ("edge_ins", self.edge_ins),
            ("edge_del", self.edge_del),
            ("edge_rel", self.edge_rel),
        ];
        for (name, c) in all {
            if !c.is_finite() || c < 0.0 {
                return Err(format!(
                    "cost {name} must be finite and non-negative, got {c}"
                ));
            }
        }
        Ok(())
    }

    /// Cheapest single vertex operation — used to scale count-based lower
    /// bounds so they stay admissible under non-uniform costs.
    pub fn min_vertex_op(&self) -> f64 {
        self.vertex_ins.min(self.vertex_del).min(self.vertex_rel)
    }

    /// Cheapest single edge operation.
    pub fn min_edge_op(&self) -> f64 {
        self.edge_ins.min(self.edge_del).min(self.edge_rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_default() {
        let c = CostModel::default();
        assert_eq!(c, CostModel::uniform());
        assert_eq!(c.vertex_ins, 1.0);
        assert_eq!(c.min_vertex_op(), 1.0);
        assert_eq!(c.min_edge_op(), 1.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn structure_weighted_scales_ins_del() {
        let c = CostModel::structure_weighted(3.0);
        assert_eq!(c.vertex_ins, 3.0);
        assert_eq!(c.vertex_rel, 1.0);
        assert_eq!(c.min_edge_op(), 1.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_costs() {
        let mut c = CostModel::uniform();
        c.edge_rel = -1.0;
        assert!(c.validate().is_err());
        c.edge_rel = f64::NAN;
        assert!(c.validate().is_err());
        c.edge_rel = f64::INFINITY;
        assert!(c.validate().is_err());
    }
}
