//! Exact graph edit distance via depth-first branch and bound.
//!
//! ## Formulation
//!
//! The solver searches over complete vertex mappings (see [`crate::path`]):
//! `g1` vertices are decided one by one (highest degree first) — each either
//! substituted onto an unused `g2` vertex or deleted — and the induced edit
//! cost is accumulated incrementally so that every edge operation is charged
//! exactly once (when its *later* endpoint is decided, or at completion for
//! edges touching inserted vertices).
//!
//! ## Bounding
//!
//! At every node an admissible lower bound on the remaining cost is added:
//! the label-multiset alignment bound over the still-undecided vertex sets
//! and the edge sets fully contained in them (scaled by the cheapest
//! respective operation cost so it stays admissible under non-uniform
//! models). Branches with `cost + bound ≥ best` are pruned.
//!
//! ### The bound is incremental
//!
//! The bound is a function of four aligned-multiset summaries: the
//! undecided vertex-label counts of each side and the label counts of edges
//! lying entirely inside the undecided regions. Rather than re-deriving the
//! edge histograms by scanning both edge sets at every node (the original
//! implementation — retained as [`crate::reference::reference_exact_ged`] —
//! allocated two fresh histograms per node), the solver maintains the
//! counts **incrementally**: deciding a vertex removes its label from the
//! vertex counters and its incident still-undecided edges from the edge
//! counters, and updates the running multiset-intersection sizes in `O(1)`
//! per touched label (a `min(c1, c2)` term changes only when its own counter
//! moves). Undo reverses the exact same steps, so the aligned part of the
//! bound is *identical* to the rescanning implementation — debug builds
//! assert this against a from-scratch recomputation.
//!
//! ### The cross-edge term
//!
//! Unlimited searches additionally bound the *cross* edges — edges with one
//! decided and one undecided endpoint, which the aligned part is blind to:
//!
//! * every cross edge of a **deleted** g1 vertex must eventually be deleted
//!   (its charge lands when the undecided endpoint is decided);
//! * at a **substituted** pair `w → w'`, a g1 cross edge of `w` can only map
//!   onto a g2 cross edge of `w'` (injectively), so with `c1`/`c2` cross
//!   edges on the two sides at least `(c1 − c2)₊` deletions and
//!   `(c2 − c1)₊` insertions remain.
//!
//! These charges involve disjoint edge sets from the aligned term and are
//! all strictly future costs, so the sum stays admissible. Tightening an
//! admissible bound never changes what branch and bound returns — the
//! incumbent only advances on *strict* improvement, and any subtree holding
//! a strict improvement satisfies `cost + bound ≤ total < best` and
//! survives — so costs and witness mappings are bit-identical to the
//! reference (property-tested across cost models); only `expanded` shrinks
//! (gated as `≤` the reference count). Budgeted searches
//! ([`GedOptions::node_limit`]) keep the original bound so the *anytime*
//! behavior — which does depend on node counts — also stays bit-identical.
//!
//! The per-node candidate list lives in per-depth reusable buffers, making
//! the search allocation-free after the first descent.
//!
//! The solver accepts an optional *node budget*; when exhausted it returns
//! the best complete mapping found so far flagged `exact = false`, making it
//! an anytime algorithm for the large-graph benchmarks.

use gss_graph::{EdgeLookup, Graph, Label, VertexId};

use crate::cost::CostModel;
use crate::path::{mapping_cost, VertexMapping};

/// Options for [`exact_ged`].
#[derive(Clone, Debug, Default)]
pub struct GedOptions {
    /// Per-operation costs (default: uniform, as in the paper).
    pub cost: CostModel,
    /// Maximum number of search-tree nodes to expand (`None` = unlimited).
    pub node_limit: Option<u64>,
    /// Optional starting incumbent (e.g. from
    /// [`crate::bipartite::bipartite_ged`]); must be a valid complete mapping.
    pub warm_start: Option<VertexMapping>,
}

/// Result of a GED computation.
#[derive(Clone, Debug)]
pub struct GedResult {
    /// The edit cost found (minimal when `exact`).
    pub cost: f64,
    /// The witnessing vertex mapping.
    pub mapping: VertexMapping,
    /// True when the search completed and `cost` is provably optimal.
    pub exact: bool,
    /// Number of search nodes expanded.
    pub expanded: u64,
}

const UNDECIDED: u32 = u32::MAX;
/// Sentinel for a deleted vertex in `map`; doubles as the deletion branch
/// marker in the per-depth candidate buffers (no real vertex id reaches it).
const DELETED: u32 = u32::MAX - 1;

/// Decrements `count` (one side of an aligned pair) and keeps `common =
/// Σ min(count_k, other_k)` exact: the `min` for this key shrinks iff this
/// side was the (weak) minimum before the decrement.
#[inline]
fn dec_aligned(count: &mut i64, other: i64, common: &mut i64) {
    if *count <= other {
        *common -= 1;
    }
    *count -= 1;
}

/// Exact inverse of [`dec_aligned`].
#[inline]
fn inc_aligned(count: &mut i64, other: i64, common: &mut i64) {
    *count += 1;
    if *count <= other {
        *common += 1;
    }
}

struct Solver<'a> {
    g1: &'a Graph,
    g2: &'a Graph,
    /// Dense O(1) edge tables replacing the adjacency-list scans of
    /// `edge_between` in the per-candidate cost evaluation.
    lut1: EdgeLookup,
    lut2: EdgeLookup,
    cm: CostModel,
    /// g1 vertices in decision order (highest degree first).
    order: Vec<VertexId>,
    /// image of each g1 vertex (by g1 index): u32::MAX undecided, SENTINEL_DELETED deleted.
    map: Vec<u32>,
    /// preimage of each g2 vertex.
    inv: Vec<u32>,
    /// remaining (undecided) vertex-label counts.
    r1_vlabels: Vec<i64>,
    r2_vlabels: Vec<i64>,
    /// `Σ_l min(r1_vlabels[l], r2_vlabels[l])`, maintained incrementally.
    common_v: i64,
    /// undecided g2 vertex count.
    n2r: i64,
    /// label counts of edges fully inside the undecided region of each side.
    e1_labels: Vec<i64>,
    e2_labels: Vec<i64>,
    e1r: i64,
    e2r: i64,
    /// `Σ_l min(e1_labels[l], e2_labels[l])`, maintained incrementally.
    common_e: i64,
    /// Cross-edge counts: `cross1[w]` = edges from decided g1 vertex `w` to
    /// still-undecided g1 vertices (valid only while `w` is decided);
    /// `cross2[v]` is the g2 analogue for used vertices.
    cross1: Vec<i64>,
    cross2: Vec<i64>,
    /// Forced future deletions/insertions implied by the cross-edge counts
    /// (see module docs), in operation units.
    del_units: i64,
    ins_units: i64,
    /// Cross-edge term active? Disabled under a node budget so the anytime
    /// behavior stays bit-identical to the reference solver.
    cross_enabled: bool,
    /// Per-depth candidate buffers, reused across the whole search.
    cand_bufs: Vec<Vec<u32>>,
    best_cost: f64,
    best_map: Vec<u32>,
    expanded: u64,
    node_limit: u64,
    aborted: bool,
}

impl Solver<'_> {
    /// Incremental cost of deciding `u` (the vertex at `depth`) as `choice`
    /// (`Some(v)` substitution, `None` deletion), given all vertices earlier
    /// in the order are decided.
    // gss-lint: kernel — runs per search node of the GED branch-and-bound; one allocation here repeats millions of times per query
    fn decide_cost(&self, u: VertexId, choice: Option<VertexId>) -> f64 {
        let mut c = 0.0;
        match choice {
            Some(v) => {
                if self.g1.vertex_label(u) != self.g2.vertex_label(v) {
                    c += self.cm.vertex_rel;
                }
                // g1 edges from u to decided vertices.
                for (w, ew) in self.g1.neighbors(u) {
                    match self.map[w.index()] {
                        UNDECIDED => {}
                        DELETED => c += self.cm.edge_del,
                        x => match self.lut2.get(v, VertexId(x)) {
                            Some(e2) => {
                                if self.g2.edge_label(e2) != self.g1.edge_label(ew) {
                                    c += self.cm.edge_rel;
                                }
                            }
                            None => c += self.cm.edge_del,
                        },
                    }
                }
                // g2 edges from v to used vertices with no g1 counterpart.
                for (x, _ex) in self.g2.neighbors(v) {
                    let w = self.inv[x.index()];
                    if w == UNDECIDED {
                        continue;
                    }
                    if !self.lut1.has(u, VertexId(w)) {
                        c += self.cm.edge_ins;
                    }
                }
            }
            None => {
                c += self.cm.vertex_del;
                for (w, _) in self.g1.neighbors(u) {
                    if self.map[w.index()] != UNDECIDED {
                        c += self.cm.edge_del;
                    }
                }
            }
        }
        c
    }

    /// Cost of completing a state where all g1 vertices are decided:
    /// insert every unused g2 vertex and every g2 edge touching one.
    // gss-lint: kernel — runs per search node of the GED branch-and-bound; one allocation here repeats millions of times per query
    fn completion_cost(&self) -> f64 {
        let mut c = 0.0;
        for v in self.g2.vertices() {
            if self.inv[v.index()] == UNDECIDED {
                c += self.cm.vertex_ins;
            }
        }
        for e in self.g2.edges() {
            let edge = self.g2.edge(e);
            if self.inv[edge.u.index()] == UNDECIDED || self.inv[edge.v.index()] == UNDECIDED {
                c += self.cm.edge_ins;
            }
        }
        c
    }

    /// Removes a substituted pair's cross contribution from the unit sums.
    #[inline]
    // gss-lint: kernel — runs per search node of the GED branch-and-bound; one allocation here repeats millions of times per query
    fn pair_remove(&mut self, c1: i64, c2: i64) {
        self.del_units -= (c1 - c2).max(0);
        self.ins_units -= (c2 - c1).max(0);
    }

    /// Adds a substituted pair's cross contribution to the unit sums.
    #[inline]
    // gss-lint: kernel — runs per search node of the GED branch-and-bound; one allocation here repeats millions of times per query
    fn pair_add(&mut self, c1: i64, c2: i64) {
        self.del_units += (c1 - c2).max(0);
        self.ins_units += (c2 - c1).max(0);
    }

    /// Applies the bookkeeping of deciding `u` as `choice`: `u` (and, for a
    /// substitution, its image `v`) leaves the undecided region, taking its
    /// vertex label and its incident fully-undecided edges out of the
    /// aligned multiset counters; every incident edge either leaves the
    /// fully-undecided set (becoming a cross edge of `u`/`v`) or leaves a
    /// neighbour's cross set (now decided-decided, charged by
    /// [`Solver::decide_cost`]). Must run *before* `map`/`inv` are set —
    /// it reads the pre-decision undecided state.
    // gss-lint: kernel — runs per search node of the GED branch-and-bound; one allocation here repeats millions of times per query
    fn decide(&mut self, u: VertexId, lu: Label, choice: Option<VertexId>) {
        dec_aligned(
            &mut self.r1_vlabels[lu.index()],
            self.r2_vlabels[lu.index()],
            &mut self.common_v,
        );
        let mut cross_u = 0i64;
        for (w, ew) in self.g1.neighbors(u) {
            match self.map[w.index()] {
                UNDECIDED => {
                    let l = self.g1.edge_label(ew).index();
                    dec_aligned(
                        &mut self.e1_labels[l],
                        self.e2_labels[l],
                        &mut self.common_e,
                    );
                    self.e1r -= 1;
                    cross_u += 1;
                }
                DELETED => {
                    if self.cross_enabled {
                        self.del_units -= 1;
                        self.cross1[w.index()] -= 1;
                    }
                }
                x => {
                    if self.cross_enabled {
                        let c1 = self.cross1[w.index()];
                        let c2 = self.cross2[x as usize];
                        self.pair_remove(c1, c2);
                        self.cross1[w.index()] = c1 - 1;
                        self.pair_add(c1 - 1, c2);
                    }
                }
            }
        }
        match choice {
            Some(v) => {
                let lv = self.g2.vertex_label(v).index();
                dec_aligned(
                    &mut self.r2_vlabels[lv],
                    self.r1_vlabels[lv],
                    &mut self.common_v,
                );
                self.n2r -= 1;
                let mut cross_v = 0i64;
                for (x, ex) in self.g2.neighbors(v) {
                    let w1 = self.inv[x.index()];
                    if w1 == UNDECIDED {
                        let l = self.g2.edge_label(ex).index();
                        dec_aligned(
                            &mut self.e2_labels[l],
                            self.e1_labels[l],
                            &mut self.common_e,
                        );
                        self.e2r -= 1;
                        cross_v += 1;
                    } else if self.cross_enabled {
                        let c1 = self.cross1[w1 as usize];
                        let c2 = self.cross2[x.index()];
                        self.pair_remove(c1, c2);
                        self.cross2[x.index()] = c2 - 1;
                        self.pair_add(c1, c2 - 1);
                    }
                }
                if self.cross_enabled {
                    self.cross1[u.index()] = cross_u;
                    self.cross2[v.index()] = cross_v;
                    self.pair_add(cross_u, cross_v);
                }
                self.map[u.index()] = v.0;
                self.inv[v.index()] = u.0;
            }
            None => {
                if self.cross_enabled {
                    self.cross1[u.index()] = cross_u;
                    self.del_units += cross_u;
                }
                self.map[u.index()] = DELETED;
            }
        }
    }

    /// Exact inverse of [`Solver::decide`] (LIFO order).
    // gss-lint: kernel — runs per search node of the GED branch-and-bound; one allocation here repeats millions of times per query
    fn undecide(&mut self, u: VertexId, lu: Label, choice: Option<VertexId>) {
        match choice {
            Some(v) => {
                self.map[u.index()] = UNDECIDED;
                self.inv[v.index()] = UNDECIDED;
                if self.cross_enabled {
                    self.pair_remove(self.cross1[u.index()], self.cross2[v.index()]);
                }
                for (x, ex) in self.g2.neighbors(v) {
                    let w1 = self.inv[x.index()];
                    if w1 == UNDECIDED {
                        let l = self.g2.edge_label(ex).index();
                        inc_aligned(
                            &mut self.e2_labels[l],
                            self.e1_labels[l],
                            &mut self.common_e,
                        );
                        self.e2r += 1;
                    } else if self.cross_enabled {
                        let c1 = self.cross1[w1 as usize];
                        let c2 = self.cross2[x.index()];
                        self.pair_remove(c1, c2);
                        self.cross2[x.index()] = c2 + 1;
                        self.pair_add(c1, c2 + 1);
                    }
                }
                let lv = self.g2.vertex_label(v).index();
                inc_aligned(
                    &mut self.r2_vlabels[lv],
                    self.r1_vlabels[lv],
                    &mut self.common_v,
                );
                self.n2r += 1;
            }
            None => {
                if self.cross_enabled {
                    self.del_units -= self.cross1[u.index()];
                }
                self.map[u.index()] = UNDECIDED;
            }
        }
        for (w, ew) in self.g1.neighbors(u) {
            match self.map[w.index()] {
                UNDECIDED => {
                    let l = self.g1.edge_label(ew).index();
                    inc_aligned(
                        &mut self.e1_labels[l],
                        self.e2_labels[l],
                        &mut self.common_e,
                    );
                    self.e1r += 1;
                }
                DELETED => {
                    if self.cross_enabled {
                        self.cross1[w.index()] += 1;
                        self.del_units += 1;
                    }
                }
                x => {
                    if self.cross_enabled {
                        let c1 = self.cross1[w.index()];
                        let c2 = self.cross2[x as usize];
                        self.pair_remove(c1, c2);
                        self.cross1[w.index()] = c1 + 1;
                        self.pair_add(c1 + 1, c2);
                    }
                }
            }
        }
        inc_aligned(
            &mut self.r1_vlabels[lu.index()],
            self.r2_vlabels[lu.index()],
            &mut self.common_v,
        );
    }

    /// The aligned-multiset part of the bound — `O(1)` from the
    /// incrementally maintained counters; identical to the reference
    /// solver's whole bound.
    // gss-lint: kernel — runs per search node of the GED branch-and-bound; one allocation here repeats millions of times per query
    fn aligned_bound(&self, depth: usize) -> f64 {
        let n1r = (self.order.len() - depth) as i64;
        let vertex_ops = (n1r.max(self.n2r) - self.common_v).max(0) as f64;
        let edge_ops = (self.e1r.max(self.e2r) - self.common_e).max(0) as f64;
        vertex_ops * self.cm.min_vertex_op() + edge_ops * self.cm.min_edge_op()
    }

    /// Admissible lower bound on the cost still to come (see module docs):
    /// the aligned part plus, for unlimited searches, the cross-edge term.
    // gss-lint: kernel — runs per search node of the GED branch-and-bound; one allocation here repeats millions of times per query
    fn lower_bound(&self, depth: usize) -> f64 {
        let cross = if self.cross_enabled {
            self.del_units as f64 * self.cm.edge_del + self.ins_units as f64 * self.cm.edge_ins
        } else {
            0.0
        };
        self.aligned_bound(depth) + cross
    }

    /// From-scratch recomputation of the cross-edge units — the
    /// debug-assert oracle for `del_units`/`ins_units`.
    #[cfg(debug_assertions)]
    fn cross_units_rescan(&self) -> (i64, i64) {
        let undecided1 = |w: VertexId| {
            self.g1
                .neighbors(w)
                .filter(|(n, _)| self.map[n.index()] == UNDECIDED)
                .count() as i64
        };
        let unused2 = |v: VertexId| {
            self.g2
                .neighbors(v)
                .filter(|(n, _)| self.inv[n.index()] == UNDECIDED)
                .count() as i64
        };
        let (mut del, mut ins) = (0i64, 0i64);
        for w in self.g1.vertices() {
            match self.map[w.index()] {
                UNDECIDED => {}
                DELETED => del += undecided1(w),
                x => {
                    let c1 = undecided1(w);
                    let c2 = unused2(VertexId(x));
                    del += (c1 - c2).max(0);
                    ins += (c2 - c1).max(0);
                }
            }
        }
        (del, ins)
    }

    /// From-scratch recomputation of the bound — the debug-assert oracle
    /// proving the incremental counters never drift.
    #[cfg(debug_assertions)]
    fn lower_bound_rescan(&self, depth: usize) -> f64 {
        let n1r = (self.order.len() - depth) as i64;
        let n2r = self.inv.iter().filter(|&&w| w == UNDECIDED).count() as i64;
        let mut common_v = 0i64;
        for (l, &c1) in self.r1_vlabels.iter().enumerate() {
            common_v += c1.min(self.r2_vlabels[l]);
        }
        let vertex_ops = (n1r.max(n2r) - common_v).max(0) as f64;

        let mut e1_labels: Vec<i64> = vec![0; self.r1_vlabels.len()];
        let mut e1r = 0i64;
        for e in self.g1.edges() {
            let edge = self.g1.edge(e);
            if self.map[edge.u.index()] == UNDECIDED && self.map[edge.v.index()] == UNDECIDED {
                e1_labels[edge.label.index()] += 1;
                e1r += 1;
            }
        }
        let mut e2_labels: Vec<i64> = vec![0; self.r1_vlabels.len()];
        let mut e2r = 0i64;
        for e in self.g2.edges() {
            let edge = self.g2.edge(e);
            if self.inv[edge.u.index()] == UNDECIDED && self.inv[edge.v.index()] == UNDECIDED {
                e2_labels[edge.label.index()] += 1;
                e2r += 1;
            }
        }
        let mut common_e = 0i64;
        for (l, &c1) in e1_labels.iter().enumerate() {
            common_e += c1.min(e2_labels[l]);
        }
        let edge_ops = (e1r.max(e2r) - common_e).max(0) as f64;

        vertex_ops * self.cm.min_vertex_op() + edge_ops * self.cm.min_edge_op()
    }

    // gss-lint: kernel — runs per search node of the GED branch-and-bound; one allocation here repeats millions of times per query
    fn search(&mut self, depth: usize, cost_so_far: f64) {
        if self.aborted {
            return;
        }
        self.expanded += 1;
        if self.expanded > self.node_limit {
            self.aborted = true;
            return;
        }
        if depth == self.order.len() {
            let total = cost_so_far + self.completion_cost();
            if total < self.best_cost {
                self.best_cost = total;
                self.best_map.copy_from_slice(&self.map);
            }
            return;
        }
        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(
                self.aligned_bound(depth),
                self.lower_bound_rescan(depth),
                "incremental aligned bound drifted at depth {depth}"
            );
            if self.cross_enabled {
                debug_assert_eq!(
                    (self.del_units, self.ins_units),
                    self.cross_units_rescan(),
                    "incremental cross-edge units drifted at depth {depth}"
                );
            }
        }
        if cost_so_far + self.lower_bound(depth) >= self.best_cost {
            return;
        }
        let u = self.order[depth];
        let lu = self.g1.vertex_label(u);

        // Candidate order: same-label substitutions, deletion, then
        // different-label substitutions — cheap options first so a good
        // incumbent appears early. The buffer is per-depth and reused
        // across the whole search.
        if self.cand_bufs.len() <= depth {
            // gss-lint: allow(no-alloc-in-kernel) — amortized: grows only on the first visit to a new max depth, then every deeper node reuses the buffer
            self.cand_bufs.resize_with(depth + 1, Vec::new);
        }
        let mut buf = std::mem::take(&mut self.cand_bufs[depth]);
        buf.clear();
        for v in self.g2.vertices() {
            if self.inv[v.index()] == UNDECIDED && self.g2.vertex_label(v) == lu {
                buf.push(v.0);
            }
        }
        buf.push(DELETED);
        for v in self.g2.vertices() {
            if self.inv[v.index()] == UNDECIDED && self.g2.vertex_label(v) != lu {
                buf.push(v.0);
            }
        }

        for &enc in &buf {
            let choice = (enc != DELETED).then_some(VertexId(enc));
            let step = self.decide_cost(u, choice);
            if cost_so_far + step >= self.best_cost {
                continue;
            }
            self.decide(u, lu, choice);
            self.search(depth + 1, cost_so_far + step);
            self.undecide(u, lu, choice);
            if self.aborted {
                break;
            }
        }
        self.cand_bufs[depth] = buf;
    }
}

fn max_label_index(g1: &Graph, g2: &Graph) -> usize {
    let mut m = 0usize;
    for g in [g1, g2] {
        for v in g.vertices() {
            m = m.max(g.vertex_label(v).index() + 1);
        }
        for e in g.edges() {
            m = m.max(g.edge_label(e).index() + 1);
        }
    }
    m
}

/// Computes the exact graph edit distance between `g1` and `g2`
/// (Definition 8 of the paper, uniform costs by default).
///
/// GED is symmetric for symmetric cost models (swap deletions/insertions),
/// which the default model is; `tests` verify symmetry empirically.
pub fn exact_ged(g1: &Graph, g2: &Graph, options: &GedOptions) -> GedResult {
    options.cost.validate().expect("invalid cost model");
    let labels = max_label_index(g1, g2);

    let mut order: Vec<VertexId> = g1.vertices().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g1.degree(v)));

    let mut r1 = vec![0i64; labels];
    for v in g1.vertices() {
        r1[g1.vertex_label(v).index()] += 1;
    }
    let mut r2 = vec![0i64; labels];
    for v in g2.vertices() {
        r2[g2.vertex_label(v).index()] += 1;
    }
    let common_v: i64 = r1.iter().zip(&r2).map(|(&a, &b)| a.min(b)).sum();
    let mut e1_labels = vec![0i64; labels];
    for e in g1.edges() {
        e1_labels[g1.edge_label(e).index()] += 1;
    }
    let mut e2_labels = vec![0i64; labels];
    for e in g2.edges() {
        e2_labels[g2.edge_label(e).index()] += 1;
    }
    let common_e: i64 = e1_labels
        .iter()
        .zip(&e2_labels)
        .map(|(&a, &b)| a.min(b))
        .sum();

    // Incumbent: warm start if provided, else "delete everything".
    let trivial = VertexMapping::all_deleted(g1.order());
    let (seed_map, seed_cost) = match &options.warm_start {
        Some(m) => (m.clone(), mapping_cost(g1, g2, m, &options.cost)),
        None => (
            trivial.clone(),
            mapping_cost(g1, g2, &trivial, &options.cost),
        ),
    };

    let mut solver = Solver {
        g1,
        g2,
        lut1: EdgeLookup::new(g1),
        lut2: EdgeLookup::new(g2),
        cm: options.cost,
        order,
        map: vec![UNDECIDED; g1.order()],
        inv: vec![UNDECIDED; g2.order()],
        r1_vlabels: r1,
        r2_vlabels: r2,
        common_v,
        n2r: g2.order() as i64,
        e1_labels,
        e2_labels,
        e1r: g1.size() as i64,
        e2r: g2.size() as i64,
        common_e,
        cross1: vec![0; g1.order()],
        cross2: vec![0; g2.order()],
        del_units: 0,
        ins_units: 0,
        cross_enabled: options.node_limit.is_none(),
        cand_bufs: Vec::new(),
        best_cost: seed_cost,
        best_map: seed_map
            .map
            .iter()
            .map(|m| m.map_or(DELETED, |v| v.0))
            .collect(),
        expanded: 0,
        node_limit: options.node_limit.unwrap_or(u64::MAX),
        aborted: false,
    };
    solver.search(0, 0.0);

    let mapping = VertexMapping {
        map: solver
            .best_map
            .iter()
            .map(|&x| {
                if x == DELETED || x == UNDECIDED {
                    None
                } else {
                    Some(VertexId(x))
                }
            })
            .collect(),
    };
    // Recompute from the mapping for bullet-proof consistency.
    let cost = mapping_cost(g1, g2, &mapping, &options.cost);
    debug_assert!(
        (cost - solver.best_cost).abs() < 1e-9,
        "incremental cost drifted: {cost} vs {}",
        solver.best_cost
    );
    GedResult {
        cost,
        mapping,
        exact: !solver.aborted,
        expanded: solver.expanded,
    }
}

/// Convenience: exact uniform-cost GED as used throughout the paper.
pub fn uniform_ged(g1: &Graph, g2: &Graph) -> f64 {
    exact_ged(g1, g2, &GedOptions::default()).cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::{Graph, GraphBuilder, Label, Rng, Vocabulary};

    fn build(
        v: &mut Vocabulary,
        name: &str,
        verts: &[(&str, &str)],
        edges: &[(&str, &str, &str)],
    ) -> Graph {
        let mut b = GraphBuilder::new(name, v);
        for (n, l) in verts {
            b = b.vertex(n, l);
        }
        for (a, c, l) in edges {
            b = b.edge(a, c, l);
        }
        b.build().unwrap()
    }

    #[test]
    fn identical_graphs_have_zero_distance() {
        let mut v = Vocabulary::new();
        let g = build(&mut v, "g", &[("a", "A"), ("b", "B")], &[("a", "b", "-")]);
        let r = exact_ged(&g, &g, &GedOptions::default());
        assert_eq!(r.cost, 0.0);
        assert!(r.exact);
    }

    #[test]
    fn single_vertex_relabel() {
        let mut v = Vocabulary::new();
        let g1 = build(&mut v, "g1", &[("a", "A"), ("b", "B")], &[("a", "b", "-")]);
        let g2 = build(&mut v, "g2", &[("a", "A"), ("b", "X")], &[("a", "b", "-")]);
        assert_eq!(uniform_ged(&g1, &g2), 1.0);
    }

    #[test]
    fn single_edge_relabel() {
        let mut v = Vocabulary::new();
        let g1 = build(&mut v, "g1", &[("a", "A"), ("b", "B")], &[("a", "b", "-")]);
        let g2 = build(&mut v, "g2", &[("a", "A"), ("b", "B")], &[("a", "b", "=")]);
        assert_eq!(uniform_ged(&g1, &g2), 1.0);
    }

    #[test]
    fn edge_insertion_only() {
        let mut v = Vocabulary::new();
        let g1 = build(
            &mut v,
            "g1",
            &[("a", "A"), ("b", "B"), ("c", "C")],
            &[("a", "b", "-")],
        );
        let g2 = build(
            &mut v,
            "g2",
            &[("a", "A"), ("b", "B"), ("c", "C")],
            &[("a", "b", "-"), ("b", "c", "-")],
        );
        assert_eq!(uniform_ged(&g1, &g2), 1.0);
        assert_eq!(uniform_ged(&g2, &g1), 1.0); // symmetry
    }

    #[test]
    fn vertex_insertion_with_edge() {
        let mut v = Vocabulary::new();
        let g1 = build(&mut v, "g1", &[("a", "A")], &[]);
        let g2 = build(&mut v, "g2", &[("a", "A"), ("b", "B")], &[("a", "b", "-")]);
        // insert vertex + insert edge = 2
        assert_eq!(uniform_ged(&g1, &g2), 2.0);
        assert_eq!(uniform_ged(&g2, &g1), 2.0);
    }

    #[test]
    fn relabeling_beats_delete_insert() {
        // Same structure, all labels shifted: relabel each vertex.
        let mut v = Vocabulary::new();
        let g1 = build(
            &mut v,
            "g1",
            &[("a", "A"), ("b", "B"), ("c", "C")],
            &[("a", "b", "-"), ("b", "c", "-")],
        );
        let g2 = build(
            &mut v,
            "g2",
            &[("a", "X"), ("b", "Y"), ("c", "Z")],
            &[("a", "b", "-"), ("b", "c", "-")],
        );
        assert_eq!(uniform_ged(&g1, &g2), 3.0);
    }

    #[test]
    fn structural_mismatch_star_vs_path() {
        // Same labels, star vs path (unlabeled-ish): requires 2 edge moves
        // (delete one star edge, insert one path edge).
        let mut v = Vocabulary::new();
        let star = build(
            &mut v,
            "star",
            &[("c", "C"), ("x", "C"), ("y", "C"), ("z", "C")],
            &[("c", "x", "-"), ("c", "y", "-"), ("c", "z", "-")],
        );
        let path = build(
            &mut v,
            "path",
            &[("a", "C"), ("b", "C"), ("d", "C"), ("e", "C")],
            &[("a", "b", "-"), ("b", "d", "-"), ("d", "e", "-")],
        );
        assert_eq!(uniform_ged(&star, &path), 2.0);
    }

    #[test]
    fn warm_start_does_not_change_answer() {
        let mut v = Vocabulary::new();
        let g1 = build(&mut v, "g1", &[("a", "A"), ("b", "B")], &[("a", "b", "-")]);
        let g2 = build(
            &mut v,
            "g2",
            &[("b", "B"), ("x", "X"), ("a", "A")],
            &[("a", "b", "=")],
        );
        let plain = exact_ged(&g1, &g2, &GedOptions::default());
        let warm = exact_ged(
            &g1,
            &g2,
            &GedOptions {
                warm_start: Some(plain.mapping.clone()),
                ..GedOptions::default()
            },
        );
        assert_eq!(plain.cost, warm.cost);
        assert!(warm.exact);
        assert!(
            warm.expanded <= plain.expanded,
            "warm start should not expand more nodes"
        );
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let mut v = Vocabulary::new();
        // Larger same-label graphs so the search tree is non-trivial.
        let mut b1 = GraphBuilder::new("g1", &mut v).vertices(&["a", "b", "c", "d", "e", "f"], "C");
        b1 = b1.cycle(&["a", "b", "c", "d", "e", "f"], "-");
        let g1 = b1.build().unwrap();
        let mut b2 = GraphBuilder::new("g2", &mut v).vertices(&["a", "b", "c", "d", "e", "f"], "C");
        b2 = b2
            .path(&["a", "b", "c", "d", "e", "f"], "-")
            .edge("a", "c", "-");
        let g2 = b2.build().unwrap();
        let limited = exact_ged(
            &g1,
            &g2,
            &GedOptions {
                node_limit: Some(3),
                ..Default::default()
            },
        );
        assert!(!limited.exact);
        let full = exact_ged(&g1, &g2, &GedOptions::default());
        assert!(full.exact);
        assert!(
            limited.cost >= full.cost,
            "anytime bound must upper-bound the optimum"
        );
    }

    #[test]
    fn symmetry_on_random_graphs() {
        fn random_graph(rng: &mut Rng, n: usize, m: usize) -> Graph {
            let mut g = Graph::new("r");
            for _ in 0..n {
                g.add_vertex(Label(rng.gen_index(3) as u32));
            }
            let mut added = 0;
            let mut attempts = 0;
            while added < m && attempts < 100 {
                attempts += 1;
                let u = gss_graph::VertexId::new(rng.gen_index(n));
                let w = gss_graph::VertexId::new(rng.gen_index(n));
                if u != w && !g.has_edge(u, w) {
                    g.add_edge(u, w, Label(10 + rng.gen_index(2) as u32))
                        .unwrap();
                    added += 1;
                }
            }
            g
        }
        let mut rng = Rng::seed_from_u64(0x6ed);
        for case in 0..40 {
            let (n1, m1) = (1 + rng.gen_index(4), rng.gen_index(5));
            let (n2, m2) = (1 + rng.gen_index(4), rng.gen_index(5));
            let g1 = random_graph(&mut rng, n1, m1);
            let g2 = random_graph(&mut rng, n2, m2);
            let d12 = uniform_ged(&g1, &g2);
            let d21 = uniform_ged(&g2, &g1);
            assert_eq!(d12, d21, "case {case}: GED must be symmetric");
            assert_eq!(uniform_ged(&g1, &g1), 0.0);
        }
    }

    #[test]
    fn empty_graph_distances() {
        let mut v = Vocabulary::new();
        let empty = GraphBuilder::new("e", &mut v).build().unwrap();
        let g = build(&mut v, "g", &[("a", "A"), ("b", "B")], &[("a", "b", "-")]);
        assert_eq!(uniform_ged(&empty, &empty), 0.0);
        assert_eq!(uniform_ged(&empty, &g), 3.0); // 2 vertices + 1 edge
        assert_eq!(uniform_ged(&g, &empty), 3.0);
    }
}
