//! Exact graph edit distance via depth-first branch and bound.
//!
//! ## Formulation
//!
//! The solver searches over complete vertex mappings (see [`crate::path`]):
//! `g1` vertices are decided one by one (highest degree first) — each either
//! substituted onto an unused `g2` vertex or deleted — and the induced edit
//! cost is accumulated incrementally so that every edge operation is charged
//! exactly once (when its *later* endpoint is decided, or at completion for
//! edges touching inserted vertices).
//!
//! ## Bounding
//!
//! At every node an admissible lower bound on the remaining cost is added:
//! the label-multiset alignment bound over the still-undecided vertex sets
//! and the edge sets fully contained in them (scaled by the cheapest
//! respective operation cost so it stays admissible under non-uniform
//! models). Branches with `cost + bound ≥ best` are pruned.
//!
//! The solver accepts an optional *node budget*; when exhausted it returns
//! the best complete mapping found so far flagged `exact = false`, making it
//! an anytime algorithm for the large-graph benchmarks.

use gss_graph::{Graph, VertexId};

use crate::cost::CostModel;
use crate::path::{mapping_cost, VertexMapping};

/// Options for [`exact_ged`].
#[derive(Clone, Debug, Default)]
pub struct GedOptions {
    /// Per-operation costs (default: uniform, as in the paper).
    pub cost: CostModel,
    /// Maximum number of search-tree nodes to expand (`None` = unlimited).
    pub node_limit: Option<u64>,
    /// Optional starting incumbent (e.g. from
    /// [`crate::bipartite::bipartite_ged`]); must be a valid complete mapping.
    pub warm_start: Option<VertexMapping>,
}

/// Result of a GED computation.
#[derive(Clone, Debug)]
pub struct GedResult {
    /// The edit cost found (minimal when `exact`).
    pub cost: f64,
    /// The witnessing vertex mapping.
    pub mapping: VertexMapping,
    /// True when the search completed and `cost` is provably optimal.
    pub exact: bool,
    /// Number of search nodes expanded.
    pub expanded: u64,
}

struct Solver<'a> {
    g1: &'a Graph,
    g2: &'a Graph,
    cm: CostModel,
    /// g1 vertices in decision order (highest degree first).
    order: Vec<VertexId>,
    /// image of each g1 vertex (by g1 index): u32::MAX undecided, SENTINEL_DELETED deleted.
    map: Vec<u32>,
    /// preimage of each g2 vertex.
    inv: Vec<u32>,
    /// remaining (undecided) vertex-label counts.
    r1_vlabels: Vec<i64>,
    r2_vlabels: Vec<i64>,
    best_cost: f64,
    best_map: Vec<u32>,
    expanded: u64,
    node_limit: u64,
    aborted: bool,
}

const UNDECIDED: u32 = u32::MAX;
const DELETED: u32 = u32::MAX - 1;

impl<'a> Solver<'a> {
    /// Incremental cost of deciding `u` (the vertex at `depth`) as `choice`
    /// (`Some(v)` substitution, `None` deletion), given all vertices earlier
    /// in the order are decided.
    fn decide_cost(&self, u: VertexId, choice: Option<VertexId>) -> f64 {
        let mut c = 0.0;
        match choice {
            Some(v) => {
                if self.g1.vertex_label(u) != self.g2.vertex_label(v) {
                    c += self.cm.vertex_rel;
                }
                // g1 edges from u to decided vertices.
                for (w, ew) in self.g1.neighbors(u) {
                    match self.map[w.index()] {
                        UNDECIDED => {}
                        DELETED => c += self.cm.edge_del,
                        x => match self.g2.edge_between(v, VertexId(x)) {
                            Some(e2) => {
                                if self.g2.edge_label(e2) != self.g1.edge_label(ew) {
                                    c += self.cm.edge_rel;
                                }
                            }
                            None => c += self.cm.edge_del,
                        },
                    }
                }
                // g2 edges from v to used vertices with no g1 counterpart.
                for (x, _ex) in self.g2.neighbors(v) {
                    let w = self.inv[x.index()];
                    if w == UNDECIDED {
                        continue;
                    }
                    if self.g1.edge_between(u, VertexId(w)).is_none() {
                        c += self.cm.edge_ins;
                    }
                }
            }
            None => {
                c += self.cm.vertex_del;
                for (w, _) in self.g1.neighbors(u) {
                    if self.map[w.index()] != UNDECIDED {
                        c += self.cm.edge_del;
                    }
                }
            }
        }
        c
    }

    /// Cost of completing a state where all g1 vertices are decided:
    /// insert every unused g2 vertex and every g2 edge touching one.
    fn completion_cost(&self) -> f64 {
        let mut c = 0.0;
        for v in self.g2.vertices() {
            if self.inv[v.index()] == UNDECIDED {
                c += self.cm.vertex_ins;
            }
        }
        for e in self.g2.edges() {
            let edge = self.g2.edge(e);
            if self.inv[edge.u.index()] == UNDECIDED || self.inv[edge.v.index()] == UNDECIDED {
                c += self.cm.edge_ins;
            }
        }
        c
    }

    /// Admissible lower bound on the cost still to come (see module docs).
    fn lower_bound(&self, depth: usize) -> f64 {
        // Vertex part: align remaining label multisets.
        let n1r = (self.order.len() - depth) as i64;
        let n2r = self.inv.iter().filter(|&&w| w == UNDECIDED).count() as i64;
        let mut common_v = 0i64;
        for (l, &c1) in self.r1_vlabels.iter().enumerate() {
            common_v += c1.min(self.r2_vlabels[l]);
        }
        let vertex_ops = (n1r.max(n2r) - common_v).max(0) as f64;

        // Edge part: edges fully inside the undecided regions, aligned by
        // edge label.
        let mut e1_labels: Vec<i64> = vec![0; self.r1_vlabels.len()];
        let mut e1r = 0i64;
        for e in self.g1.edges() {
            let edge = self.g1.edge(e);
            if self.map[edge.u.index()] == UNDECIDED && self.map[edge.v.index()] == UNDECIDED {
                e1_labels[edge.label.index()] += 1;
                e1r += 1;
            }
        }
        let mut e2_labels: Vec<i64> = vec![0; self.r1_vlabels.len()];
        let mut e2r = 0i64;
        for e in self.g2.edges() {
            let edge = self.g2.edge(e);
            if self.inv[edge.u.index()] == UNDECIDED && self.inv[edge.v.index()] == UNDECIDED {
                e2_labels[edge.label.index()] += 1;
                e2r += 1;
            }
        }
        let mut common_e = 0i64;
        for (l, &c1) in e1_labels.iter().enumerate() {
            common_e += c1.min(e2_labels[l]);
        }
        let edge_ops = (e1r.max(e2r) - common_e).max(0) as f64;

        vertex_ops * self.cm.min_vertex_op() + edge_ops * self.cm.min_edge_op()
    }

    fn search(&mut self, depth: usize, cost_so_far: f64) {
        if self.aborted {
            return;
        }
        self.expanded += 1;
        if self.expanded > self.node_limit {
            self.aborted = true;
            return;
        }
        if depth == self.order.len() {
            let total = cost_so_far + self.completion_cost();
            if total < self.best_cost {
                self.best_cost = total;
                self.best_map = self.map.clone();
            }
            return;
        }
        if cost_so_far + self.lower_bound(depth) >= self.best_cost {
            return;
        }
        let u = self.order[depth];
        let lu = self.g1.vertex_label(u);

        // Candidate order: same-label substitutions, deletion, then
        // different-label substitutions — cheap options first so a good
        // incumbent appears early.
        let mut candidates: Vec<Option<VertexId>> = Vec::with_capacity(self.g2.order() + 1);
        for v in self.g2.vertices() {
            if self.inv[v.index()] == UNDECIDED && self.g2.vertex_label(v) == lu {
                candidates.push(Some(v));
            }
        }
        candidates.push(None);
        for v in self.g2.vertices() {
            if self.inv[v.index()] == UNDECIDED && self.g2.vertex_label(v) != lu {
                candidates.push(Some(v));
            }
        }

        for choice in candidates {
            let step = self.decide_cost(u, choice);
            if cost_so_far + step >= self.best_cost {
                continue;
            }
            // Apply.
            self.r1_vlabels[lu.index()] -= 1;
            match choice {
                Some(v) => {
                    self.map[u.index()] = v.0;
                    self.inv[v.index()] = u.0;
                    self.r2_vlabels[self.g2.vertex_label(v).index()] -= 1;
                }
                None => self.map[u.index()] = DELETED,
            }
            self.search(depth + 1, cost_so_far + step);
            // Undo.
            self.r1_vlabels[lu.index()] += 1;
            match choice {
                Some(v) => {
                    self.map[u.index()] = UNDECIDED;
                    self.inv[v.index()] = UNDECIDED;
                    self.r2_vlabels[self.g2.vertex_label(v).index()] += 1;
                }
                None => self.map[u.index()] = UNDECIDED,
            }
            if self.aborted {
                return;
            }
        }
    }
}

fn max_label_index(g1: &Graph, g2: &Graph) -> usize {
    let mut m = 0usize;
    for g in [g1, g2] {
        for v in g.vertices() {
            m = m.max(g.vertex_label(v).index() + 1);
        }
        for e in g.edges() {
            m = m.max(g.edge_label(e).index() + 1);
        }
    }
    m
}

/// Computes the exact graph edit distance between `g1` and `g2`
/// (Definition 8 of the paper, uniform costs by default).
///
/// GED is symmetric for symmetric cost models (swap deletions/insertions),
/// which the default model is; `tests` verify symmetry empirically.
pub fn exact_ged(g1: &Graph, g2: &Graph, options: &GedOptions) -> GedResult {
    options.cost.validate().expect("invalid cost model");
    let labels = max_label_index(g1, g2);

    let mut order: Vec<VertexId> = g1.vertices().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g1.degree(v)));

    let mut r1 = vec![0i64; labels];
    for v in g1.vertices() {
        r1[g1.vertex_label(v).index()] += 1;
    }
    let mut r2 = vec![0i64; labels];
    for v in g2.vertices() {
        r2[g2.vertex_label(v).index()] += 1;
    }

    // Incumbent: warm start if provided, else "delete everything".
    let trivial = VertexMapping::all_deleted(g1.order());
    let (seed_map, seed_cost) = match &options.warm_start {
        Some(m) => (m.clone(), mapping_cost(g1, g2, m, &options.cost)),
        None => (
            trivial.clone(),
            mapping_cost(g1, g2, &trivial, &options.cost),
        ),
    };

    let mut solver = Solver {
        g1,
        g2,
        cm: options.cost,
        order,
        map: vec![UNDECIDED; g1.order()],
        inv: vec![UNDECIDED; g2.order()],
        r1_vlabels: r1,
        r2_vlabels: r2,
        best_cost: seed_cost,
        best_map: seed_map
            .map
            .iter()
            .map(|m| m.map_or(DELETED, |v| v.0))
            .collect(),
        expanded: 0,
        node_limit: options.node_limit.unwrap_or(u64::MAX),
        aborted: false,
    };
    solver.search(0, 0.0);

    let mapping = VertexMapping {
        map: solver
            .best_map
            .iter()
            .map(|&x| {
                if x == DELETED || x == UNDECIDED {
                    None
                } else {
                    Some(VertexId(x))
                }
            })
            .collect(),
    };
    // Recompute from the mapping for bullet-proof consistency.
    let cost = mapping_cost(g1, g2, &mapping, &options.cost);
    debug_assert!(
        (cost - solver.best_cost).abs() < 1e-9,
        "incremental cost drifted: {cost} vs {}",
        solver.best_cost
    );
    GedResult {
        cost,
        mapping,
        exact: !solver.aborted,
        expanded: solver.expanded,
    }
}

/// Convenience: exact uniform-cost GED as used throughout the paper.
pub fn uniform_ged(g1: &Graph, g2: &Graph) -> f64 {
    exact_ged(g1, g2, &GedOptions::default()).cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::{Graph, GraphBuilder, Label, Rng, Vocabulary};

    fn build(
        v: &mut Vocabulary,
        name: &str,
        verts: &[(&str, &str)],
        edges: &[(&str, &str, &str)],
    ) -> Graph {
        let mut b = GraphBuilder::new(name, v);
        for (n, l) in verts {
            b = b.vertex(n, l);
        }
        for (a, c, l) in edges {
            b = b.edge(a, c, l);
        }
        b.build().unwrap()
    }

    #[test]
    fn identical_graphs_have_zero_distance() {
        let mut v = Vocabulary::new();
        let g = build(&mut v, "g", &[("a", "A"), ("b", "B")], &[("a", "b", "-")]);
        let r = exact_ged(&g, &g, &GedOptions::default());
        assert_eq!(r.cost, 0.0);
        assert!(r.exact);
    }

    #[test]
    fn single_vertex_relabel() {
        let mut v = Vocabulary::new();
        let g1 = build(&mut v, "g1", &[("a", "A"), ("b", "B")], &[("a", "b", "-")]);
        let g2 = build(&mut v, "g2", &[("a", "A"), ("b", "X")], &[("a", "b", "-")]);
        assert_eq!(uniform_ged(&g1, &g2), 1.0);
    }

    #[test]
    fn single_edge_relabel() {
        let mut v = Vocabulary::new();
        let g1 = build(&mut v, "g1", &[("a", "A"), ("b", "B")], &[("a", "b", "-")]);
        let g2 = build(&mut v, "g2", &[("a", "A"), ("b", "B")], &[("a", "b", "=")]);
        assert_eq!(uniform_ged(&g1, &g2), 1.0);
    }

    #[test]
    fn edge_insertion_only() {
        let mut v = Vocabulary::new();
        let g1 = build(
            &mut v,
            "g1",
            &[("a", "A"), ("b", "B"), ("c", "C")],
            &[("a", "b", "-")],
        );
        let g2 = build(
            &mut v,
            "g2",
            &[("a", "A"), ("b", "B"), ("c", "C")],
            &[("a", "b", "-"), ("b", "c", "-")],
        );
        assert_eq!(uniform_ged(&g1, &g2), 1.0);
        assert_eq!(uniform_ged(&g2, &g1), 1.0); // symmetry
    }

    #[test]
    fn vertex_insertion_with_edge() {
        let mut v = Vocabulary::new();
        let g1 = build(&mut v, "g1", &[("a", "A")], &[]);
        let g2 = build(&mut v, "g2", &[("a", "A"), ("b", "B")], &[("a", "b", "-")]);
        // insert vertex + insert edge = 2
        assert_eq!(uniform_ged(&g1, &g2), 2.0);
        assert_eq!(uniform_ged(&g2, &g1), 2.0);
    }

    #[test]
    fn relabeling_beats_delete_insert() {
        // Same structure, all labels shifted: relabel each vertex.
        let mut v = Vocabulary::new();
        let g1 = build(
            &mut v,
            "g1",
            &[("a", "A"), ("b", "B"), ("c", "C")],
            &[("a", "b", "-"), ("b", "c", "-")],
        );
        let g2 = build(
            &mut v,
            "g2",
            &[("a", "X"), ("b", "Y"), ("c", "Z")],
            &[("a", "b", "-"), ("b", "c", "-")],
        );
        assert_eq!(uniform_ged(&g1, &g2), 3.0);
    }

    #[test]
    fn structural_mismatch_star_vs_path() {
        // Same labels, star vs path (unlabeled-ish): requires 2 edge moves
        // (delete one star edge, insert one path edge).
        let mut v = Vocabulary::new();
        let star = build(
            &mut v,
            "star",
            &[("c", "C"), ("x", "C"), ("y", "C"), ("z", "C")],
            &[("c", "x", "-"), ("c", "y", "-"), ("c", "z", "-")],
        );
        let path = build(
            &mut v,
            "path",
            &[("a", "C"), ("b", "C"), ("d", "C"), ("e", "C")],
            &[("a", "b", "-"), ("b", "d", "-"), ("d", "e", "-")],
        );
        assert_eq!(uniform_ged(&star, &path), 2.0);
    }

    #[test]
    fn warm_start_does_not_change_answer() {
        let mut v = Vocabulary::new();
        let g1 = build(&mut v, "g1", &[("a", "A"), ("b", "B")], &[("a", "b", "-")]);
        let g2 = build(
            &mut v,
            "g2",
            &[("b", "B"), ("x", "X"), ("a", "A")],
            &[("a", "b", "=")],
        );
        let plain = exact_ged(&g1, &g2, &GedOptions::default());
        let warm = exact_ged(
            &g1,
            &g2,
            &GedOptions {
                warm_start: Some(plain.mapping.clone()),
                ..GedOptions::default()
            },
        );
        assert_eq!(plain.cost, warm.cost);
        assert!(warm.exact);
        assert!(
            warm.expanded <= plain.expanded,
            "warm start should not expand more nodes"
        );
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let mut v = Vocabulary::new();
        // Larger same-label graphs so the search tree is non-trivial.
        let mut b1 = GraphBuilder::new("g1", &mut v).vertices(&["a", "b", "c", "d", "e", "f"], "C");
        b1 = b1.cycle(&["a", "b", "c", "d", "e", "f"], "-");
        let g1 = b1.build().unwrap();
        let mut b2 = GraphBuilder::new("g2", &mut v).vertices(&["a", "b", "c", "d", "e", "f"], "C");
        b2 = b2
            .path(&["a", "b", "c", "d", "e", "f"], "-")
            .edge("a", "c", "-");
        let g2 = b2.build().unwrap();
        let limited = exact_ged(
            &g1,
            &g2,
            &GedOptions {
                node_limit: Some(3),
                ..Default::default()
            },
        );
        assert!(!limited.exact);
        let full = exact_ged(&g1, &g2, &GedOptions::default());
        assert!(full.exact);
        assert!(
            limited.cost >= full.cost,
            "anytime bound must upper-bound the optimum"
        );
    }

    #[test]
    fn symmetry_on_random_graphs() {
        fn random_graph(rng: &mut Rng, n: usize, m: usize) -> Graph {
            let mut g = Graph::new("r");
            for _ in 0..n {
                g.add_vertex(Label(rng.gen_index(3) as u32));
            }
            let mut added = 0;
            let mut attempts = 0;
            while added < m && attempts < 100 {
                attempts += 1;
                let u = gss_graph::VertexId::new(rng.gen_index(n));
                let w = gss_graph::VertexId::new(rng.gen_index(n));
                if u != w && !g.has_edge(u, w) {
                    g.add_edge(u, w, Label(10 + rng.gen_index(2) as u32))
                        .unwrap();
                    added += 1;
                }
            }
            g
        }
        let mut rng = Rng::seed_from_u64(0x6ed);
        for case in 0..40 {
            let (n1, m1) = (1 + rng.gen_index(4), rng.gen_index(5));
            let (n2, m2) = (1 + rng.gen_index(4), rng.gen_index(5));
            let g1 = random_graph(&mut rng, n1, m1);
            let g2 = random_graph(&mut rng, n2, m2);
            let d12 = uniform_ged(&g1, &g2);
            let d21 = uniform_ged(&g2, &g1);
            assert_eq!(d12, d21, "case {case}: GED must be symmetric");
            assert_eq!(uniform_ged(&g1, &g1), 0.0);
        }
    }

    #[test]
    fn empty_graph_distances() {
        let mut v = Vocabulary::new();
        let empty = GraphBuilder::new("e", &mut v).build().unwrap();
        let g = build(&mut v, "g", &[("a", "A"), ("b", "B")], &[("a", "b", "-")]);
        assert_eq!(uniform_ged(&empty, &empty), 0.0);
        assert_eq!(uniform_ged(&empty, &g), 3.0); // 2 vertices + 1 edge
        assert_eq!(uniform_ged(&g, &empty), 3.0);
    }
}
