//! Property-based tests for the GED solvers.

use gss_ged::{
    beam::beam_ged, bipartite::bipartite_ged, edit_path_for_mapping, exact_ged, CostModel,
    GedOptions,
};
use gss_graph::{Graph, Label, Rng, VertexId};
use proptest::prelude::*;

fn random_graph(seed: u64, n: usize, m: usize) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = Graph::new("prop");
    for _ in 0..n {
        g.add_vertex(Label(rng.gen_index(3) as u32));
    }
    let mut added = 0;
    let mut guard = 0;
    while added < m && guard < 20 * m + 40 {
        guard += 1;
        let u = VertexId::new(rng.gen_index(n));
        let v = VertexId::new(rng.gen_index(n));
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v, Label(7 + rng.gen_index(2) as u32))
                .unwrap();
            added += 1;
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn scaling_all_costs_scales_the_distance(
        s1 in any::<u64>(), s2 in any::<u64>(),
        n1 in 1usize..5, n2 in 1usize..5,
        factor in 2u32..5,
    ) {
        let g1 = random_graph(s1, n1, n1 + 1, );
        let g2 = random_graph(s2, n2, n2 + 1);
        let base = exact_ged(&g1, &g2, &GedOptions::default()).cost;
        let f = f64::from(factor);
        let scaled_model = CostModel {
            vertex_ins: f, vertex_del: f, vertex_rel: f,
            edge_ins: f, edge_del: f, edge_rel: f,
        };
        let scaled = exact_ged(
            &g1, &g2,
            &GedOptions { cost: scaled_model, ..Default::default() },
        ).cost;
        prop_assert!((scaled - f * base).abs() < 1e-9, "{scaled} != {f} * {base}");
    }

    #[test]
    fn edit_path_length_equals_cost_under_uniform_model(
        s1 in any::<u64>(), s2 in any::<u64>(),
        n1 in 1usize..5, n2 in 1usize..5,
    ) {
        let g1 = random_graph(s1, n1, n1 + 1);
        let g2 = random_graph(s2, n2, n2 + 1);
        let r = exact_ged(&g1, &g2, &GedOptions::default());
        let ops = edit_path_for_mapping(&g1, &g2, &r.mapping);
        prop_assert_eq!(ops.len() as f64, r.cost, "uniform cost = op count");
    }

    #[test]
    fn solver_sandwich_under_weighted_costs(
        s1 in any::<u64>(), s2 in any::<u64>(), n in 1usize..5,
    ) {
        let g1 = random_graph(s1, n, n + 1);
        let g2 = random_graph(s2, n + 1, n + 2);
        let cost = CostModel::structure_weighted(3.0);
        let exact = exact_ged(&g1, &g2, &GedOptions { cost, ..Default::default() }).cost;
        let bip = bipartite_ged(&g1, &g2, &cost).cost;
        let beam = beam_ged(&g1, &g2, &cost, 8).cost;
        prop_assert!(bip >= exact - 1e-9);
        prop_assert!(beam >= exact - 1e-9);
    }

    #[test]
    fn symmetry_under_symmetric_models(
        s1 in any::<u64>(), s2 in any::<u64>(), n in 1usize..5, w in 1u32..4,
    ) {
        let g1 = random_graph(s1, n, n);
        let g2 = random_graph(s2, n + 1, n + 1);
        let cost = CostModel::structure_weighted(f64::from(w));
        let d12 = exact_ged(&g1, &g2, &GedOptions { cost, ..Default::default() }).cost;
        let d21 = exact_ged(&g2, &g1, &GedOptions { cost, ..Default::default() }).cost;
        prop_assert_eq!(d12, d21, "insert/delete symmetric model ⟹ symmetric GED");
    }

    #[test]
    fn warm_start_never_changes_the_answer(
        s1 in any::<u64>(), s2 in any::<u64>(), n in 1usize..5,
    ) {
        let g1 = random_graph(s1, n, n + 1);
        let g2 = random_graph(s2, n, n + 2);
        let cold = exact_ged(&g1, &g2, &GedOptions::default());
        let warm_map = bipartite_ged(&g1, &g2, &CostModel::uniform()).mapping;
        let warm = exact_ged(
            &g1, &g2,
            &GedOptions { warm_start: Some(warm_map), ..Default::default() },
        );
        prop_assert_eq!(cold.cost, warm.cost);
        prop_assert!(warm.exact && cold.exact);
        prop_assert!(warm.expanded <= cold.expanded, "warm start cannot expand more");
    }
}
