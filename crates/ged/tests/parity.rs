//! Parity of the incremental-bound exact solver against the retained
//! rescanning reference (`gss_ged::reference::reference_exact_ged`).
//!
//! Unlimited searches add the admissible cross-edge bound term: costs,
//! witness mappings and the `exact` flag must still match exactly
//! (tightening an admissible bound never changes what branch and bound
//! returns — the incumbent only advances on strict improvement), while
//! `expanded` may only shrink. Budgeted searches disable the extra term,
//! so there everything — `expanded` included — must be bit-identical.

use gss_ged::bipartite::bipartite_ged;
use gss_ged::reference::reference_exact_ged;
use gss_ged::{exact_ged, CostModel, GedOptions};
use gss_graph::{Graph, Label, Rng, VertexId};

fn random_graph(rng: &mut Rng, n: usize, m: usize, labels: usize) -> Graph {
    let mut g = Graph::new("r");
    for _ in 0..n {
        g.add_vertex(Label(rng.gen_index(labels) as u32));
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < m && attempts < 120 {
        attempts += 1;
        let u = VertexId::new(rng.gen_index(n));
        let w = VertexId::new(rng.gen_index(n));
        if u != w && !g.has_edge(u, w) {
            g.add_edge(u, w, Label(10 + rng.gen_index(3) as u32))
                .unwrap();
            added += 1;
        }
    }
    g
}

fn cost_models() -> Vec<CostModel> {
    vec![
        CostModel::uniform(),
        CostModel::structure_weighted(3.0),
        // Asymmetric model: insertions cheap, deletions expensive.
        CostModel {
            vertex_ins: 0.5,
            vertex_del: 2.0,
            vertex_rel: 1.5,
            edge_ins: 0.25,
            edge_del: 1.75,
            edge_rel: 0.75,
        },
    ]
}

/// `a` is the rewritten solver's result, `b` the reference's. With
/// `expanded_equal` the node counts must match exactly (budgeted runs);
/// otherwise the rewrite may only expand fewer nodes.
fn assert_identical(
    a: &gss_ged::GedResult,
    b: &gss_ged::GedResult,
    expanded_equal: bool,
    context: &str,
) {
    assert_eq!(a.cost, b.cost, "{context}: cost");
    assert_eq!(a.mapping.map, b.mapping.map, "{context}: mapping");
    assert_eq!(a.exact, b.exact, "{context}: exact flag");
    if expanded_equal {
        assert_eq!(a.expanded, b.expanded, "{context}: expanded nodes");
    } else {
        assert!(
            a.expanded <= b.expanded,
            "{context}: expanded {} must not exceed reference {}",
            a.expanded,
            b.expanded
        );
    }
}

#[test]
fn exact_solver_is_bit_identical_to_reference_across_cost_models() {
    let mut rng = Rng::seed_from_u64(0x6ed9a4);
    for case in 0..60 {
        let (n1, m1) = (1 + rng.gen_index(5), rng.gen_index(6));
        let (n2, m2) = (1 + rng.gen_index(5), rng.gen_index(6));
        let labels = 1 + rng.gen_index(3);
        let g1 = random_graph(&mut rng, n1, m1, labels);
        let g2 = random_graph(&mut rng, n2, m2, labels);
        for (k, cost) in cost_models().into_iter().enumerate() {
            let options = GedOptions {
                cost,
                ..GedOptions::default()
            };
            let fast = exact_ged(&g1, &g2, &options);
            let slow = reference_exact_ged(&g1, &g2, &options);
            assert_identical(&fast, &slow, false, &format!("case {case} model {k}"));
        }
    }
}

#[test]
fn parity_holds_with_warm_starts_and_node_budgets() {
    let mut rng = Rng::seed_from_u64(0xbeefed);
    for case in 0..30 {
        let (n1, m1) = (2 + rng.gen_index(4), 2 + rng.gen_index(5));
        let (n2, m2) = (2 + rng.gen_index(4), 2 + rng.gen_index(5));
        let g1 = random_graph(&mut rng, n1, m1, 2);
        let g2 = random_graph(&mut rng, n2, m2, 2);
        let warm = bipartite_ged(&g1, &g2, &CostModel::uniform());
        let warm_opts = GedOptions {
            warm_start: Some(warm.mapping.clone()),
            ..GedOptions::default()
        };
        assert_identical(
            &exact_ged(&g1, &g2, &warm_opts),
            &reference_exact_ged(&g1, &g2, &warm_opts),
            false,
            &format!("case {case} warm"),
        );
        // Under a node budget the cross-edge term is disabled, so the
        // anytime behavior must be bit-identical, expanded count included.
        let budget_opts = GedOptions {
            node_limit: Some(1 + rng.gen_index(25) as u64),
            ..GedOptions::default()
        };
        assert_identical(
            &exact_ged(&g1, &g2, &budget_opts),
            &reference_exact_ged(&g1, &g2, &budget_opts),
            true,
            &format!("case {case} budget"),
        );
    }
}

/// Pinned node-count regression on a fixed pair: the cross-edge bound must
/// keep the unlimited search at or below the reference node count, and the
/// budget-mode search (old bound) must match the reference exactly.
#[test]
fn pinned_expanded_count_on_fixed_pair() {
    let mut rng = Rng::seed_from_u64(0x415);
    let g1 = random_graph(&mut rng, 6, 8, 2);
    let g2 = random_graph(&mut rng, 6, 7, 2);
    let fast = exact_ged(&g1, &g2, &GedOptions::default());
    let slow = reference_exact_ged(&g1, &g2, &GedOptions::default());
    assert!(fast.exact);
    assert_eq!(fast.cost, slow.cost);
    assert_eq!(fast.mapping.map, slow.mapping.map);
    assert!(
        fast.expanded <= slow.expanded,
        "cross-edge bound regressed: {} > {}",
        fast.expanded,
        slow.expanded
    );
    assert!(
        slow.expanded > 10,
        "fixture too trivial to pin anything: {}",
        slow.expanded
    );
    // Budget mode keeps the reference bound: bit-identical anytime runs.
    let budget = GedOptions {
        node_limit: Some(40),
        ..GedOptions::default()
    };
    let fast_b = exact_ged(&g1, &g2, &budget);
    let slow_b = reference_exact_ged(&g1, &g2, &budget);
    assert_eq!(fast_b.cost, slow_b.cost);
    assert_eq!(fast_b.mapping.map, slow_b.mapping.map);
    assert_eq!(fast_b.expanded, slow_b.expanded);
}
