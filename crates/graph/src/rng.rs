//! A small, fully deterministic PRNG.
//!
//! Synthetic workloads and benchmarks must be bit-reproducible across runs
//! and machines, so the workspace carries its own generator instead of
//! depending on `rand` (whose output can change across major versions).
//! The implementation is the well-known **Xoshiro256++** generator seeded via
//! **SplitMix64** — the same construction recommended by the xoshiro authors
//! (Blackman & Vigna). It is *not* cryptographically secure and must never be
//! used for security purposes.

/// Deterministic Xoshiro256++ PRNG.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Equal seeds always produce identical sequences.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `usize` in `[0, bound)` using Lemire's multiply-shift with a
    /// rejection step to remove modulo bias.
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be positive");
        let bound = bound as u64;
        // Rejection sampling on the top bits: threshold = 2^64 mod bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range requires lo < hi, got {lo}..{hi}");
        lo + self.gen_index(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniformly chooses an element of `slice`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_index(slice.len())])
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` (order unspecified but
    /// deterministic). `k` is clamped to `n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        // Partial Fisher–Yates over an index vector; O(n) memory is fine at
        // workload scale.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.gen_range(i, n.max(i + 1));
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Derives an independent child generator (for per-item streams).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1, "streams should be practically disjoint");
    }

    #[test]
    fn gen_index_is_in_range_and_roughly_uniform() {
        let mut r = Rng::seed_from_u64(7);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[r.gen_index(5)] += 1;
        }
        for &c in &counts {
            // Expected 1000 each; allow generous slack.
            assert!((700..1300).contains(&c), "counts {counts:?} look biased");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_index_rejects_zero() {
        Rng::seed_from_u64(0).gen_index(0);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Rng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = r.gen_range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = Rng::seed_from_u64(13);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Rng::seed_from_u64(17);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::seed_from_u64(19);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle staying sorted is astronomically unlikely"
        );
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = Rng::seed_from_u64(23);
        let s = r.sample_indices(10, 4);
        assert_eq!(s.len(), 4);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 4);
        assert!(s.iter().all(|&i| i < 10));
        // k > n clamps
        assert_eq!(r.sample_indices(3, 10).len(), 3);
        assert!(r.sample_indices(0, 5).is_empty());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut r = Rng::seed_from_u64(29);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        let xs = [1, 2, 3];
        assert!(xs.contains(r.choose(&xs).unwrap()));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = Rng::seed_from_u64(31);
        let mut child = a.fork();
        // Child stream differs from continuing parent stream.
        let p: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }
}
