//! Label interning.
//!
//! All similarity algorithms in the workspace are label-sensitive: vertex
//! mappings must preserve vertex labels and edge mappings must preserve edge
//! labels (Definitions 4–7 of the paper). To keep the hot comparison loops
//! cheap, labels are interned once into dense [`Label`] ids by a
//! [`Vocabulary`] and compared as plain `u32`s afterwards.
//!
//! A single [`Vocabulary`] is shared by every graph that participates in one
//! database/query workload; `gss-core::GraphDatabase` owns it.

use std::collections::HashMap;
use std::fmt;

/// An interned label id.
///
/// `Label` is meaningful only relative to the [`Vocabulary`] that produced
/// it. Ids are dense (`0..vocab.len()`), which lets algorithms index arrays
/// by label.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Label(pub u32);

impl Label {
    /// The id as a `usize`, suitable for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A string ↔ [`Label`] interner.
///
/// ```
/// use gss_graph::{Label, Vocabulary};
///
/// let mut vocab = Vocabulary::new();
/// let carbon = vocab.intern("C");
/// assert_eq!(vocab.intern("C"), carbon); // idempotent
/// assert_eq!(vocab.name(carbon), Some("C"));
/// assert_eq!(vocab.get("C"), Some(carbon));
/// assert_eq!(vocab.get("missing"), None);
/// ```
#[derive(Default, Debug, Clone)]
pub struct Vocabulary {
    names: Vec<String>,
    index: HashMap<String, Label>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable [`Label`].
    ///
    /// Repeated calls with the same string return the same id.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.index.get(name) {
            return l;
        }
        let l = Label(u32::try_from(self.names.len()).expect("more than u32::MAX labels"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), l);
        l
    }

    /// Looks up an already-interned label without inserting.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.index.get(name).copied()
    }

    /// The string behind a label, or `None` for a foreign/unknown label.
    pub fn name(&self, label: Label) -> Option<&str> {
        self.names.get(label.index()).map(String::as_str)
    }

    /// The string behind a label, falling back to the raw id for foreign
    /// labels. Useful for diagnostics.
    pub fn name_or_id(&self, label: Label) -> String {
        match self.name(label) {
            Some(s) => s.to_owned(),
            None => label.to_string(),
        }
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all labels in id order.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.names.len() as u32).map(Label)
    }

    /// Iterates over `(label, name)` pairs in id order.
    pub fn entries(&self) -> impl Iterator<Item = (Label, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (Label(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut v = Vocabulary::new();
        let a = v.intern("A");
        let b = v.intern("B");
        let a2 = v.intern("A");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }

    #[test]
    fn round_trip_names() {
        let mut v = Vocabulary::new();
        for name in ["C", "N", "O", "-", "=", "#"] {
            let l = v.intern(name);
            assert_eq!(v.name(l), Some(name));
            assert_eq!(v.get(name), Some(l));
        }
        assert_eq!(v.name(Label(999)), None);
        assert_eq!(v.name_or_id(Label(999)), "#999");
    }

    #[test]
    fn entries_and_labels_agree() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let via_entries: Vec<_> = v.entries().map(|(l, _)| l).collect();
        let via_labels: Vec<_> = v.labels().collect();
        assert_eq!(via_entries, via_labels);
        assert_eq!(
            v.entries().map(|(_, n)| n.to_owned()).collect::<Vec<_>>(),
            vec!["x", "y"]
        );
    }

    #[test]
    fn empty_vocabulary() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.labels().count(), 0);
    }
}
