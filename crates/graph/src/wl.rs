//! Weisfeiler–Lehman (1-WL) color refinement and fingerprints.
//!
//! 1-WL iteratively recolors every vertex with a hash of its own color and
//! the multiset of `(edge label, neighbor color)` pairs around it. The
//! resulting color histogram is an **isomorphism invariant**: isomorphic
//! graphs always produce equal fingerprints (the converse fails only for
//! WL-equivalent non-isomorphic graphs, which are rare at this domain's
//! sizes). Uses:
//!
//! * a cheap *necessary* condition for isomorphism (wired into
//!   `gss-iso::invariants`-style pre-filters by callers);
//! * near-duplicate detection in graph databases;
//! * stable, deterministic hashing — no `RandomState`, so fingerprints are
//!   reproducible across runs and platforms.

use crate::graph::Graph;

/// A stable 64-bit mixer (SplitMix64 finalizer) — deterministic across
/// platforms, unlike `std::collections` hashing.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline]
fn combine(a: u64, b: u64) -> u64 {
    mix(a ^ b
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x2545_F491_4F6C_DD1D))
}

/// Runs `rounds` of 1-WL refinement and returns the per-vertex colors.
///
/// Round 0 colors are hashes of the vertex labels; each subsequent round
/// folds in the sorted multiset of `(edge label, neighbor color)` hashes.
pub fn wl_colors(g: &Graph, rounds: usize) -> Vec<u64> {
    let mut colors: Vec<u64> = g
        .vertices()
        .map(|v| mix(0xC01D_u64 ^ u64::from(g.vertex_label(v).0)))
        .collect();
    let mut scratch: Vec<u64> = Vec::new();
    for _ in 0..rounds {
        let mut next = Vec::with_capacity(colors.len());
        for v in g.vertices() {
            scratch.clear();
            for (n, e) in g.neighbors(v) {
                scratch.push(combine(u64::from(g.edge_label(e).0), colors[n.index()]));
            }
            scratch.sort_unstable();
            let mut c = colors[v.index()];
            for &s in &scratch {
                c = combine(c, s);
            }
            next.push(mix(c));
        }
        colors = next;
    }
    colors
}

/// An isomorphism-invariant fingerprint of the whole graph: the hash of the
/// sorted multiset of WL colors (plus the order/size header).
///
/// `are_isomorphic(g1, g2) ⟹ wl_fingerprint(g1, r) == wl_fingerprint(g2, r)`
/// for every round count `r`. Two rounds distinguish almost everything at
/// this domain's graph sizes.
pub fn wl_fingerprint(g: &Graph, rounds: usize) -> u64 {
    let mut colors = wl_colors(g, rounds);
    colors.sort_unstable();
    let mut h = combine(g.order() as u64, g.size() as u64);
    for c in colors {
        h = combine(h, c);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::{Graph, VertexId};
    use crate::label::Vocabulary;
    use crate::rng::Rng;

    #[test]
    fn invariant_under_vertex_permutation() {
        let mut rng = Rng::seed_from_u64(0x11);
        for case in 0..40 {
            // Build a random graph and a permuted copy.
            let n = 2 + rng.gen_index(6);
            let mut g = Graph::new("g");
            for _ in 0..n {
                g.add_vertex(crate::label::Label(rng.gen_index(3) as u32));
            }
            for _ in 0..n + 2 {
                let u = VertexId::new(rng.gen_index(n));
                let v = VertexId::new(rng.gen_index(n));
                if u != v && !g.has_edge(u, v) {
                    g.add_edge(u, v, crate::label::Label(9)).unwrap();
                }
            }
            let mut perm: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut perm);
            // h's vertex i corresponds to g's vertex perm[i].
            let mut h = Graph::new("h");
            for &old in &perm {
                h.add_vertex(g.vertex_label(VertexId::new(old)));
            }
            let fwd: Vec<usize> = {
                let mut f = vec![0usize; n];
                for (new, &old) in perm.iter().enumerate() {
                    f[old] = new;
                }
                f
            };
            for e in g.edges() {
                let edge = g.edge(e);
                h.add_edge(
                    VertexId::new(fwd[edge.u.index()]),
                    VertexId::new(fwd[edge.v.index()]),
                    edge.label,
                )
                .unwrap();
            }
            for rounds in [0usize, 1, 2, 3] {
                assert_eq!(
                    wl_fingerprint(&g, rounds),
                    wl_fingerprint(&h, rounds),
                    "case {case}, rounds {rounds}: permutation changed the fingerprint"
                );
            }
        }
    }

    #[test]
    fn distinguishes_basic_non_isomorphic_pairs() {
        let mut v = Vocabulary::new();
        let path = GraphBuilder::new("p", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .path(&["a", "b", "c", "d"], "-")
            .build()
            .unwrap();
        let star = GraphBuilder::new("s", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .edge("a", "b", "-")
            .edge("a", "c", "-")
            .edge("a", "d", "-")
            .build()
            .unwrap();
        assert_ne!(wl_fingerprint(&path, 2), wl_fingerprint(&star, 2));

        let single = GraphBuilder::new("e1", &mut v)
            .vertices(&["x", "y"], "C")
            .edge("x", "y", "-")
            .build()
            .unwrap();
        let double = GraphBuilder::new("e2", &mut v)
            .vertices(&["x", "y"], "C")
            .edge("x", "y", "=")
            .build()
            .unwrap();
        assert_ne!(
            wl_fingerprint(&single, 1),
            wl_fingerprint(&double, 1),
            "edge labels matter"
        );

        let carbon = GraphBuilder::new("v1", &mut v)
            .vertex("x", "C")
            .build()
            .unwrap();
        let oxygen = GraphBuilder::new("v2", &mut v)
            .vertex("x", "O")
            .build()
            .unwrap();
        assert_ne!(
            wl_fingerprint(&carbon, 0),
            wl_fingerprint(&oxygen, 0),
            "vertex labels matter"
        );
    }

    #[test]
    fn refinement_separates_what_degree_cannot() {
        // Two 6-vertex, 6-edge graphs with equal degree sequences:
        // a 6-cycle vs two triangles. 1-WL with ≥1 round cannot separate
        // these (classic example), but the component structure shows in
        // *colors with more rounds on labeled variants*; here we check at
        // least that equal graphs agree and the fingerprint is stable.
        let mut v = Vocabulary::new();
        let cycle = GraphBuilder::new("c6", &mut v)
            .vertices(&["a", "b", "c", "d", "e", "f"], "C")
            .cycle(&["a", "b", "c", "d", "e", "f"], "-")
            .build()
            .unwrap();
        let triangles = GraphBuilder::new("tt", &mut v)
            .vertices(&["a", "b", "c", "x", "y", "z"], "C")
            .cycle(&["a", "b", "c"], "-")
            .cycle(&["x", "y", "z"], "-")
            .build()
            .unwrap();
        // Known 1-WL blind spot: fingerprints agree — document the limit.
        assert_eq!(wl_fingerprint(&cycle, 3), wl_fingerprint(&triangles, 3));
        // …which is exactly why wl equality is only a *necessary* condition.
        assert!(!gss_iso_stub_are_isomorphic(&cycle, &triangles));
    }

    /// Tiny local iso check (avoid a dev-dependency cycle with gss-iso):
    /// distinguishes the 6-cycle from two triangles via connectivity.
    fn gss_iso_stub_are_isomorphic(a: &Graph, b: &Graph) -> bool {
        crate::algo::connected_components(a).len() == crate::algo::connected_components(b).len()
            && a.order() == b.order()
            && a.size() == b.size()
    }

    #[test]
    fn zero_rounds_is_label_histogram_hash() {
        // With 0 rounds only vertex labels + counts matter, not structure:
        // the 4-path and the 4-star (same order, size, labels) collide at
        // round 0 and separate from round 1 on.
        let mut v = Vocabulary::new();
        let path = GraphBuilder::new("p", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .path(&["a", "b", "c", "d"], "-")
            .build()
            .unwrap();
        let star = GraphBuilder::new("s", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .edge("a", "b", "-")
            .edge("a", "c", "-")
            .edge("a", "d", "-")
            .build()
            .unwrap();
        assert_eq!(wl_fingerprint(&path, 0), wl_fingerprint(&star, 0));
        assert_ne!(wl_fingerprint(&path, 1), wl_fingerprint(&star, 1));
    }
}
