//! Traversal and connectivity utilities.

use crate::graph::{EdgeId, Graph, VertexId};

/// Breadth-first order of vertices reachable from `start`.
pub fn bfs_order(g: &Graph, start: VertexId) -> Vec<VertexId> {
    let mut seen = vec![false; g.order()];
    let mut queue = std::collections::VecDeque::new();
    let mut order = Vec::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for (n, _) in g.neighbors(v) {
            if !seen[n.index()] {
                seen[n.index()] = true;
                queue.push_back(n);
            }
        }
    }
    order
}

/// Depth-first order of vertices reachable from `start` (iterative,
/// neighbor order as stored).
pub fn dfs_order(g: &Graph, start: VertexId) -> Vec<VertexId> {
    let mut seen = vec![false; g.order()];
    let mut stack = vec![start];
    let mut order = Vec::new();
    while let Some(v) = stack.pop() {
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        order.push(v);
        // Push in reverse so the first-listed neighbor is visited first.
        let ns: Vec<_> = g.neighbors(v).map(|(n, _)| n).collect();
        for n in ns.into_iter().rev() {
            if !seen[n.index()] {
                stack.push(n);
            }
        }
    }
    order
}

/// Connected components as lists of vertex ids (each sorted ascending;
/// components ordered by their smallest vertex).
pub fn connected_components(g: &Graph) -> Vec<Vec<VertexId>> {
    let mut comp = vec![usize::MAX; g.order()];
    let mut components = Vec::new();
    for v in g.vertices() {
        if comp[v.index()] != usize::MAX {
            continue;
        }
        let idx = components.len();
        let mut members = Vec::new();
        let mut stack = vec![v];
        comp[v.index()] = idx;
        while let Some(u) = stack.pop() {
            members.push(u);
            for (n, _) in g.neighbors(u) {
                if comp[n.index()] == usize::MAX {
                    comp[n.index()] = idx;
                    stack.push(n);
                }
            }
        }
        members.sort();
        components.push(members);
    }
    components
}

/// True when the graph is connected (the empty graph counts as connected;
/// a single isolated vertex does too).
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).len() <= 1
}

/// Size (in edges) of the largest connected component of the subgraph formed
/// by exactly the given `edges` of `g`.
///
/// This is the reference implementation of the paper's "largest *connected*
/// common subgraph" size used to cross-check the MCS solver: isolated
/// vertices contribute components of zero edges.
pub fn largest_connected_edge_component(g: &Graph, edges: &[EdgeId]) -> usize {
    if edges.is_empty() {
        return 0;
    }
    // Union-find over vertices touched by the edge set.
    let mut parent: Vec<usize> = (0..g.order()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut edge_count = vec![0usize; g.order()];
    for &e in edges {
        let edge = g.edge(e);
        let a = find(&mut parent, edge.u.index());
        let b = find(&mut parent, edge.v.index());
        if a == b {
            edge_count[a] += 1;
        } else {
            // Union by arbitrary orientation; accumulate edge counts at root.
            parent[a] = b;
            edge_count[b] += edge_count[a] + 1;
            edge_count[a] = 0;
        }
    }
    (0..g.order())
        .filter(|&v| find(&mut parent, v) == v)
        .map(|v| edge_count[v])
        .max()
        .unwrap_or(0)
}

/// Degree sequence in non-increasing order — a cheap isomorphism invariant.
pub fn degree_sequence(g: &Graph) -> Vec<usize> {
    let mut d: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    d.sort_unstable_by(|a, b| b.cmp(a));
    d
}

/// Unweighted shortest-path (hop) distances from `start` to every vertex;
/// `None` for unreachable vertices. `O(|V| + |E|)` BFS.
pub fn bfs_distances(g: &Graph, start: VertexId) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.order()];
    let mut queue = std::collections::VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("popped vertices have distances");
        for (n, _) in g.neighbors(v) {
            if dist[n.index()].is_none() {
                dist[n.index()] = Some(d + 1);
                queue.push_back(n);
            }
        }
    }
    dist
}

/// Eccentricity of `v`: the greatest hop distance to any reachable vertex.
pub fn eccentricity(g: &Graph, v: VertexId) -> usize {
    bfs_distances(g, v).into_iter().flatten().max().unwrap_or(0)
}

/// Diameter of the graph: the largest eccentricity over all vertices, or
/// `None` when the graph is disconnected or empty (infinite/undefined).
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.order() == 0 || !is_connected(g) {
        return None;
    }
    g.vertices().map(|v| eccentricity(g, v)).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::label::Vocabulary;

    fn two_triangles() -> Graph {
        let mut v = Vocabulary::new();
        GraphBuilder::new("tt", &mut v)
            .vertices(&["a", "b", "c", "x", "y", "z"], "C")
            .cycle(&["a", "b", "c"], "-")
            .cycle(&["x", "y", "z"], "-")
            .build()
            .unwrap()
    }

    #[test]
    fn bfs_and_dfs_cover_component() {
        let g = two_triangles();
        let b = bfs_order(&g, VertexId::new(0));
        let d = dfs_order(&g, VertexId::new(0));
        assert_eq!(b.len(), 3);
        assert_eq!(d.len(), 3);
        assert_eq!(b[0], VertexId::new(0));
        assert_eq!(d[0], VertexId::new(0));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = two_triangles();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connectivity_edge_cases() {
        let mut v = Vocabulary::new();
        let empty = GraphBuilder::new("e", &mut v).build().unwrap();
        assert!(is_connected(&empty));
        let single = GraphBuilder::new("s", &mut v)
            .vertex("a", "A")
            .build()
            .unwrap();
        assert!(is_connected(&single));
        let pair = GraphBuilder::new("p", &mut v)
            .vertices(&["a", "b"], "A")
            .build()
            .unwrap();
        assert!(!is_connected(&pair));
    }

    #[test]
    fn largest_edge_component_counts_edges_not_vertices() {
        let g = two_triangles();
        let all: Vec<_> = g.edges().collect();
        // Both triangles have 3 edges; max connected edge component = 3.
        assert_eq!(largest_connected_edge_component(&g, &all), 3);
        // One triangle + a single edge of the other: max stays 3.
        assert_eq!(largest_connected_edge_component(&g, &all[..4]), 3);
        // Two edges of the first triangle only.
        assert_eq!(largest_connected_edge_component(&g, &all[..2]), 2);
        assert_eq!(largest_connected_edge_component(&g, &[]), 0);
    }

    #[test]
    fn largest_edge_component_with_internal_cycle_edges() {
        // Square with diagonal: component edge counting must include edges
        // that close cycles (union finds them in the same set already).
        let mut v = Vocabulary::new();
        let g = GraphBuilder::new("sq", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .cycle(&["a", "b", "c", "d"], "-")
            .edge("a", "c", "-")
            .build()
            .unwrap();
        let all: Vec<_> = g.edges().collect();
        assert_eq!(largest_connected_edge_component(&g, &all), 5);
    }

    #[test]
    fn bfs_distances_on_path() {
        let mut v = Vocabulary::new();
        let g = GraphBuilder::new("p", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .path(&["a", "b", "c", "d"], "-")
            .build()
            .unwrap();
        let d = bfs_distances(&g, VertexId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(eccentricity(&g, VertexId::new(0)), 3);
        assert_eq!(eccentricity(&g, VertexId::new(1)), 2);
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn bfs_distances_unreachable() {
        let g = two_triangles();
        let d = bfs_distances(&g, VertexId::new(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[3], None, "other triangle unreachable");
        assert_eq!(diameter(&g), None, "disconnected graph has no diameter");
    }

    #[test]
    fn diameter_edge_cases() {
        let mut v = Vocabulary::new();
        let empty = GraphBuilder::new("e", &mut v).build().unwrap();
        assert_eq!(diameter(&empty), None);
        let single = GraphBuilder::new("s", &mut v)
            .vertex("a", "A")
            .build()
            .unwrap();
        assert_eq!(diameter(&single), Some(0));
        let cycle = GraphBuilder::new("c", &mut v)
            .vertices(&["a", "b", "c", "d", "e", "f"], "C")
            .cycle(&["a", "b", "c", "d", "e", "f"], "-")
            .build()
            .unwrap();
        assert_eq!(diameter(&cycle), Some(3));
    }

    #[test]
    fn degree_sequence_sorted() {
        let mut v = Vocabulary::new();
        let g = GraphBuilder::new("star", &mut v)
            .vertices(&["c", "l1", "l2", "l3"], "C")
            .edge("c", "l1", "-")
            .edge("c", "l2", "-")
            .edge("c", "l3", "-")
            .build()
            .unwrap();
        assert_eq!(degree_sequence(&g), vec![3, 1, 1, 1]);
    }
}
