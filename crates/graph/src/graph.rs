//! The core labeled, undirected, simple graph type.

use crate::error::GraphError;
use crate::label::Label;

/// Dense vertex identifier, assigned in insertion order.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The id as a `usize`, suitable for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `VertexId` from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        VertexId(index as u32)
    }
}

/// Dense edge identifier, assigned in insertion order.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as a `usize`, suitable for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs an `EdgeId` from a dense index.
    #[inline]
    pub fn new(index: usize) -> Self {
        EdgeId(index as u32)
    }
}

/// A labeled vertex.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Vertex {
    /// The vertex label (interned).
    pub label: Label,
}

/// A labeled undirected edge between `u` and `v`.
///
/// Endpoints are stored in insertion order but the edge is undirected;
/// use [`Edge::other`] to walk across it.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    /// First endpoint (as inserted).
    pub u: VertexId,
    /// Second endpoint (as inserted).
    pub v: VertexId,
    /// The edge label (interned).
    pub label: Label,
}

impl Edge {
    /// Given one endpoint, returns the opposite one.
    ///
    /// # Panics
    /// Panics if `w` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, w: VertexId) -> VertexId {
        if w == self.u {
            self.v
        } else if w == self.v {
            self.u
        } else {
            panic!("vertex {w:?} is not an endpoint of edge {self:?}");
        }
    }

    /// True when `w` is one of the endpoints.
    #[inline]
    pub fn touches(&self, w: VertexId) -> bool {
        self.u == w || self.v == w
    }

    /// Endpoints with the smaller id first — a canonical undirected key.
    #[inline]
    pub fn key(&self) -> (VertexId, VertexId) {
        if self.u <= self.v {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        }
    }
}

/// An undirected simple graph with labeled vertices and labeled edges
/// (Definition 3 of the paper).
///
/// The graph keeps an adjacency list for O(degree) neighborhood scans and an
/// (implicit) edge set for O(degree) `edge_between` lookups — graphs in this
/// domain are small and sparse, so no hash index is kept per graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    name: String,
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
    /// `adj[v]` lists `(neighbor, edge)` pairs.
    adj: Vec<Vec<(VertexId, EdgeId)>>,
    /// Per-row capacity hint for new `adj` rows — the expected average
    /// degree, derived from the `size` passed to [`Graph::with_capacity`].
    /// 0 (the `new`/`Default` value) means "no hint, allocate lazily".
    adj_hint: usize,
}

impl Graph {
    /// Creates an empty graph with a display `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            vertices: Vec::new(),
            edges: Vec::new(),
            adj: Vec::new(),
            adj_hint: 0,
        }
    }

    /// Creates an empty graph pre-allocating room for `order` vertices and
    /// `size` edges.
    ///
    /// Besides pre-sizing the vertex/edge/adjacency spines, the expected
    /// average degree (`⌈2·size / order⌉`) is remembered and every
    /// adjacency row created by [`Graph::add_vertex`] is pre-sized to it,
    /// so bulk construction (corpus load, arena materialization) stops
    /// reallocating per-row as edges stream in.
    pub fn with_capacity(name: impl Into<String>, order: usize, size: usize) -> Self {
        Graph {
            name: name.into(),
            vertices: Vec::with_capacity(order),
            edges: Vec::with_capacity(size),
            adj: Vec::with_capacity(order),
            adj_hint: if order > 0 {
                (2 * size).div_ceil(order)
            } else {
                0
            },
        }
    }

    /// The graph's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the graph.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of vertices, `|V(g)|`.
    #[inline]
    pub fn order(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges — the paper's `|g|` (Definition 3).
    #[inline]
    pub fn size(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Adds a vertex and returns its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = VertexId::new(self.vertices.len());
        self.vertices.push(Vertex { label });
        // `with_capacity(0)` does not allocate, so the no-hint path stays
        // exactly as lazy as `Vec::new()`.
        self.adj.push(Vec::with_capacity(self.adj_hint));
        id
    }

    /// Adds an undirected edge `{u, v}` with `label`.
    ///
    /// Rejects out-of-range endpoints, self-loops and duplicate edges.
    pub fn add_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        label: Label,
    ) -> Result<EdgeId, GraphError> {
        let order = self.order();
        if u.index() >= order {
            return Err(GraphError::InvalidVertex {
                index: u.index(),
                order,
            });
        }
        if v.index() >= order {
            return Err(GraphError::InvalidVertex {
                index: v.index(),
                order,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u.index() });
        }
        if self.edge_between(u, v).is_some() {
            return Err(GraphError::DuplicateEdge {
                u: u.index(),
                v: v.index(),
            });
        }
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge { u, v, label });
        self.adj[u.index()].push((v, id));
        self.adj[v.index()].push((u, id));
        Ok(id)
    }

    /// The vertex behind `v`.
    ///
    /// # Panics
    /// Panics on out-of-range ids (ids are dense; this indicates a logic bug).
    #[inline]
    pub fn vertex(&self, v: VertexId) -> &Vertex {
        &self.vertices[v.index()]
    }

    /// The edge behind `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// The label of vertex `v`.
    #[inline]
    pub fn vertex_label(&self, v: VertexId) -> Label {
        self.vertices[v.index()].label
    }

    /// The label of edge `e`.
    #[inline]
    pub fn edge_label(&self, e: EdgeId) -> Label {
        self.edges[e.index()].label
    }

    /// Relabels vertex `v` in place (used by perturbation workloads).
    pub fn relabel_vertex(&mut self, v: VertexId, label: Label) -> Result<(), GraphError> {
        let order = self.order();
        self.vertices
            .get_mut(v.index())
            .map(|vert| vert.label = label)
            .ok_or(GraphError::InvalidVertex {
                index: v.index(),
                order,
            })
    }

    /// Relabels edge `e` in place (used by perturbation workloads).
    pub fn relabel_edge(&mut self, e: EdgeId, label: Label) -> Result<(), GraphError> {
        let size = self.size();
        self.edges
            .get_mut(e.index())
            .map(|edge| edge.label = label)
            .ok_or(GraphError::InvalidEdge {
                index: e.index(),
                size,
            })
    }

    /// Iterates over all vertex ids in order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len()).map(VertexId::new)
    }

    /// Iterates over all edge ids in order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId::new)
    }

    /// Iterates over `(neighbor, edge)` pairs of `v`.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.adj[v.index()].iter().copied()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// The edge between `u` and `v` if present (either orientation).
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u.index() >= self.order() || v.index() >= self.order() {
            return None;
        }
        // Scan the smaller adjacency list.
        let (base, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[base.index()]
            .iter()
            .find(|(n, _)| *n == target)
            .map(|(_, e)| *e)
    }

    /// True when `{u, v}` is an edge.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Returns a copy of this graph without the given edges.
    ///
    /// Vertex ids are preserved; edge ids are re-densified. This is the
    /// building block of edit-perturbation workloads (removal is rare enough
    /// that an O(n+m) rebuild keeps the main type simple).
    pub fn without_edges(&self, remove: &[EdgeId]) -> Graph {
        let mut g = Graph::with_capacity(self.name.clone(), self.order(), self.size());
        for v in &self.vertices {
            g.add_vertex(v.label);
        }
        for (i, e) in self.edges.iter().enumerate() {
            if !remove.contains(&EdgeId::new(i)) {
                g.add_edge(e.u, e.v, e.label)
                    .expect("rebuild of a valid graph cannot fail");
            }
        }
        g
    }

    /// Returns the subgraph containing exactly the given edges and every
    /// vertex of this graph (vertex ids preserved).
    pub fn edge_subgraph(&self, keep: &[EdgeId]) -> Graph {
        let mut g = Graph::with_capacity(format!("{}[sub]", self.name), self.order(), keep.len());
        for v in &self.vertices {
            g.add_vertex(v.label);
        }
        for e in keep {
            let e = self.edge(*e);
            g.add_edge(e.u, e.v, e.label)
                .expect("edge subset of a valid graph cannot clash");
        }
        g
    }

    /// Returns the subgraph consisting of exactly the given edges and
    /// **only their endpoint vertices** (vertex ids are re-densified in
    /// first-occurrence order).
    ///
    /// This is the literal "subgraph" of the paper's Definition 7: a set of
    /// selected vertices plus selected edges among them, with no isolated
    /// leftovers. Compare [`Graph::edge_subgraph`], which preserves the full
    /// vertex set and ids.
    pub fn edge_induced_subgraph(&self, keep: &[EdgeId]) -> Graph {
        let mut remap: Vec<Option<VertexId>> = vec![None; self.order()];
        let mut g =
            Graph::with_capacity(format!("{}[edges]", self.name), keep.len() + 1, keep.len());
        let map_vertex =
            |remap: &mut Vec<Option<VertexId>>, g: &mut Graph, v: VertexId, label: Label| {
                if let Some(id) = remap[v.index()] {
                    id
                } else {
                    let id = g.add_vertex(label);
                    remap[v.index()] = Some(id);
                    id
                }
            };
        for &eid in keep {
            let e = *self.edge(eid);
            let u = map_vertex(&mut remap, &mut g, e.u, self.vertex_label(e.u));
            let v = map_vertex(&mut remap, &mut g, e.v, self.vertex_label(e.v));
            g.add_edge(u, v, e.label)
                .expect("edge subset of a valid graph cannot clash");
        }
        g
    }

    /// Sum of all degrees (= 2·size). Exposed for invariant tests.
    pub fn degree_sum(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }
}

/// A dense `order × order` edge-id table for `O(1)` [`Graph::edge_between`]
/// answers.
///
/// The adjacency-list scan behind `edge_between` is the single most
/// frequent operation in the exact solvers' inner loops (every candidate
/// evaluation probes several vertex pairs); a solver builds one `EdgeLookup`
/// per input graph in `O(|V|² + |E|)` and turns each probe into one array
/// read. Quadratic memory, intended for the small graphs of this domain.
#[derive(Clone, Debug)]
pub struct EdgeLookup {
    n: usize,
    /// `cells[u * n + v]` is `edge id + 1`, or 0 for "no edge".
    cells: Vec<u32>,
}

impl EdgeLookup {
    /// Builds the table for `g`.
    pub fn new(g: &Graph) -> Self {
        let n = g.order();
        let mut cells = vec![0u32; n * n];
        for e in g.edges() {
            let edge = g.edge(e);
            let id = e.0 + 1;
            cells[edge.u.index() * n + edge.v.index()] = id;
            cells[edge.v.index() * n + edge.u.index()] = id;
        }
        EdgeLookup { n, cells }
    }

    /// The edge between `u` and `v`, if present — identical answers to
    /// [`Graph::edge_between`] in `O(1)`.
    #[inline]
    pub fn get(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        let cell = self.cells[u.index() * self.n + v.index()];
        (cell != 0).then(|| EdgeId(cell - 1))
    }

    /// True when `{u, v}` is an edge.
    #[inline]
    pub fn has(&self, u: VertexId, v: VertexId) -> bool {
        self.cells[u.index() * self.n + v.index()] != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Vocabulary;

    fn labels() -> (Vocabulary, Label, Label, Label) {
        let mut v = Vocabulary::new();
        let a = v.intern("A");
        let b = v.intern("B");
        let bond = v.intern("-");
        (v, a, b, bond)
    }

    #[test]
    fn build_path_graph() {
        let (_v, a, b, bond) = labels();
        let mut g = Graph::new("path");
        let v0 = g.add_vertex(a);
        let v1 = g.add_vertex(b);
        let v2 = g.add_vertex(a);
        g.add_edge(v0, v1, bond).unwrap();
        g.add_edge(v1, v2, bond).unwrap();
        assert_eq!(g.order(), 3);
        assert_eq!(g.size(), 2);
        assert_eq!(g.degree(v1), 2);
        assert_eq!(g.degree(v0), 1);
        assert!(g.has_edge(v1, v0));
        assert!(!g.has_edge(v0, v2));
        assert_eq!(g.degree_sum(), 2 * g.size());
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let (_v, a, _b, bond) = labels();
        let mut g = Graph::new("g");
        let v0 = g.add_vertex(a);
        let v1 = g.add_vertex(a);
        assert_eq!(
            g.add_edge(v0, v0, bond),
            Err(GraphError::SelfLoop { vertex: 0 })
        );
        g.add_edge(v0, v1, bond).unwrap();
        assert_eq!(
            g.add_edge(v1, v0, bond),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
        assert_eq!(
            g.add_edge(v0, VertexId::new(9), bond),
            Err(GraphError::InvalidVertex { index: 9, order: 2 })
        );
    }

    #[test]
    fn edge_other_and_key() {
        let (_v, a, b, bond) = labels();
        let mut g = Graph::new("g");
        let v0 = g.add_vertex(a);
        let v1 = g.add_vertex(b);
        let e = g.add_edge(v1, v0, bond).unwrap();
        let edge = g.edge(e);
        assert_eq!(edge.other(v0), v1);
        assert_eq!(edge.other(v1), v0);
        assert!(edge.touches(v0) && edge.touches(v1));
        assert_eq!(edge.key(), (v0, v1));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let (_v, a, _b, bond) = labels();
        let mut g = Graph::new("g");
        let v0 = g.add_vertex(a);
        let v1 = g.add_vertex(a);
        let v2 = g.add_vertex(a);
        let e = g.add_edge(v0, v1, bond).unwrap();
        let _ = g.edge(e).other(v2);
    }

    #[test]
    fn relabeling() {
        let (mut voc, a, b, bond) = labels();
        let dbl = voc.intern("=");
        let mut g = Graph::new("g");
        let v0 = g.add_vertex(a);
        let v1 = g.add_vertex(a);
        let e = g.add_edge(v0, v1, bond).unwrap();
        g.relabel_vertex(v1, b).unwrap();
        g.relabel_edge(e, dbl).unwrap();
        assert_eq!(g.vertex_label(v1), b);
        assert_eq!(g.edge_label(e), dbl);
        assert!(g.relabel_vertex(VertexId::new(5), a).is_err());
        assert!(g.relabel_edge(EdgeId::new(5), bond).is_err());
    }

    #[test]
    fn without_edges_rebuilds_densely() {
        let (_v, a, _b, bond) = labels();
        let mut g = Graph::new("g");
        let vs: Vec<_> = (0..4).map(|_| g.add_vertex(a)).collect();
        let e01 = g.add_edge(vs[0], vs[1], bond).unwrap();
        let _e12 = g.add_edge(vs[1], vs[2], bond).unwrap();
        let _e23 = g.add_edge(vs[2], vs[3], bond).unwrap();
        let h = g.without_edges(&[e01]);
        assert_eq!(h.order(), 4);
        assert_eq!(h.size(), 2);
        assert!(!h.has_edge(vs[0], vs[1]));
        assert!(h.has_edge(vs[1], vs[2]));
        // ids re-densified
        assert_eq!(h.edges().count(), 2);
    }

    #[test]
    fn edge_subgraph_keeps_only_selected() {
        let (_v, a, _b, bond) = labels();
        let mut g = Graph::new("g");
        let vs: Vec<_> = (0..3).map(|_| g.add_vertex(a)).collect();
        let e0 = g.add_edge(vs[0], vs[1], bond).unwrap();
        let _e1 = g.add_edge(vs[1], vs[2], bond).unwrap();
        let s = g.edge_subgraph(&[e0]);
        assert_eq!(s.size(), 1);
        assert_eq!(s.order(), 3);
        assert!(s.has_edge(vs[0], vs[1]));
        assert!(!s.has_edge(vs[1], vs[2]));
    }

    #[test]
    fn edge_induced_subgraph_drops_isolated_vertices() {
        let (_v, a, b, bond) = labels();
        let mut g = Graph::new("g");
        let vs: Vec<_> = (0..4)
            .map(|i| g.add_vertex(if i == 0 { a } else { b }))
            .collect();
        let e0 = g.add_edge(vs[0], vs[1], bond).unwrap();
        let _e1 = g.add_edge(vs[1], vs[2], bond).unwrap();
        let _e2 = g.add_edge(vs[2], vs[3], bond).unwrap();
        let s = g.edge_induced_subgraph(&[e0]);
        assert_eq!(s.order(), 2, "only the two endpoints survive");
        assert_eq!(s.size(), 1);
        assert_eq!(s.vertex_label(VertexId::new(0)), a);
        assert_eq!(s.vertex_label(VertexId::new(1)), b);
        // Empty selection → empty graph.
        let empty = g.edge_induced_subgraph(&[]);
        assert_eq!(empty.order(), 0);
        assert_eq!(empty.size(), 0);
    }

    #[test]
    fn edge_lookup_matches_edge_between() {
        let (_v, a, b, bond) = labels();
        let mut g = Graph::new("g");
        let vs: Vec<_> = (0..5)
            .map(|i| g.add_vertex(if i % 2 == 0 { a } else { b }))
            .collect();
        g.add_edge(vs[0], vs[1], bond).unwrap();
        g.add_edge(vs[1], vs[2], bond).unwrap();
        g.add_edge(vs[4], vs[0], bond).unwrap();
        let lut = EdgeLookup::new(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(lut.get(u, v), g.edge_between(u, v), "{u:?}-{v:?}");
                assert_eq!(lut.has(u, v), g.has_edge(u, v));
            }
        }
        // Empty graph.
        let empty = Graph::new("e");
        let _ = EdgeLookup::new(&empty);
    }

    #[test]
    fn with_capacity_and_names() {
        let mut g = Graph::with_capacity("n", 10, 20);
        assert_eq!(g.name(), "n");
        g.set_name("m");
        assert_eq!(g.name(), "m");
        assert!(g.is_empty());
    }
}
