//! Text serialization of graph databases, plus Graphviz DOT export.
//!
//! The text format follows the classic transactional graph layout used by
//! graph-mining datasets (gSpan, Grafil, …), extended with string labels:
//!
//! ```text
//! # comment (anywhere)
//! t <name>            — starts a new graph
//! v <index> <label>   — vertex; indices must be 0,1,2,… in order
//! e <u> <v> <label>   — undirected edge between vertex indices
//! ```
//!
//! Labels may be any whitespace-free token. Parsing interns labels into the
//! caller's [`Vocabulary`] so graphs read together are directly comparable.

use std::fmt::Write as _;

use crate::error::GraphError;
use crate::graph::{Graph, VertexId};
use crate::label::Vocabulary;

/// Parses a multi-graph database from the `t/v/e` text format.
///
/// A cheap counting pre-pass sizes every graph up front
/// ([`Graph::with_capacity`], which also pre-sizes adjacency rows), so a
/// corpus load performs no mid-graph reallocation.
pub fn parse_database(input: &str, vocab: &mut Vocabulary) -> Result<Vec<Graph>, GraphError> {
    // Pre-pass: count vertices/edges per `t` block so each graph is built
    // at its final capacity. Malformed lines are left to the main pass,
    // which owns error reporting.
    let mut counts: Vec<(usize, usize)> = Vec::new();
    for raw in input.lines() {
        let text = raw.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        match text.split_whitespace().next() {
            Some("t") => counts.push((0, 0)),
            Some("v") => {
                if let Some(c) = counts.last_mut() {
                    c.0 += 1;
                }
            }
            Some("e") => {
                if let Some(c) = counts.last_mut() {
                    c.1 += 1;
                }
            }
            _ => {}
        }
    }
    let mut counts = counts.into_iter();

    let mut graphs: Vec<Graph> = Vec::with_capacity(counts.len());
    let mut current: Option<Graph> = None;

    for (lineno, raw) in input.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let mut tok = text.split_whitespace();
        let kind = tok.next().expect("non-empty line has a first token");
        match kind {
            "t" => {
                if let Some(g) = current.take() {
                    graphs.push(g);
                }
                let name = tok.next().unwrap_or("").to_owned();
                if tok.next().is_some() {
                    return Err(GraphError::Parse {
                        line,
                        message: "t line takes exactly one name token".into(),
                    });
                }
                let (order, size) = counts.next().unwrap_or((0, 0));
                current = Some(Graph::with_capacity(name, order, size));
            }
            "v" => {
                let g = current.as_mut().ok_or_else(|| GraphError::Parse {
                    line,
                    message: "v line before any t line".into(),
                })?;
                let idx: usize = parse_field(tok.next(), line, "vertex index")?;
                let label = tok.next().ok_or_else(|| GraphError::Parse {
                    line,
                    message: "v line missing label".into(),
                })?;
                if idx != g.order() {
                    return Err(GraphError::Parse {
                        line,
                        message: format!(
                            "vertex index {idx} out of order (expected {})",
                            g.order()
                        ),
                    });
                }
                let l = vocab.intern(label);
                g.add_vertex(l);
            }
            "e" => {
                let g = current.as_mut().ok_or_else(|| GraphError::Parse {
                    line,
                    message: "e line before any t line".into(),
                })?;
                let u: usize = parse_field(tok.next(), line, "edge endpoint")?;
                let v: usize = parse_field(tok.next(), line, "edge endpoint")?;
                let label = tok.next().ok_or_else(|| GraphError::Parse {
                    line,
                    message: "e line missing label".into(),
                })?;
                let l = vocab.intern(label);
                g.add_edge(VertexId::new(u), VertexId::new(v), l)
                    .map_err(|e| GraphError::Parse {
                        line,
                        message: e.to_string(),
                    })?;
            }
            other => {
                return Err(GraphError::Parse {
                    line,
                    message: format!("unknown record type {other:?} (expected t/v/e)"),
                });
            }
        }
    }
    if let Some(g) = current.take() {
        graphs.push(g);
    }
    Ok(graphs)
}

fn parse_field(tok: Option<&str>, line: usize, what: &str) -> Result<usize, GraphError> {
    let t = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    t.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what} {t:?}"),
    })
}

/// Serializes a database into the `t/v/e` text format.
///
/// Accepts any iterator of graphs (a `&[Graph]` slice, a `&Vec<Graph>`, or
/// a lazily materializing database view).
/// `parse_database(&write_database(gs, vocab), &mut fresh_vocab)` round-trips
/// structurally (names, labels, edges).
pub fn write_database<'a>(
    graphs: impl IntoIterator<Item = &'a Graph>,
    vocab: &Vocabulary,
) -> String {
    let mut out = String::new();
    for g in graphs {
        let _ = writeln!(out, "t {}", g.name());
        for v in g.vertices() {
            let _ = writeln!(
                out,
                "v {} {}",
                v.index(),
                vocab.name_or_id(g.vertex_label(v))
            );
        }
        for e in g.edges() {
            let edge = g.edge(e);
            let _ = writeln!(
                out,
                "e {} {} {}",
                edge.u.index(),
                edge.v.index(),
                vocab.name_or_id(edge.label)
            );
        }
    }
    out
}

/// Renders a graph as Graphviz DOT (undirected).
pub fn to_dot(g: &Graph, vocab: &Vocabulary) -> String {
    let mut out = String::new();
    let ident: String = g
        .name()
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    let _ = writeln!(out, "graph {ident} {{");
    for v in g.vertices() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"];",
            v.index(),
            vocab.name_or_id(g.vertex_label(v))
        );
    }
    for e in g.edges() {
        let edge = g.edge(e);
        let _ = writeln!(
            out,
            "  n{} -- n{} [label=\"{}\"];",
            edge.u.index(),
            edge.v.index(),
            vocab.name_or_id(edge.label)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    const SAMPLE: &str = "\
# a two-graph database
t first
v 0 A
v 1 B
e 0 1 -

t second
v 0 C
v 1 C
v 2 O
e 0 1 -
e 1 2 =
";

    #[test]
    fn parses_sample() {
        let mut vocab = Vocabulary::new();
        let gs = parse_database(SAMPLE, &mut vocab).unwrap();
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0].name(), "first");
        assert_eq!(gs[0].order(), 2);
        assert_eq!(gs[0].size(), 1);
        assert_eq!(gs[1].order(), 3);
        assert_eq!(gs[1].size(), 2);
        assert!(vocab.get("O").is_some());
    }

    #[test]
    fn round_trip() {
        let mut vocab = Vocabulary::new();
        let gs = parse_database(SAMPLE, &mut vocab).unwrap();
        let text = write_database(&gs, &vocab);
        let mut vocab2 = Vocabulary::new();
        let gs2 = parse_database(&text, &mut vocab2).unwrap();
        assert_eq!(gs.len(), gs2.len());
        for (a, b) in gs.iter().zip(&gs2) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.order(), b.order());
            assert_eq!(a.size(), b.size());
            for v in a.vertices() {
                assert_eq!(
                    vocab.name(a.vertex_label(v)),
                    vocab2.name(b.vertex_label(v)),
                    "vertex label mismatch after round trip"
                );
            }
            for e in a.edges() {
                let ea = a.edge(e);
                let eb = b.edge(e);
                assert_eq!((ea.u, ea.v), (eb.u, eb.v));
                assert_eq!(vocab.name(ea.label), vocab2.name(eb.label));
            }
        }
    }

    #[test]
    fn error_reporting_carries_line_numbers() {
        let mut vocab = Vocabulary::new();
        let err = parse_database("v 0 A", &mut vocab).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err}");

        let err = parse_database("t g\nv 1 A", &mut vocab).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");

        let err = parse_database("t g\nv 0 A\ne 0 0 -", &mut vocab).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("self-loop"));
            }
            other => panic!("unexpected error {other:?}"),
        }

        let err = parse_database("x whatever", &mut vocab).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));

        let err = parse_database("t g\nv zero A", &mut vocab).unwrap_err();
        assert!(err.to_string().contains("invalid vertex index"));
    }

    #[test]
    fn dot_output_contains_all_elements() {
        let mut vocab = Vocabulary::new();
        let g = GraphBuilder::new("my graph", &mut vocab)
            .vertex("a", "A")
            .vertex("b", "B")
            .edge("a", "b", "-")
            .build()
            .unwrap();
        let dot = to_dot(&g, &vocab);
        assert!(dot.starts_with("graph my_graph {"));
        assert!(dot.contains("n0 [label=\"A\"]"));
        assert!(dot.contains("n1 [label=\"B\"]"));
        assert!(dot.contains("n0 -- n1 [label=\"-\"]"));
    }

    #[test]
    fn empty_input_is_empty_database() {
        let mut vocab = Vocabulary::new();
        assert!(parse_database("", &mut vocab).unwrap().is_empty());
        assert!(parse_database("# only comments\n\n", &mut vocab)
            .unwrap()
            .is_empty());
    }
}
