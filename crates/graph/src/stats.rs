//! Label histograms and multiset arithmetic.
//!
//! Distance lower bounds (GED) and upper bounds (MCS) in the workspace are
//! driven by multiset intersections of vertex labels, edge labels, and
//! *edge classes* — an edge class is the triple
//! `(min endpoint label, max endpoint label, edge label)`, i.e. everything a
//! label-preserving mapping must conserve about a single edge.

use std::collections::BTreeMap;

use crate::graph::Graph;
use crate::label::Label;

/// The static structural summary of one graph, computed once and reused by
/// every similarity scan that touches the graph.
///
/// Everything a prefilter bound or an isomorphism short-circuit needs from
/// the *candidate* side of a pair lives here: label multisets, the edge-class
/// multiset, the sorted degree sequence, the WL fingerprint and the
/// connectivity flag. `gss-core::GraphDatabase` caches one `GraphStats` per
/// stored graph so scans stop recomputing them per candidate per query.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Multiset of vertex labels.
    pub vertex_labels: Multiset<Label>,
    /// Multiset of edge labels.
    pub edge_labels: Multiset<Label>,
    /// Multiset of [`EdgeClass`]es.
    pub edge_classes: Multiset<EdgeClass>,
    /// Sorted (ascending) degree sequence.
    pub degrees: Vec<usize>,
    /// `|V|`.
    pub order: usize,
    /// `|E|` — the paper's `|g|`.
    pub size: usize,
    /// 1-WL fingerprint after [`GraphStats::WL_ROUNDS`] refinement rounds.
    pub wl_fingerprint: u64,
    /// True when the graph is connected.
    pub connected: bool,
}

impl GraphStats {
    /// WL refinement rounds used for [`GraphStats::wl_fingerprint`] — the
    /// same number the query pipeline's isomorphism short-circuit compares
    /// with (two rounds separate almost all non-isomorphic pairs at this
    /// domain's graph sizes).
    pub const WL_ROUNDS: usize = 2;

    /// Computes the full summary of `g` in `O(|V| log |V| + |E| log |E|)`.
    pub fn compute(g: &Graph) -> Self {
        GraphStats {
            vertex_labels: vertex_label_multiset(g),
            edge_labels: edge_label_multiset(g),
            edge_classes: edge_class_multiset(g),
            degrees: degree_sequence(g),
            order: g.order(),
            size: g.size(),
            wl_fingerprint: crate::wl::wl_fingerprint(g, Self::WL_ROUNDS),
            connected: crate::algo::is_connected(g),
        }
    }

    /// Total label occurrences (`|V| + |E|`), the graph's half of the
    /// label-histogram normalizer.
    pub fn label_total(&self) -> u32 {
        self.vertex_labels.total() + self.edge_labels.total()
    }
}

/// A multiset of keys with `u32` multiplicities.
///
/// Backed by a `BTreeMap` so iteration order is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Multiset<K: Ord> {
    counts: BTreeMap<K, u32>,
}

impl<K: Ord + Copy> Multiset<K> {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        Multiset {
            counts: BTreeMap::new(),
        }
    }

    /// Adds one occurrence of `key`.
    pub fn insert(&mut self, key: K) {
        *self.counts.entry(key).or_insert(0) += 1;
    }

    /// Adds `n` occurrences of `key`.
    pub fn insert_n(&mut self, key: K, n: u32) {
        if n > 0 {
            *self.counts.entry(key).or_insert(0) += n;
        }
    }

    /// Raises every key's multiplicity to at least its multiplicity in
    /// `other`: the per-key maximum, i.e. the smallest multiset containing
    /// both. Folding this over a set of multisets yields their *envelope* —
    /// any multiset's intersection with a member is at most its
    /// intersection with the envelope, which is what partition-level
    /// similarity bounds rely on.
    pub fn max_union(&mut self, other: &Self) {
        for (k, c) in other.iter() {
            let e = self.counts.entry(*k).or_insert(0);
            *e = (*e).max(c);
        }
    }

    /// Multiplicity of `key`.
    pub fn count(&self, key: &K) -> u32 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Total number of elements (with multiplicity).
    pub fn total(&self) -> u32 {
        self.counts.values().sum()
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Size of the multiset intersection: `Σ_k min(self[k], other[k])`.
    ///
    /// This is the maximum number of elements of `self` that can be matched
    /// one-to-one to equal elements of `other` — the core quantity in both
    /// the GED lower bound and the MCS upper bound.
    pub fn intersection_size(&self, other: &Self) -> u32 {
        self.counts
            .iter()
            .map(|(k, &c)| c.min(other.count(k)))
            .sum()
    }

    /// Size of the multiset symmetric difference:
    /// `Σ_k |self[k] − other[k]|`.
    pub fn symmetric_difference_size(&self, other: &Self) -> u32 {
        let mut sum = 0u32;
        for (k, &c) in &self.counts {
            let o = other.count(k);
            sum += c.abs_diff(o);
        }
        for (k, &o) in &other.counts {
            if self.count(k) == 0 {
                sum += o;
            }
        }
        sum
    }

    /// Iterates `(key, multiplicity)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u32)> + '_ {
        self.counts.iter().map(|(k, &c)| (k, c))
    }
}

impl<K: Ord + Copy> FromIterator<K> for Multiset<K> {
    fn from_iter<T: IntoIterator<Item = K>>(iter: T) -> Self {
        let mut m = Multiset::new();
        for k in iter {
            m.insert(k);
        }
        m
    }
}

/// An edge class: the unordered endpoint-label pair plus the edge label.
///
/// Two edges can correspond under a label-preserving mapping only if their
/// classes are equal.
pub type EdgeClass = (Label, Label, Label);

/// Multiset of vertex labels of `g`.
pub fn vertex_label_multiset(g: &Graph) -> Multiset<Label> {
    g.vertices().map(|v| g.vertex_label(v)).collect()
}

/// Multiset of edge labels of `g`.
pub fn edge_label_multiset(g: &Graph) -> Multiset<Label> {
    g.edges().map(|e| g.edge_label(e)).collect()
}

/// Multiset of [`EdgeClass`]es of `g`.
pub fn edge_class_multiset(g: &Graph) -> Multiset<EdgeClass> {
    g.edges()
        .map(|e| {
            let edge = g.edge(e);
            let (a, b) = (g.vertex_label(edge.u), g.vertex_label(edge.v));
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            (lo, hi, edge.label)
        })
        .collect()
}

/// Minimum number of **vertex** edit operations (substitutions counted when
/// labels differ, plus insertions/deletions) needed to align the vertex sets
/// of `g1` and `g2`, ignoring all structure.
///
/// This is `max(|V1|, |V2|) − |multiset-intersection of vertex labels|` and
/// is an admissible (never over-estimating) component of the GED lower bound.
pub fn vertex_alignment_lower_bound(g1: &Graph, g2: &Graph) -> u32 {
    let m1 = vertex_label_multiset(g1);
    let m2 = vertex_label_multiset(g2);
    let common = m1.intersection_size(&m2);
    (g1.order().max(g2.order()) as u32) - common
}

/// Minimum number of **edge** edit operations needed to align the edge
/// *class* multisets of `g1` and `g2`, ignoring endpoint consistency.
///
/// Admissible for the same reason as [`vertex_alignment_lower_bound`]: a real
/// edit path must do at least this much work on edges.
pub fn edge_alignment_lower_bound(g1: &Graph, g2: &Graph) -> u32 {
    // Using plain edge labels (not classes) keeps the bound admissible even
    // when vertex relabelings could change an edge's class for free; an edge
    // whose endpoints get relabeled needs no edge operation, but then the
    // vertex bound already charges for those relabelings. To stay safe we
    // only align on the edge's own label.
    let m1 = edge_label_multiset(g1);
    let m2 = edge_label_multiset(g2);
    let common = m1.intersection_size(&m2);
    (g1.size().max(g2.size()) as u32) - common
}

/// Upper bound on the number of edges any label-preserving common subgraph of
/// `g1` and `g2` can have: the edge-class multiset intersection size.
pub fn mcs_upper_bound(g1: &Graph, g2: &Graph) -> u32 {
    edge_class_multiset(g1).intersection_size(&edge_class_multiset(g2))
}

/// The sorted (ascending) degree sequence of `g`.
///
/// A cheap `O(|V| log |V|)` isomorphism invariant; the similarity prefilter
/// turns the L1 distance between two degree sequences into a GED lower
/// bound (`gss-ged::degree_lower_bound`).
pub fn degree_sequence(g: &Graph) -> Vec<usize> {
    let mut d: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    d.sort_unstable();
    d
}

/// L1 distance between the sorted degree sequences of `g1` and `g2`, with
/// the shorter sequence zero-padded (a missing vertex contributes degree 0).
///
/// Sorting minimizes the element-wise matching cost between the two degree
/// multisets, so this is the tightest position-wise comparison.
pub fn degree_sequence_l1(g1: &Graph, g2: &Graph) -> usize {
    degree_sequence_l1_presorted(&degree_sequence(g1), &degree_sequence(g2))
}

/// [`degree_sequence_l1`] over already-sorted (ascending) degree sequences.
///
/// Scans that compare one query against many candidates sort the query's
/// sequence once and call this per candidate instead of re-deriving it.
pub fn degree_sequence_l1_presorted(a: &[usize], b: &[usize]) -> usize {
    let (longer, shorter) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let pad = longer.len() - shorter.len();
    // Align the shorter sequence against the top of the longer one: padding
    // zeros occupy the smallest positions of the sorted order.
    let mut l1 = longer[..pad].iter().sum::<usize>();
    for (x, y) in longer[pad..].iter().zip(shorter.iter()) {
        l1 += x.abs_diff(*y);
    }
    l1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::label::Vocabulary;

    fn sample() -> (Graph, Graph) {
        let mut v = Vocabulary::new();
        let g1 = GraphBuilder::new("g1", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .edge("a", "b", "-")
            .edge("b", "c", "=")
            .build()
            .unwrap();
        let g2 = GraphBuilder::new("g2", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("d", "D")
            .edge("a", "b", "-")
            .edge("b", "d", "-")
            .build()
            .unwrap();
        (g1, g2)
    }

    #[test]
    fn multiset_basics() {
        let m: Multiset<u32> = [1, 1, 2, 3].into_iter().collect();
        assert_eq!(m.count(&1), 2);
        assert_eq!(m.count(&9), 0);
        assert_eq!(m.total(), 4);
        assert_eq!(m.distinct(), 3);
    }

    #[test]
    fn max_union_is_an_envelope() {
        let a: Multiset<u32> = [1, 1, 2].into_iter().collect();
        let b: Multiset<u32> = [1, 2, 2, 3].into_iter().collect();
        let mut env = a.clone();
        env.max_union(&b);
        assert_eq!(env.count(&1), 2);
        assert_eq!(env.count(&2), 2);
        assert_eq!(env.count(&3), 1);
        // Envelope property: ∀ probe q, q ∩ member ≤ q ∩ envelope.
        let q: Multiset<u32> = [1, 2, 3, 3].into_iter().collect();
        assert!(q.intersection_size(&a) <= q.intersection_size(&env));
        assert!(q.intersection_size(&b) <= q.intersection_size(&env));

        let mut m = Multiset::new();
        m.insert_n(7, 3);
        m.insert_n(8, 0);
        assert_eq!(m.count(&7), 3);
        assert_eq!(m.count(&8), 0);
        assert_eq!(m.distinct(), 1, "insert_n(_, 0) must not create a key");
    }

    #[test]
    fn intersection_and_symmetric_difference() {
        let a: Multiset<u32> = [1, 1, 2].into_iter().collect();
        let b: Multiset<u32> = [1, 2, 2, 3].into_iter().collect();
        assert_eq!(a.intersection_size(&b), 2); // one 1, one 2
        assert_eq!(b.intersection_size(&a), 2); // symmetric
        assert_eq!(a.symmetric_difference_size(&b), 3); // extra 1, extra 2, extra 3
        assert_eq!(b.symmetric_difference_size(&a), 3);
        // |A| + |B| = 2·|A∩B| + |AΔB|
        assert_eq!(
            a.total() + b.total(),
            2 * a.intersection_size(&b) + a.symmetric_difference_size(&b)
        );
    }

    #[test]
    fn graph_histograms() {
        let (g1, g2) = sample();
        let v1 = vertex_label_multiset(&g1);
        let v2 = vertex_label_multiset(&g2);
        assert_eq!(v1.total(), 3);
        assert_eq!(v1.intersection_size(&v2), 2); // A and B shared
        let e1 = edge_label_multiset(&g1);
        let e2 = edge_label_multiset(&g2);
        assert_eq!(e1.intersection_size(&e2), 1); // one "-" edge shared
    }

    #[test]
    fn lower_and_upper_bounds() {
        let (g1, g2) = sample();
        // Vertices: C vs D mismatch → at least 1 vertex op.
        assert_eq!(vertex_alignment_lower_bound(&g1, &g2), 1);
        // Edges: "=" vs "-" mismatch → at least 1 edge op.
        assert_eq!(edge_alignment_lower_bound(&g1, &g2), 1);
        // Common subgraph can share at most the A-B "-" edge.
        assert_eq!(mcs_upper_bound(&g1, &g2), 1);
    }

    #[test]
    fn bounds_vanish_on_identical_graphs() {
        let (g1, _) = sample();
        assert_eq!(vertex_alignment_lower_bound(&g1, &g1), 0);
        assert_eq!(edge_alignment_lower_bound(&g1, &g1), 0);
        assert_eq!(mcs_upper_bound(&g1, &g1) as usize, g1.size());
    }

    #[test]
    fn presorted_l1_matches_graph_l1() {
        let (g1, g2) = sample();
        let (a, b) = (degree_sequence(&g1), degree_sequence(&g2));
        assert_eq!(
            degree_sequence_l1_presorted(&a, &b),
            degree_sequence_l1(&g1, &g2)
        );
        // Padding: [1, 2] vs [3] → the 1 aligns with an implicit 0, the 2
        // with the 3: 1 + 1 = 2.
        assert_eq!(degree_sequence_l1_presorted(&[1, 2], &[3]), 2);
        assert_eq!(degree_sequence_l1_presorted(&[], &[2, 2]), 4);
    }

    #[test]
    fn edge_class_is_orientation_independent() {
        let mut v = Vocabulary::new();
        let g1 = GraphBuilder::new("g1", &mut v)
            .vertex("x", "A")
            .vertex("y", "B")
            .edge("x", "y", "-")
            .build()
            .unwrap();
        let g2 = GraphBuilder::new("g2", &mut v)
            .vertex("y", "B")
            .vertex("x", "A")
            .edge("y", "x", "-")
            .build()
            .unwrap();
        assert_eq!(edge_class_multiset(&g1), edge_class_multiset(&g2));
    }
}
