//! Fluent construction of labeled graphs from string names and labels.

use std::collections::HashMap;

use crate::error::GraphError;
use crate::graph::{Graph, VertexId};
use crate::label::Vocabulary;

/// A fluent builder that assembles a [`Graph`] from *named* vertices and
/// string labels, interning labels into a shared [`Vocabulary`].
///
/// Errors (duplicate names, unknown endpoints, self-loops, parallel edges)
/// are accumulated and reported by [`GraphBuilder::build`], which keeps the
/// fluent chain tidy.
///
/// ```
/// use gss_graph::{GraphBuilder, Vocabulary};
///
/// let mut vocab = Vocabulary::new();
/// let g = GraphBuilder::new("q", &mut vocab)
///     .vertex("a", "A")
///     .vertex("b", "B")
///     .edge("a", "b", "-")
///     .build()
///     .unwrap();
/// assert_eq!(g.order(), 2);
/// assert_eq!(g.size(), 1);
/// ```
pub struct GraphBuilder<'v> {
    graph: Graph,
    vocab: &'v mut Vocabulary,
    names: HashMap<String, VertexId>,
    first_error: Option<GraphError>,
}

impl<'v> GraphBuilder<'v> {
    /// Starts building a graph called `name`, interning labels in `vocab`.
    pub fn new(name: impl Into<String>, vocab: &'v mut Vocabulary) -> Self {
        GraphBuilder {
            graph: Graph::new(name),
            vocab,
            names: HashMap::new(),
            first_error: None,
        }
    }

    /// Declares a vertex called `name` with `label`.
    pub fn vertex(mut self, name: &str, label: &str) -> Self {
        if self.first_error.is_some() {
            return self;
        }
        if self.names.contains_key(name) {
            self.first_error = Some(GraphError::DuplicateVertexName {
                name: name.to_owned(),
            });
            return self;
        }
        let l = self.vocab.intern(label);
        let id = self.graph.add_vertex(l);
        self.names.insert(name.to_owned(), id);
        self
    }

    /// Declares several vertices sharing one label.
    pub fn vertices(mut self, names: &[&str], label: &str) -> Self {
        for n in names {
            self = self.vertex(n, label);
        }
        self
    }

    /// Declares an edge between the named endpoints with `label`.
    pub fn edge(mut self, u: &str, v: &str, label: &str) -> Self {
        if self.first_error.is_some() {
            return self;
        }
        let Some(&ui) = self.names.get(u) else {
            self.first_error = Some(GraphError::UnknownVertexName { name: u.to_owned() });
            return self;
        };
        let Some(&vi) = self.names.get(v) else {
            self.first_error = Some(GraphError::UnknownVertexName { name: v.to_owned() });
            return self;
        };
        let l = self.vocab.intern(label);
        if let Err(e) = self.graph.add_edge(ui, vi, l) {
            self.first_error = Some(e);
        }
        self
    }

    /// Declares a chain of `-`-separated edges all carrying `label`:
    /// `path(&["a","b","c"], "-")` adds edges a–b and b–c.
    pub fn path(mut self, names: &[&str], label: &str) -> Self {
        for w in names.windows(2) {
            self = self.edge(w[0], w[1], label);
        }
        self
    }

    /// Declares a closed cycle through `names` (requires ≥ 3 names).
    pub fn cycle(mut self, names: &[&str], label: &str) -> Self {
        self = self.path(names, label);
        if names.len() >= 3 {
            self = self.edge(names[names.len() - 1], names[0], label);
        }
        self
    }

    /// Finishes construction, returning the graph or the first error hit.
    pub fn build(self) -> Result<Graph, GraphError> {
        match self.first_error {
            Some(e) => Err(e),
            None => Ok(self.graph),
        }
    }

    /// Looks up the id of a named vertex declared so far.
    pub fn id_of(&self, name: &str) -> Option<VertexId> {
        self.names.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_cycle_with_pendant() {
        // The paper's reconstructed query graph shape: 5-cycle + pendant.
        let mut vocab = Vocabulary::new();
        let g = GraphBuilder::new("q", &mut vocab)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .vertex("d", "D")
            .vertex("e", "E")
            .vertex("f", "F")
            .cycle(&["a", "b", "c", "d", "e"], "-")
            .edge("a", "f", "-")
            .build()
            .unwrap();
        assert_eq!(g.order(), 6);
        assert_eq!(g.size(), 6);
    }

    #[test]
    fn duplicate_vertex_name_fails() {
        let mut vocab = Vocabulary::new();
        let err = GraphBuilder::new("g", &mut vocab)
            .vertex("a", "A")
            .vertex("a", "B")
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::DuplicateVertexName { name: "a".into() });
    }

    #[test]
    fn unknown_endpoint_fails() {
        let mut vocab = Vocabulary::new();
        let err = GraphBuilder::new("g", &mut vocab)
            .vertex("a", "A")
            .edge("a", "zz", "-")
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::UnknownVertexName { name: "zz".into() });
    }

    #[test]
    fn error_is_sticky_and_first_wins() {
        let mut vocab = Vocabulary::new();
        let err = GraphBuilder::new("g", &mut vocab)
            .edge("x", "y", "-") // unknown x — first error
            .vertex("x", "A")
            .vertex("x", "A") // would be a duplicate, but builder already failed
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::UnknownVertexName { name: "x".into() });
    }

    #[test]
    fn vertices_and_path_helpers() {
        let mut vocab = Vocabulary::new();
        let g = GraphBuilder::new("p", &mut vocab)
            .vertices(&["x", "y", "z"], "C")
            .path(&["x", "y", "z"], "-")
            .build()
            .unwrap();
        assert_eq!(g.order(), 3);
        assert_eq!(g.size(), 2);
    }

    #[test]
    fn cycle_of_two_does_not_duplicate() {
        let mut vocab = Vocabulary::new();
        // A "cycle" of 2 would need a parallel edge; builder only closes
        // cycles of length >= 3, so this stays a single edge.
        let g = GraphBuilder::new("c2", &mut vocab)
            .vertices(&["x", "y"], "C")
            .cycle(&["x", "y"], "-")
            .build()
            .unwrap();
        assert_eq!(g.size(), 1);
    }

    #[test]
    fn id_of_reports_declared_vertices() {
        let mut vocab = Vocabulary::new();
        let b = GraphBuilder::new("g", &mut vocab).vertex("a", "A");
        assert!(b.id_of("a").is_some());
        assert!(b.id_of("nope").is_none());
    }
}
