//! # gss-graph — labeled-graph substrate for similarity-skyline queries
//!
//! This crate provides the graph model used throughout the
//! `similarity-skyline` workspace, matching the definitions of Abbaci et al.
//! (GDM/ICDE 2011), *"A Similarity Skyline Approach for Handling Graph
//! Queries"*:
//!
//! * a **graph** is an undirected simple graph whose vertices *and* edges
//!   carry labels (Definition 3 of the paper);
//! * the **size** of a graph, written `|g|`, is its number of *edges*;
//! * labels are interned into compact [`Label`] ids through a shared
//!   [`Vocabulary`] so that all similarity algorithms compare plain `u32`s.
//!
//! Beyond the model itself the crate offers:
//!
//! * [`arena`] — compact interned storage: a database-wide [`LabelPool`],
//!   CSR-style [`GraphArena`] flat arrays with borrowed [`GraphRef`]
//!   views, and column-oriented [`StatsColumns`] — the memory layout the
//!   zero-parse persistence format adopts byte-for-byte;
//! * [`GraphBuilder`] — ergonomic construction from string labels;
//! * [`algo`] — traversal, connectivity and component utilities;
//! * [`stats`] — label histograms used by distance lower bounds, plus the
//!   per-graph [`GraphStats`] summary the query pipeline caches;
//! * [`bitset`] — word-parallel [`Bitset`]/[`BitMatrix`] substrate for the
//!   allocation-free solver kernels;
//! * [`mod@format`] — a line-oriented text format (compatible in spirit with the
//!   classic `t/v/e` transactional graph format) plus Graphviz DOT export;
//! * [`rng`] — a small, fully deterministic PRNG (SplitMix64-seeded
//!   Xoshiro256++) so every synthetic workload in the workspace is
//!   bit-reproducible without external dependencies.
//!
//! ## Invariants
//!
//! * No self-loops and no parallel edges ([`Graph::add_edge`] rejects both).
//! * [`VertexId`]s and [`EdgeId`]s are dense indices assigned in insertion
//!   order; they are stable for the lifetime of the graph.
//! * Two graphs may only be compared by the similarity crates when their
//!   labels were interned in the **same** [`Vocabulary`]; the
//!   `gss-core::GraphDatabase` type enforces this.
//!
//! ## Example
//!
//! ```
//! use gss_graph::{Graph, GraphBuilder, Vocabulary};
//!
//! let mut vocab = Vocabulary::new();
//! let g: Graph = GraphBuilder::new("triangle", &mut vocab)
//!     .vertex("u", "C")
//!     .vertex("v", "C")
//!     .vertex("w", "O")
//!     .edge("u", "v", "-")
//!     .edge("v", "w", "=")
//!     .edge("w", "u", "-")
//!     .build()
//!     .unwrap();
//! assert_eq!(g.order(), 3); // vertices
//! assert_eq!(g.size(), 3);  // edges — the paper's |g|
//! ```

#![warn(missing_docs)]

pub mod algo;
pub mod arena;
pub mod bitset;
pub mod builder;
pub mod error;
pub mod format;
pub mod graph;
pub mod label;
pub mod rng;
pub mod stats;
pub mod wl;

pub use arena::{GraphArena, GraphRef, LabelPool, StatsColumns};
pub use bitset::{BitMatrix, Bitset};
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Edge, EdgeId, EdgeLookup, Graph, Vertex, VertexId};
pub use label::{Label, Vocabulary};
pub use rng::Rng;
pub use stats::GraphStats;
pub use wl::wl_fingerprint;

/// Convenient glob import for downstream crates:
/// `use gss_graph::prelude::*;`
pub mod prelude {
    pub use crate::algo;
    pub use crate::builder::GraphBuilder;
    pub use crate::error::GraphError;
    pub use crate::graph::{Edge, EdgeId, Graph, Vertex, VertexId};
    pub use crate::label::{Label, Vocabulary};
    pub use crate::rng::Rng;
    pub use crate::stats;
}
