//! Word-parallel bitsets for the solver hot paths.
//!
//! The exact solvers (branch-and-bound GED, the product-graph max clique
//! behind the MCS measures, VF2 verification) spend most of their time
//! intersecting and iterating small dense vertex sets. Representing those
//! sets as `u64` words turns per-vertex membership loops into a handful of
//! word operations and — just as important at this domain's graph sizes —
//! removes the per-search-node heap allocations the `Vec<bool>` / filtered
//! `Vec<usize>` representations forced.
//!
//! Two types are provided:
//!
//! * [`Bitset`] — a fixed-universe set of `usize` indices backed by a flat
//!   `Vec<u64>`; supports in-place intersection/union/difference against
//!   another set or a [`BitMatrix`] row, and allocation-free iteration of
//!   set bits in ascending order ([`Bitset::iter`]).
//! * [`BitMatrix`] — a dense square/rectangular 0/1 matrix stored row-major
//!   as whole words (one row = `words_per_row` consecutive `u64`s), used as
//!   a graph adjacency matrix with `O(1)` edge tests and rows that act as
//!   neighbour bitsets.
//!
//! Both are plain data holders: they never allocate after construction
//! (`resize` reuses capacity), so solvers can keep them in reusable
//! workspaces across thousands of pair evaluations.

/// Number of bits in one storage word.
const WORD_BITS: usize = 64;

#[inline]
fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// A set of indices from a fixed universe `0..len`, stored one bit per
/// element in `u64` words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    len: usize,
}

impl Bitset {
    /// Creates an empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Bitset {
            words: vec![0; words_for(len)],
            len,
        }
    }

    /// Creates the full set `{0, …, len-1}`.
    pub fn full(len: usize) -> Self {
        let mut s = Bitset::new(len);
        s.fill();
        s
    }

    /// Resets the universe to `0..len` and clears every bit, reusing the
    /// existing allocation when possible.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(words_for(len), 0);
    }

    /// The universe size (maximum element + 1 capacity, not the count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the universe is empty (`len == 0`).
    pub fn is_universe_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets every bit of the universe.
    pub fn fill(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.trim();
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Zeroes the padding bits past `len` in the last word.
    #[inline]
    fn trim(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        } else if self.len == 0 {
            self.words.clear();
        }
    }

    /// Inserts `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len, "index {i} out of universe {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Removes `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len, "index {i} out of universe {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// True when `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "index {i} out of universe {}", self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        for (k, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(k * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Copies `other` into `self` (universes must match).
    // gss-lint: kernel — word-parallel bitset op on caller-owned storage; called from every solver inner loop
    pub fn copy_from(&mut self, other: &Bitset) {
        debug_assert_eq!(self.len, other.len, "universe mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// In-place intersection with another set.
    // gss-lint: kernel — word-parallel bitset op on caller-owned storage; called from every solver inner loop
    pub fn intersect_with(&mut self, other: &Bitset) {
        debug_assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union with another set.
    // gss-lint: kernel — word-parallel bitset op on caller-owned storage; called from every solver inner loop
    pub fn union_with(&mut self, other: &Bitset) {
        debug_assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference: removes every element of `other`.
    // gss-lint: kernel — word-parallel bitset op on caller-owned storage; called from every solver inner loop
    pub fn difference_with(&mut self, other: &Bitset) {
        debug_assert_eq!(self.len, other.len, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Overwrites `self` with a [`BitMatrix`] row (the row length must
    /// equal this set's universe).
    // gss-lint: kernel — word-parallel bitset op on caller-owned storage; called from every solver inner loop
    pub fn assign_row(&mut self, m: &BitMatrix, row: usize) {
        debug_assert_eq!(self.len, m.cols(), "universe mismatch");
        self.words.copy_from_slice(m.row_words(row));
    }

    /// In-place intersection with a [`BitMatrix`] row (the row length must
    /// equal this set's universe).
    // gss-lint: kernel — word-parallel bitset op on caller-owned storage; called from every solver inner loop
    pub fn intersect_with_row(&mut self, m: &BitMatrix, row: usize) {
        for (a, b) in self.words.iter_mut().zip(m.row_words(row)) {
            *a &= b;
        }
    }

    /// In-place difference with a [`BitMatrix`] row.
    // gss-lint: kernel — word-parallel bitset op on caller-owned storage; called from every solver inner loop
    pub fn difference_with_row(&mut self, m: &BitMatrix, row: usize) {
        for (a, b) in self.words.iter_mut().zip(m.row_words(row)) {
            *a &= !b;
        }
    }

    /// Sets `self` to `a ∩ b` (all three universes must match).
    // gss-lint: kernel — word-parallel bitset op on caller-owned storage; called from every solver inner loop
    pub fn assign_intersection(&mut self, a: &Bitset, b: &Bitset) {
        debug_assert_eq!(self.len, a.len, "universe mismatch");
        debug_assert_eq!(self.len, b.len, "universe mismatch");
        for (w, (x, y)) in self.words.iter_mut().zip(a.words.iter().zip(&b.words)) {
            *w = x & y;
        }
    }

    /// Iterates the elements in ascending order. Allocation-free.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The raw words (low bit of word 0 is element 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Ascending iterator over the set bits of a [`Bitset`] or matrix row.
#[derive(Clone, Debug)]
pub struct BitIter<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    #[inline]
    // gss-lint: kernel — word-parallel bitset op on caller-owned storage; called from every solver inner loop
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            if self.word_index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_index];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_index * WORD_BITS + bit)
    }
}

/// A dense 0/1 matrix with word-packed rows; rows double as bitsets.
///
/// Used as an adjacency matrix by the clique and VF2 kernels: `set`/`test`
/// are `O(1)` and a whole row intersects into a candidate [`Bitset`] in
/// `O(cols / 64)` word operations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitMatrix {
    words: Vec<u64>,
    rows: usize,
    cols: usize,
    words_per_row: usize,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = words_for(cols);
        BitMatrix {
            words: vec![0; rows * words_per_row],
            rows,
            cols,
            words_per_row,
        }
    }

    /// Resets to an all-zero `rows × cols` matrix, reusing the allocation
    /// when possible.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.words_per_row = words_for(cols);
        self.rows = rows;
        self.cols = cols;
        self.words.clear();
        self.words.resize(rows * self.words_per_row, 0);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets entry `(r, c)` to 1.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.rows && c < self.cols, "({r},{c}) out of range");
        self.words[r * self.words_per_row + c / WORD_BITS] |= 1u64 << (c % WORD_BITS);
    }

    /// Sets both `(r, c)` and `(c, r)` to 1 (symmetric adjacency).
    #[inline]
    pub fn set_sym(&mut self, r: usize, c: usize) {
        self.set(r, c);
        self.set(c, r);
    }

    /// True when entry `(r, c)` is 1.
    #[inline]
    pub fn test(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols, "({r},{c}) out of range");
        self.words[r * self.words_per_row + c / WORD_BITS] & (1u64 << (c % WORD_BITS)) != 0
    }

    /// The words of row `r`.
    #[inline]
    pub fn row_words(&self, r: usize) -> &[u64] {
        let start = r * self.words_per_row;
        &self.words[start..start + self.words_per_row]
    }

    /// Iterates the set columns of row `r` in ascending order.
    pub fn row_iter(&self, r: usize) -> BitIter<'_> {
        let words = self.row_words(r);
        BitIter {
            words,
            word_index: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }

    /// Number of set bits in row `r`.
    pub fn row_count(&self, r: usize) -> usize {
        self.row_words(r)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Builds the adjacency matrix of a graph (`order × order`, symmetric,
    /// zero diagonal).
    pub fn adjacency(g: &crate::graph::Graph) -> Self {
        let n = g.order();
        let mut m = BitMatrix::new(n, n);
        for e in g.edges() {
            let edge = g.edge(e);
            m.set_sym(edge.u.index(), edge.v.index());
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = Bitset::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert_eq!(s.count(), 4);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 129]);
        assert_eq!(s.first(), Some(0));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
    }

    #[test]
    fn full_respects_universe_boundary() {
        for len in [0usize, 1, 63, 64, 65, 128, 130] {
            let s = Bitset::full(len);
            assert_eq!(s.count(), len, "len={len}");
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..len).collect::<Vec<_>>());
        }
        assert!(Bitset::full(0).is_universe_empty());
        assert_eq!(Bitset::full(5).len(), 5);
    }

    #[test]
    fn set_algebra() {
        let mut a = Bitset::new(100);
        let mut b = Bitset::new(100);
        for i in (0..100).step_by(2) {
            a.insert(i);
        }
        for i in (0..100).step_by(3) {
            b.insert(i);
        }
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(
            inter.iter().collect::<Vec<_>>(),
            (0..100).step_by(6).collect::<Vec<_>>()
        );
        let mut uni = a.clone();
        uni.union_with(&b);
        assert_eq!(uni.count(), 50 + 34 - 17);
        let mut diff = a.clone();
        diff.difference_with(&b);
        assert!(diff.iter().all(|i| i % 2 == 0 && i % 3 != 0));
        let mut assigned = Bitset::new(100);
        assigned.assign_intersection(&a, &b);
        assert_eq!(assigned, inter);
    }

    #[test]
    fn reset_reuses_and_clears() {
        let mut s = Bitset::new(70);
        s.insert(69);
        s.reset(32);
        assert_eq!(s.len(), 32);
        assert!(s.is_empty());
        s.insert(31);
        assert_eq!(s.count(), 1);
        s.reset(200);
        assert!(s.is_empty());
        s.insert(199);
        assert!(s.contains(199));
    }

    #[test]
    fn matrix_set_test_rows() {
        let mut m = BitMatrix::new(5, 70);
        m.set(0, 69);
        m.set(4, 0);
        m.set_sym(1, 3);
        assert!(m.test(0, 69) && m.test(4, 0));
        assert!(m.test(1, 3) && m.test(3, 1));
        assert!(!m.test(0, 0));
        assert_eq!(m.row_iter(0).collect::<Vec<_>>(), vec![69]);
        assert_eq!(m.row_count(1), 1);
        assert_eq!(m.rows(), 5);
        assert_eq!(m.cols(), 70);

        let mut s = Bitset::full(70);
        s.intersect_with_row(&m, 0);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![69]);
        let mut d = Bitset::full(70);
        d.difference_with_row(&m, 0);
        assert_eq!(d.count(), 69);
    }

    #[test]
    fn matrix_reset() {
        let mut m = BitMatrix::new(3, 3);
        m.set(2, 2);
        m.reset(2, 130);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 130);
        assert!(!m.test(1, 129));
        m.set(1, 129);
        assert!(m.test(1, 129));
    }

    #[test]
    fn adjacency_from_graph() {
        use crate::builder::GraphBuilder;
        use crate::label::Vocabulary;
        let mut v = Vocabulary::new();
        let g = GraphBuilder::new("g", &mut v)
            .vertices(&["a", "b", "c"], "C")
            .path(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let m = BitMatrix::adjacency(&g);
        assert!(m.test(0, 1) && m.test(1, 0) && m.test(1, 2));
        assert!(!m.test(0, 2) && !m.test(0, 0));
        assert_eq!(m.row_count(1), 2);
    }

    #[test]
    fn iterator_handles_sparse_high_words() {
        let mut s = Bitset::new(64 * 5);
        s.insert(64 * 4 + 17);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![64 * 4 + 17]);
        assert_eq!(s.first(), Some(64 * 4 + 17));
    }
}
