//! Error types for graph construction and parsing.

use std::fmt;

/// Errors produced while building or parsing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operation referenced a vertex id that does not exist in the graph.
    InvalidVertex {
        /// The offending vertex index.
        index: usize,
        /// Number of vertices actually present.
        order: usize,
    },
    /// An operation referenced an edge id that does not exist in the graph.
    InvalidEdge {
        /// The offending edge index.
        index: usize,
        /// Number of edges actually present.
        size: usize,
    },
    /// Attempted to add an edge from a vertex to itself.
    ///
    /// The paper's graph model (Definition 3) and all similarity measures
    /// assume simple graphs, so self-loops are rejected at construction time.
    SelfLoop {
        /// The vertex on both endpoints.
        vertex: usize,
    },
    /// Attempted to add a second edge between an already-connected pair.
    DuplicateEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// A named vertex was re-declared in a [`crate::GraphBuilder`].
    DuplicateVertexName {
        /// The repeated name.
        name: String,
    },
    /// A [`crate::GraphBuilder`] edge referenced an undeclared vertex name.
    UnknownVertexName {
        /// The missing name.
        name: String,
    },
    /// A parse failure in [`crate::format`].
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidVertex { index, order } => {
                write!(
                    f,
                    "vertex index {index} out of range (graph has {order} vertices)"
                )
            }
            GraphError::InvalidEdge { index, size } => {
                write!(
                    f,
                    "edge index {index} out of range (graph has {size} edges)"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(
                    f,
                    "self-loop on vertex {vertex} is not allowed (simple graphs only)"
                )
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(
                    f,
                    "duplicate edge between vertices {u} and {v} (simple graphs only)"
                )
            }
            GraphError::DuplicateVertexName { name } => {
                write!(f, "vertex name {name:?} declared twice in builder")
            }
            GraphError::UnknownVertexName { name } => {
                write!(f, "edge references undeclared vertex name {name:?}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self-loop"));
        assert!(e.to_string().contains('3'));

        let e = GraphError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 7") && s.contains("bad token"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GraphError::DuplicateEdge { u: 1, v: 2 },
            GraphError::DuplicateEdge { u: 1, v: 2 }
        );
        assert_ne!(
            GraphError::DuplicateEdge { u: 1, v: 2 },
            GraphError::DuplicateEdge { u: 2, v: 1 }
        );
    }
}
