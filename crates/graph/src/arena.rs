//! Compact interned graph storage: CSR arenas and column-oriented stats.
//!
//! The pointer-rich [`Graph`] type is built for construction and for the
//! solvers' random-access patterns: a `String` name, `Vec<Vertex>`,
//! `Vec<Edge>` and a nested `Vec<Vec<(VertexId, EdgeId)>>` adjacency.
//! That layout costs ~28 heap bytes per vertex *and* per edge plus three
//! allocations per graph — far too much for the millions-of-graphs
//! corpora the similarity-skyline engine targets, and every one of those
//! allocations has to be re-parsed at server start.
//!
//! This module provides the compact alternative:
//!
//! * [`LabelPool`] — one flat, database-wide string pool (contiguous
//!   UTF-8 bytes + `u32` span offsets) interning every vertex/edge label
//!   and every graph name exactly once;
//! * [`GraphArena`] — all graphs of a database as CSR-style flat arrays:
//!   `u32` per-graph vertex/edge offsets into global `u32` columns for
//!   vertex labels and edge `(u, v, label)` triples (endpoints are
//!   graph-local dense ids, labels are pool/vocabulary ids);
//! * [`GraphRef`] — a borrowed, copy-free view of one arena graph
//!   implementing the accessor surface the prefilter and the database
//!   fingerprint need, so hot paths read contiguous memory;
//! * [`StatsColumns`] — every graph's [`GraphStats`] summary stored
//!   column-oriented (struct-of-arrays): flat `u32`/`u64` columns plus
//!   CSR runs for the degree sequences and label/edge-class multisets.
//!   Decoding a row reproduces the exact `GraphStats` value
//!   `GraphStats::compute` would have produced, so a loaded database
//!   serves its first query without touching a solver or a hash.
//!
//! The arena layout is exactly what `gss-core::GraphDatabase::save`
//! writes to disk (little-endian, 8-byte-aligned sections), which is
//! what makes the zero-parse load path possible: the file's payload *is*
//! the in-memory representation.
//!
//! ```text
//!              ┌─ LabelPool ─────────────────────────────┐
//!              │ bytes:   "C-N=OH2O…caffeine…aspirin…"   │
//!              │ offsets: [0, 1, 2, 3, …]                │
//!              └─────────────────────────────────────────┘
//!   graph g ──▶ names[g]                 (pool id)
//!              vertex_off[g] .. vertex_off[g+1]  ──▶ vertex_labels[..]
//!              edge_off[g]   .. edge_off[g+1]    ──▶ edge_u/edge_v/edge_labels[..]
//! ```
//!
//! **Byte-parity contract**: [`GraphArena::materialize`] reconstructs a
//! [`Graph`] that is behaviorally identical to the one the arena was
//! built from — same name, same dense ids, same adjacency order — so
//! every downstream answer (skylines, skybands, witnesses, fingerprints)
//! is byte-identical whichever representation a database holds. The
//! pointer-rich path stays available as the parity oracle.

use std::collections::HashMap;

use crate::graph::{EdgeId, Graph, VertexId};
use crate::label::{Label, Vocabulary};
use crate::stats::{GraphStats, Multiset};

/// A stable FNV-1a 64-bit fold over little-endian words — deterministic
/// across platforms, used for the arena's structural self-fingerprints.
#[inline]
fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Errors raised when assembling an arena from untrusted raw columns
/// (the zero-parse load path).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArenaError(pub String);

impl std::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid arena data: {}", self.0)
    }
}

impl std::error::Error for ArenaError {}

fn err(msg: impl Into<String>) -> ArenaError {
    ArenaError(msg.into())
}

/// A flat interned string pool: contiguous UTF-8 bytes plus `u32` span
/// offsets. Entry `i` is `bytes[offsets[i] .. offsets[i + 1]]`.
///
/// The pool is append-only and deduplicating ([`LabelPool::intern`]);
/// lookups by id ([`LabelPool::get`]) are two array reads and never
/// allocate. Entries `0 .. label_count` of a database pool mirror the
/// [`Vocabulary`] in id order, so a vocabulary label id *is* its pool id;
/// graph names follow after.
#[derive(Clone, Debug, Default)]
pub struct LabelPool {
    /// All entries' UTF-8 bytes, concatenated.
    bytes: Vec<u8>,
    /// `n + 1` span offsets into `bytes`, ascending; entry `i` spans
    /// `offsets[i] .. offsets[i + 1]`.
    offsets: Vec<u32>,
    /// Intern index (string → id). Derived from `bytes`/`offsets`; left
    /// empty by the zero-parse load path, rebuilt only if interning
    /// resumes.
    index: HashMap<String, u32>,
}

// Equality is content equality: the derived `index` map may or may not be
// materialized (the zero-parse load path leaves it empty) without changing
// what the pool holds.
impl PartialEq for LabelPool {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes && self.offsets == other.offsets
    }
}

impl Eq for LabelPool {}

impl LabelPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        LabelPool {
            bytes: Vec::new(),
            offsets: vec![0],
            index: HashMap::new(),
        }
    }

    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the pool holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interns `s`, returning its id (existing id when already present).
    pub fn intern(&mut self, s: &str) -> u32 {
        if self.index.is_empty() && !self.is_empty() {
            // Rebuild the lookup index lazily — the zero-parse load path
            // adopts bytes/offsets without paying for it up front.
            for i in 0..self.len() {
                let e = self.get(i as u32).to_owned();
                self.index.insert(e, i as u32);
            }
        }
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = self.len() as u32;
        self.bytes.extend_from_slice(s.as_bytes());
        self.offsets.push(self.bytes.len() as u32);
        self.index.insert(s.to_owned(), id);
        id
    }

    /// The string behind `id`.
    ///
    /// # Panics
    /// Panics for ids the pool never produced.
    // gss-lint: kernel — two array reads on the hot name/label lookup path; no allocation allowed
    #[inline]
    pub fn get(&self, id: u32) -> &str {
        let (s, e) = (
            self.offsets[id as usize] as usize,
            self.offsets[id as usize + 1] as usize,
        );
        // Spans are validated (or produced) as UTF-8 boundaries.
        std::str::from_utf8(&self.bytes[s..e]).expect("pool spans are valid UTF-8")
    }

    /// Total heap bytes held by the pool (string bytes + offsets).
    pub fn heap_bytes(&self) -> usize {
        self.bytes.len() + self.offsets.len() * 4
    }

    /// Borrows the raw columns `(bytes, offsets)` for serialization.
    pub fn raw(&self) -> (&[u8], &[u32]) {
        (&self.bytes, &self.offsets)
    }

    /// Rebuilds a pool from raw columns, validating span structure and
    /// UTF-8 (the zero-parse load path). The intern index is *not* built
    /// here; it materializes lazily on the first [`LabelPool::intern`].
    pub fn from_raw(bytes: Vec<u8>, offsets: Vec<u32>) -> Result<Self, ArenaError> {
        if offsets.is_empty() {
            return Err(err("pool offsets must hold at least the 0 sentinel"));
        }
        if offsets[0] != 0 {
            return Err(err("pool offsets must start at 0"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(err("pool offsets must be ascending"));
        }
        if *offsets.last().expect("non-empty") as usize != bytes.len() {
            return Err(err("pool offsets must end at the byte length"));
        }
        for w in offsets.windows(2) {
            if std::str::from_utf8(&bytes[w[0] as usize..w[1] as usize]).is_err() {
                return Err(err("pool entry is not valid UTF-8"));
            }
        }
        Ok(LabelPool {
            bytes,
            offsets,
            index: HashMap::new(),
        })
    }

    /// Structural fingerprint of the pool content (entries + spans).
    pub fn pool_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for &b in &self.bytes {
            h = fnv_u64(h, u64::from(b));
        }
        for &o in &self.offsets {
            h = fnv_u64(h, u64::from(o));
        }
        // gss-lint: exempt(LabelPool::index) — derived lookup cache over `bytes`/`offsets`; rebuilt lazily and content-free
        h
    }
}

/// All graphs of one database as CSR-style flat arrays.
///
/// Per graph `g`: its name is [`LabelPool`] entry `names[g]`; its
/// vertices are the global rows `vertex_off[g] .. vertex_off[g + 1]` of
/// `vertex_labels`; its edges are the rows `edge_off[g] .. edge_off[g+1]`
/// of the `edge_u`/`edge_v`/`edge_labels` columns, with endpoints stored
/// as graph-local dense [`VertexId`]s. Labels are vocabulary ids, which
/// by construction equal their pool ids.
///
/// The arena is immutable: mutations in `gss-core::GraphDatabase`
/// copy-on-write the touched graph into an owned [`Graph`] slot and
/// leave the arena shared (behind an `Arc`) between MVCC epochs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphArena {
    /// The database-wide string pool: vocabulary labels first (in id
    /// order), then graph names.
    pool: LabelPool,
    /// Pool entries `0 .. label_count` are vocabulary labels.
    label_count: u32,
    /// Per graph: pool id of its name.
    names: Vec<u32>,
    /// `n_graphs + 1` offsets into `vertex_labels`.
    vertex_off: Vec<u32>,
    /// `n_graphs + 1` offsets into the edge columns.
    edge_off: Vec<u32>,
    /// Global vertex-label column (vocabulary ids).
    vertex_labels: Vec<u32>,
    /// Global edge endpoint column (graph-local dense vertex ids).
    edge_u: Vec<u32>,
    /// Global edge endpoint column (graph-local dense vertex ids).
    edge_v: Vec<u32>,
    /// Global edge-label column (vocabulary ids).
    edge_labels: Vec<u32>,
}

impl GraphArena {
    /// Packs pointer-rich graphs into an arena. Every label of every
    /// graph must have been interned in `vocab`.
    ///
    /// # Panics
    /// Panics when a graph references a label `vocab` does not hold —
    /// that breaks the workspace-wide shared-vocabulary invariant.
    pub fn from_graphs<'a>(
        graphs: impl IntoIterator<Item = &'a Graph>,
        vocab: &Vocabulary,
    ) -> Self {
        let mut pool = LabelPool::new();
        for (_, name) in vocab.entries() {
            pool.intern(name);
        }
        let label_count = pool.len() as u32;
        let mut arena = GraphArena {
            pool,
            label_count,
            names: Vec::new(),
            vertex_off: vec![0],
            edge_off: vec![0],
            vertex_labels: Vec::new(),
            edge_u: Vec::new(),
            edge_v: Vec::new(),
            edge_labels: Vec::new(),
        };
        for g in graphs {
            arena.names.push(arena.pool.intern(g.name()));
            for v in g.vertices() {
                let l = g.vertex_label(v).0;
                assert!(l < label_count, "graph label outside the vocabulary");
                arena.vertex_labels.push(l);
            }
            for e in g.edges() {
                let edge = g.edge(e);
                assert!(
                    edge.label.0 < label_count,
                    "edge label outside the vocabulary"
                );
                arena.edge_u.push(edge.u.0);
                arena.edge_v.push(edge.v.0);
                arena.edge_labels.push(edge.label.0);
            }
            arena.vertex_off.push(arena.vertex_labels.len() as u32);
            arena.edge_off.push(arena.edge_u.len() as u32);
        }
        arena
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the arena holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Total vertices across all graphs.
    pub fn total_vertices(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Total edges across all graphs.
    pub fn total_edges(&self) -> usize {
        self.edge_u.len()
    }

    /// The shared string pool.
    pub fn pool(&self) -> &LabelPool {
        &self.pool
    }

    /// How many pool entries are vocabulary labels (prefix `0 .. count`).
    pub fn label_count(&self) -> u32 {
        self.label_count
    }

    /// Rebuilds the [`Vocabulary`] the arena was packed against: pool
    /// entries `0 .. label_count` interned in id order.
    pub fn rebuild_vocab(&self) -> Vocabulary {
        let mut vocab = Vocabulary::new();
        for id in 0..self.label_count {
            vocab.intern(self.pool.get(id));
        }
        vocab
    }

    /// A borrowed view of graph `idx`.
    ///
    /// # Panics
    /// Panics for out-of-range indices.
    #[inline]
    pub fn graph(&self, idx: usize) -> GraphRef<'_> {
        assert!(idx < self.len(), "arena graph index out of range");
        GraphRef { arena: self, idx }
    }

    /// Reconstructs the pointer-rich [`Graph`] behind `idx`, behaviorally
    /// identical to the graph the arena was packed from: same name, same
    /// dense vertex/edge ids, same adjacency order (adjacency rows are
    /// rebuilt in edge-insertion order, exactly as the original
    /// construction produced them).
    pub fn materialize(&self, idx: usize) -> Graph {
        let r = self.graph(idx);
        let mut g = Graph::with_capacity(r.name(), r.order(), r.size());
        for v in r.vertices() {
            g.add_vertex(r.vertex_label(v));
        }
        for e in r.edges() {
            let (u, v) = r.edge_endpoints(e);
            g.add_edge(u, v, r.edge_label(e))
                .expect("arena holds only valid simple graphs");
        }
        g
    }

    /// Total heap bytes held by the arena (pool included).
    pub fn heap_bytes(&self) -> usize {
        self.pool.heap_bytes()
            + (self.names.len()
                + self.vertex_off.len()
                + self.edge_off.len()
                + self.vertex_labels.len()
                + self.edge_u.len()
                + self.edge_v.len()
                + self.edge_labels.len())
                * 4
    }

    /// Borrows every raw column for serialization, in the fixed order
    /// `(names, vertex_off, edge_off, vertex_labels, edge_u, edge_v,
    /// edge_labels)`.
    #[allow(clippy::type_complexity)]
    pub fn raw(&self) -> (&[u32], &[u32], &[u32], &[u32], &[u32], &[u32], &[u32]) {
        (
            &self.names,
            &self.vertex_off,
            &self.edge_off,
            &self.vertex_labels,
            &self.edge_u,
            &self.edge_v,
            &self.edge_labels,
        )
    }

    /// Rebuilds an arena from raw columns, validating every structural
    /// invariant (offset monotonicity, id ranges, simple-graph shape is
    /// **not** re-checked here — materialization enforces it).
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw(
        pool: LabelPool,
        label_count: u32,
        names: Vec<u32>,
        vertex_off: Vec<u32>,
        edge_off: Vec<u32>,
        vertex_labels: Vec<u32>,
        edge_u: Vec<u32>,
        edge_v: Vec<u32>,
        edge_labels: Vec<u32>,
    ) -> Result<Self, ArenaError> {
        let n = names.len();
        if label_count as usize > pool.len() {
            return Err(err("label_count exceeds the pool"));
        }
        if vertex_off.len() != n + 1 || edge_off.len() != n + 1 {
            return Err(err("offset columns must hold n_graphs + 1 entries"));
        }
        if vertex_off[0] != 0 || edge_off[0] != 0 {
            return Err(err("offset columns must start at 0"));
        }
        if vertex_off.windows(2).any(|w| w[0] > w[1]) || edge_off.windows(2).any(|w| w[0] > w[1]) {
            return Err(err("offset columns must be ascending"));
        }
        if *vertex_off.last().expect("n+1 entries") as usize != vertex_labels.len() {
            return Err(err("vertex offsets must end at the vertex column length"));
        }
        let total_edges = *edge_off.last().expect("n+1 entries") as usize;
        if total_edges != edge_u.len()
            || total_edges != edge_v.len()
            || total_edges != edge_labels.len()
        {
            return Err(err("edge offsets must end at the edge column lengths"));
        }
        if names.iter().any(|&id| id as usize >= pool.len()) {
            return Err(err("graph name id outside the pool"));
        }
        if vertex_labels.iter().any(|&l| l >= label_count)
            || edge_labels.iter().any(|&l| l >= label_count)
        {
            return Err(err("label id outside the vocabulary prefix"));
        }
        for g in 0..n {
            let order = vertex_off[g + 1] - vertex_off[g];
            let (es, ee) = (edge_off[g] as usize, edge_off[g + 1] as usize);
            if edge_u[es..ee].iter().any(|&u| u >= order)
                || edge_v[es..ee].iter().any(|&v| v >= order)
            {
                return Err(err("edge endpoint outside its graph's vertex range"));
            }
        }
        Ok(GraphArena {
            pool,
            label_count,
            names,
            vertex_off,
            edge_off,
            vertex_labels,
            edge_u,
            edge_v,
            edge_labels,
        })
    }

    /// Structural fingerprint of the whole arena — every content column
    /// folded into one FNV-1a digest. Two arenas packed from the same
    /// graphs and vocabulary always agree; any structural difference
    /// disagrees. (This is the arena's *self*-identity; the database-level
    /// `GraphDatabase::fingerprint` in `gss-core` hashes label *strings*
    /// and stays representation-independent.)
    pub fn content_fingerprint(&self) -> u64 {
        let mut h = self.pool.pool_fingerprint();
        h = fnv_u64(h, u64::from(self.label_count));
        for col in [
            &self.names,
            &self.vertex_off,
            &self.edge_off,
            &self.vertex_labels,
            &self.edge_u,
            &self.edge_v,
            &self.edge_labels,
        ] {
            h = fnv_u64(h, col.len() as u64);
            for &v in col.iter() {
                h = fnv_u64(h, u64::from(v));
            }
        }
        h
    }
}

/// A borrowed, copy-free view of one [`GraphArena`] graph.
///
/// Implements the accessor surface the prefilter, the database
/// fingerprint and [`GraphArena::materialize`] need. All accessors are
/// one or two contiguous array reads; none allocate. Neighborhood
/// iteration is not offered — adjacency is a materialization-time
/// artifact, and every consumer that walks neighborhoods (the solvers,
/// WL refinement, connectivity) runs on the materialized [`Graph`] or on
/// the precomputed [`StatsColumns`].
#[derive(Copy, Clone, Debug)]
pub struct GraphRef<'a> {
    arena: &'a GraphArena,
    idx: usize,
}

impl<'a> GraphRef<'a> {
    /// The graph's display name.
    // gss-lint: kernel — pool lookup on the scan path; no allocation allowed
    #[inline]
    pub fn name(&self) -> &'a str {
        self.arena.pool.get(self.arena.names[self.idx])
    }

    /// Number of vertices, `|V(g)|`.
    // gss-lint: kernel — two offset reads; no allocation allowed
    #[inline]
    pub fn order(&self) -> usize {
        (self.arena.vertex_off[self.idx + 1] - self.arena.vertex_off[self.idx]) as usize
    }

    /// Number of edges — the paper's `|g|`.
    // gss-lint: kernel — two offset reads; no allocation allowed
    #[inline]
    pub fn size(&self) -> usize {
        (self.arena.edge_off[self.idx + 1] - self.arena.edge_off[self.idx]) as usize
    }

    /// The label of vertex `v` (graph-local dense id).
    // gss-lint: kernel — one contiguous column read per candidate vertex; no allocation allowed
    #[inline]
    pub fn vertex_label(&self, v: VertexId) -> Label {
        Label(self.arena.vertex_labels[self.arena.vertex_off[self.idx] as usize + v.index()])
    }

    /// The label of edge `e` (graph-local dense id).
    // gss-lint: kernel — one contiguous column read per candidate edge; no allocation allowed
    #[inline]
    pub fn edge_label(&self, e: EdgeId) -> Label {
        Label(self.arena.edge_labels[self.arena.edge_off[self.idx] as usize + e.index()])
    }

    /// The endpoints of edge `e`, in insertion order (graph-local ids).
    // gss-lint: kernel — two contiguous column reads per candidate edge; no allocation allowed
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let row = self.arena.edge_off[self.idx] as usize + e.index();
        (
            VertexId(self.arena.edge_u[row]),
            VertexId(self.arena.edge_v[row]),
        )
    }

    /// Iterates all vertex ids in order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + 'a {
        (0..self.order() as u32).map(VertexId)
    }

    /// Iterates all edge ids in order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + 'a {
        (0..self.size() as u32).map(EdgeId)
    }

    /// True when `{u, v}` is an edge — an `O(size)` column scan (the
    /// arena keeps no adjacency; solvers use the materialized graph).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (s, e) = (
            self.arena.edge_off[self.idx] as usize,
            self.arena.edge_off[self.idx + 1] as usize,
        );
        (s..e).any(|row| {
            let (a, b) = (self.arena.edge_u[row], self.arena.edge_v[row]);
            (a == u.0 && b == v.0) || (a == v.0 && b == u.0)
        })
    }
}

/// Column-oriented (struct-of-arrays) storage of every graph's
/// [`GraphStats`] summary.
///
/// Fixed-width facts are flat columns (`orders`, `sizes`,
/// `wl_fingerprints`, `connected`); variable-width facts are CSR runs:
/// the sorted degree sequence, and the three multisets as sorted
/// `(key, count)` runs (sorted by key, which is exactly the `BTreeMap`
/// iteration order of [`Multiset`], so encode → decode is lossless).
///
/// [`StatsColumns::decode`] reproduces the exact value
/// [`GraphStats::compute`] produces for the corresponding graph — the
/// WL fingerprint and connectivity flag are *stored*, not recomputed —
/// which is what lets a zero-parse load serve queries without running
/// any summary work at start-up.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsColumns {
    /// `|V|` per graph.
    orders: Vec<u32>,
    /// `|E|` per graph.
    sizes: Vec<u32>,
    /// 1-WL fingerprints ([`GraphStats::WL_ROUNDS`] rounds) per graph.
    wl_fingerprints: Vec<u64>,
    /// Connectivity flags per graph (0/1).
    connected: Vec<u8>,
    /// `n + 1` offsets into `degree_vals`.
    degree_off: Vec<u32>,
    /// Concatenated sorted (ascending) degree sequences.
    degree_vals: Vec<u32>,
    /// `n + 1` offsets into the vertex-label runs.
    vlabel_off: Vec<u32>,
    /// Vertex-label run keys (vocabulary ids, ascending per graph).
    vlabel_keys: Vec<u32>,
    /// Vertex-label run multiplicities.
    vlabel_counts: Vec<u32>,
    /// `n + 1` offsets into the edge-label runs.
    elabel_off: Vec<u32>,
    /// Edge-label run keys (vocabulary ids, ascending per graph).
    elabel_keys: Vec<u32>,
    /// Edge-label run multiplicities.
    elabel_counts: Vec<u32>,
    /// `n + 1` offsets into the edge-class runs.
    eclass_off: Vec<u32>,
    /// Edge-class run: smaller endpoint label.
    eclass_lo: Vec<u32>,
    /// Edge-class run: larger endpoint label.
    eclass_hi: Vec<u32>,
    /// Edge-class run: edge label.
    eclass_label: Vec<u32>,
    /// Edge-class run multiplicities.
    eclass_counts: Vec<u32>,
}

impl StatsColumns {
    /// Packs per-graph summaries into columns, in graph order.
    pub fn from_stats<'a>(stats: impl IntoIterator<Item = &'a GraphStats>) -> Self {
        let mut c = StatsColumns {
            degree_off: vec![0],
            vlabel_off: vec![0],
            elabel_off: vec![0],
            eclass_off: vec![0],
            ..StatsColumns::default()
        };
        for s in stats {
            c.orders.push(s.order as u32);
            c.sizes.push(s.size as u32);
            c.wl_fingerprints.push(s.wl_fingerprint);
            c.connected.push(u8::from(s.connected));
            c.degree_vals.extend(s.degrees.iter().map(|&d| d as u32));
            c.degree_off.push(c.degree_vals.len() as u32);
            for (k, n) in s.vertex_labels.iter() {
                c.vlabel_keys.push(k.0);
                c.vlabel_counts.push(n);
            }
            c.vlabel_off.push(c.vlabel_keys.len() as u32);
            for (k, n) in s.edge_labels.iter() {
                c.elabel_keys.push(k.0);
                c.elabel_counts.push(n);
            }
            c.elabel_off.push(c.elabel_keys.len() as u32);
            for (&(lo, hi, lab), n) in s.edge_classes.iter() {
                c.eclass_lo.push(lo.0);
                c.eclass_hi.push(hi.0);
                c.eclass_label.push(lab.0);
                c.eclass_counts.push(n);
            }
            c.eclass_off.push(c.eclass_lo.len() as u32);
        }
        c
    }

    /// Number of graphs summarized.
    pub fn len(&self) -> usize {
        self.orders.len()
    }

    /// True when no graphs are summarized.
    pub fn is_empty(&self) -> bool {
        self.orders.is_empty()
    }

    /// Reconstructs graph `i`'s exact [`GraphStats`] value.
    ///
    /// # Panics
    /// Panics for out-of-range indices.
    pub fn decode(&self, i: usize) -> GraphStats {
        let run = |off: &[u32]| (off[i] as usize, off[i + 1] as usize);
        let mut vertex_labels = Multiset::new();
        let (s, e) = run(&self.vlabel_off);
        for r in s..e {
            vertex_labels.insert_n(Label(self.vlabel_keys[r]), self.vlabel_counts[r]);
        }
        let mut edge_labels = Multiset::new();
        let (s, e) = run(&self.elabel_off);
        for r in s..e {
            edge_labels.insert_n(Label(self.elabel_keys[r]), self.elabel_counts[r]);
        }
        let mut edge_classes = Multiset::new();
        let (s, e) = run(&self.eclass_off);
        for r in s..e {
            edge_classes.insert_n(
                (
                    Label(self.eclass_lo[r]),
                    Label(self.eclass_hi[r]),
                    Label(self.eclass_label[r]),
                ),
                self.eclass_counts[r],
            );
        }
        let (s, e) = run(&self.degree_off);
        GraphStats {
            vertex_labels,
            edge_labels,
            edge_classes,
            degrees: self.degree_vals[s..e].iter().map(|&d| d as usize).collect(),
            order: self.orders[i] as usize,
            size: self.sizes[i] as usize,
            wl_fingerprint: self.wl_fingerprints[i],
            connected: self.connected[i] != 0,
        }
    }

    /// Total heap bytes held by the columns.
    pub fn heap_bytes(&self) -> usize {
        self.connected.len()
            + self.wl_fingerprints.len() * 8
            + (self.orders.len()
                + self.sizes.len()
                + self.degree_off.len()
                + self.degree_vals.len()
                + self.vlabel_off.len()
                + self.vlabel_keys.len()
                + self.vlabel_counts.len()
                + self.elabel_off.len()
                + self.elabel_keys.len()
                + self.elabel_counts.len()
                + self.eclass_off.len()
                + self.eclass_lo.len()
                + self.eclass_hi.len()
                + self.eclass_label.len()
                + self.eclass_counts.len())
                * 4
    }

    /// Borrows every raw column for serialization: the fixed-width
    /// columns, then each CSR family in `(offsets, values…)` order.
    #[allow(clippy::type_complexity)]
    pub fn raw(
        &self,
    ) -> (
        (&[u32], &[u32], &[u64], &[u8]),
        (&[u32], &[u32]),
        (&[u32], &[u32], &[u32]),
        (&[u32], &[u32], &[u32]),
        (&[u32], &[u32], &[u32], &[u32], &[u32]),
    ) {
        (
            (
                &self.orders,
                &self.sizes,
                &self.wl_fingerprints,
                &self.connected,
            ),
            (&self.degree_off, &self.degree_vals),
            (&self.vlabel_off, &self.vlabel_keys, &self.vlabel_counts),
            (&self.elabel_off, &self.elabel_keys, &self.elabel_counts),
            (
                &self.eclass_off,
                &self.eclass_lo,
                &self.eclass_hi,
                &self.eclass_label,
                &self.eclass_counts,
            ),
        )
    }

    /// Rebuilds columns from raw parts, validating alignment and CSR
    /// structure (the zero-parse load path).
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    pub fn from_raw(
        fixed: (Vec<u32>, Vec<u32>, Vec<u64>, Vec<u8>),
        degrees: (Vec<u32>, Vec<u32>),
        vlabels: (Vec<u32>, Vec<u32>, Vec<u32>),
        elabels: (Vec<u32>, Vec<u32>, Vec<u32>),
        eclasses: (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>),
    ) -> Result<Self, ArenaError> {
        let (orders, sizes, wl_fingerprints, connected) = fixed;
        let (degree_off, degree_vals) = degrees;
        let (vlabel_off, vlabel_keys, vlabel_counts) = vlabels;
        let (elabel_off, elabel_keys, elabel_counts) = elabels;
        let (eclass_off, eclass_lo, eclass_hi, eclass_label, eclass_counts) = eclasses;
        let n = orders.len();
        if sizes.len() != n || wl_fingerprints.len() != n || connected.len() != n {
            return Err(err("stats fixed columns must align"));
        }
        let csr = |off: &[u32], vals: usize, what: &str| -> Result<(), ArenaError> {
            if off.len() != n + 1 {
                return Err(err(format!("{what} offsets must hold n + 1 entries")));
            }
            if off[0] != 0 || off.windows(2).any(|w| w[0] > w[1]) {
                return Err(err(format!("{what} offsets must ascend from 0")));
            }
            if *off.last().expect("n+1 entries") as usize != vals {
                return Err(err(format!("{what} offsets must end at the value length")));
            }
            Ok(())
        };
        csr(&degree_off, degree_vals.len(), "degree")?;
        csr(&vlabel_off, vlabel_keys.len(), "vertex-label")?;
        csr(&elabel_off, elabel_keys.len(), "edge-label")?;
        csr(&eclass_off, eclass_lo.len(), "edge-class")?;
        if vlabel_counts.len() != vlabel_keys.len()
            || elabel_counts.len() != elabel_keys.len()
            || eclass_hi.len() != eclass_lo.len()
            || eclass_label.len() != eclass_lo.len()
            || eclass_counts.len() != eclass_lo.len()
        {
            return Err(err("stats run columns must align"));
        }
        Ok(StatsColumns {
            orders,
            sizes,
            wl_fingerprints,
            connected,
            degree_off,
            degree_vals,
            vlabel_off,
            vlabel_keys,
            vlabel_counts,
            elabel_off,
            elabel_keys,
            elabel_counts,
            eclass_off,
            eclass_lo,
            eclass_hi,
            eclass_label,
            eclass_counts,
        })
    }

    /// Structural fingerprint of every stats column.
    pub fn columns_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for col in [
            &self.orders,
            &self.sizes,
            &self.degree_off,
            &self.degree_vals,
            &self.vlabel_off,
            &self.vlabel_keys,
            &self.vlabel_counts,
            &self.elabel_off,
            &self.elabel_keys,
            &self.elabel_counts,
            &self.eclass_off,
            &self.eclass_lo,
            &self.eclass_hi,
            &self.eclass_label,
            &self.eclass_counts,
        ] {
            h = fnv_u64(h, col.len() as u64);
            for &v in col.iter() {
                h = fnv_u64(h, u64::from(v));
            }
        }
        for &v in &self.wl_fingerprints {
            h = fnv_u64(h, v);
        }
        for &v in &self.connected {
            h = fnv_u64(h, u64::from(v));
        }
        h
    }
}

/// Estimated resident heap bytes of one pointer-rich [`Graph`] with the
/// given shape: the struct itself plus its name, vertex, edge and
/// adjacency allocations. Used by the memory observability surface to
/// compare representations on equal terms (allocator slack excluded on
/// both sides).
pub fn pointer_rich_estimate(order: usize, size: usize, name_len: usize) -> usize {
    std::mem::size_of::<Graph>()
        + name_len
        + order * std::mem::size_of::<crate::graph::Vertex>()
        + size * std::mem::size_of::<crate::graph::Edge>()
        + order * std::mem::size_of::<Vec<(VertexId, EdgeId)>>()
        + 2 * size * std::mem::size_of::<(VertexId, EdgeId)>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::rng::Rng;

    fn sample() -> (Vocabulary, Vec<Graph>) {
        let mut v = Vocabulary::new();
        let g1 = GraphBuilder::new("first", &mut v)
            .vertex("a", "C")
            .vertex("b", "N")
            .vertex("c", "C")
            .edge("a", "b", "-")
            .edge("b", "c", "=")
            .build()
            .unwrap();
        let g2 = GraphBuilder::new("second", &mut v)
            .vertices(&["x", "y"], "O")
            .edge("x", "y", "-")
            .build()
            .unwrap();
        let g3 = GraphBuilder::new("empty", &mut v).build().unwrap();
        (v, vec![g1, g2, g3])
    }

    fn random_graph(rng: &mut Rng, name: &str, vocab: &mut Vocabulary) -> Graph {
        let labels = ["C", "N", "O", "H"];
        let bonds = ["-", "="];
        let n = 1 + rng.gen_index(8);
        let mut g = Graph::new(name);
        for _ in 0..n {
            g.add_vertex(vocab.intern(labels[rng.gen_index(labels.len())]));
        }
        for _ in 0..2 * n {
            let u = VertexId::new(rng.gen_index(n));
            let v = VertexId::new(rng.gen_index(n));
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v, vocab.intern(bonds[rng.gen_index(bonds.len())]))
                    .unwrap();
            }
        }
        g
    }

    #[test]
    fn pool_interns_and_deduplicates() {
        let mut p = LabelPool::new();
        let a = p.intern("C");
        let b = p.intern("-");
        assert_eq!(p.intern("C"), a);
        assert_eq!(p.get(a), "C");
        assert_eq!(p.get(b), "-");
        assert_eq!(p.len(), 2);
        let empty = p.intern("");
        assert_eq!(p.get(empty), "");
        assert_eq!(p.len(), 3);

        // Raw round trip, with the index rebuilt lazily.
        let (bytes, offsets) = p.raw();
        let mut q = LabelPool::from_raw(bytes.to_vec(), offsets.to_vec()).unwrap();
        assert_eq!(q.get(a), "C");
        assert_eq!(q.intern("C"), a, "lazy index rebuild finds old entries");
        assert_eq!(q.intern("new"), 3);
        assert_eq!(p.pool_fingerprint(), {
            let r = LabelPool::from_raw(bytes.to_vec(), offsets.to_vec()).unwrap();
            r.pool_fingerprint()
        });
    }

    #[test]
    fn pool_rejects_malformed_raw_columns() {
        assert!(LabelPool::from_raw(vec![], vec![]).is_err(), "no sentinel");
        assert!(
            LabelPool::from_raw(vec![b'a'], vec![1, 1]).is_err(),
            "offset 0"
        );
        assert!(
            LabelPool::from_raw(vec![b'a', b'b'], vec![0, 2, 1]).is_err(),
            "descending"
        );
        assert!(
            LabelPool::from_raw(vec![b'a'], vec![0, 2]).is_err(),
            "past end"
        );
        assert!(
            LabelPool::from_raw(vec![0xff], vec![0, 1]).is_err(),
            "bad UTF-8"
        );
    }

    #[test]
    fn arena_views_match_source_graphs() {
        let (vocab, graphs) = sample();
        let arena = GraphArena::from_graphs(&graphs, &vocab);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.total_vertices(), 5);
        assert_eq!(arena.total_edges(), 3);
        for (i, g) in graphs.iter().enumerate() {
            let r = arena.graph(i);
            assert_eq!(r.name(), g.name());
            assert_eq!(r.order(), g.order());
            assert_eq!(r.size(), g.size());
            for v in g.vertices() {
                assert_eq!(r.vertex_label(v), g.vertex_label(v));
            }
            for e in g.edges() {
                let edge = g.edge(e);
                assert_eq!(r.edge_endpoints(e), (edge.u, edge.v));
                assert_eq!(r.edge_label(e), edge.label);
            }
            for u in g.vertices() {
                for v in g.vertices() {
                    assert_eq!(r.has_edge(u, v), g.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn materialize_reproduces_structure_and_adjacency_order() {
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(0xA7EA);
        for case in 0..30 {
            let graphs: Vec<Graph> = (0..4)
                .map(|i| random_graph(&mut rng, &format!("g{case}x{i}"), &mut vocab))
                .collect();
            let arena = GraphArena::from_graphs(&graphs, &vocab);
            for (i, g) in graphs.iter().enumerate() {
                let m = arena.materialize(i);
                assert_eq!(m.name(), g.name());
                assert_eq!(m.order(), g.order());
                assert_eq!(m.size(), g.size());
                for v in g.vertices() {
                    assert_eq!(m.vertex_label(v), g.vertex_label(v));
                    // Adjacency rows must match pairwise *in order* — the
                    // behavioral-identity contract.
                    let a: Vec<_> = m.neighbors(v).collect();
                    let b: Vec<_> = g.neighbors(v).collect();
                    assert_eq!(a, b, "case {case} graph {i} vertex {v:?}");
                }
                for e in g.edges() {
                    assert_eq!(m.edge(e), g.edge(e));
                }
                assert_eq!(
                    GraphStats::compute(&m),
                    GraphStats::compute(g),
                    "summaries agree"
                );
            }
        }
    }

    #[test]
    fn arena_raw_round_trip_and_validation() {
        let (vocab, graphs) = sample();
        let arena = GraphArena::from_graphs(&graphs, &vocab);
        let (names, voff, eoff, vl, eu, ev, el) = arena.raw();
        let (pb, po) = arena.pool().raw();
        let rebuilt = GraphArena::from_raw(
            LabelPool::from_raw(pb.to_vec(), po.to_vec()).unwrap(),
            arena.label_count(),
            names.to_vec(),
            voff.to_vec(),
            eoff.to_vec(),
            vl.to_vec(),
            eu.to_vec(),
            ev.to_vec(),
            el.to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.content_fingerprint(), arena.content_fingerprint());
        assert_eq!(rebuilt, arena);

        // Each invariant violation is rejected.
        let pool = || LabelPool::from_raw(pb.to_vec(), po.to_vec()).unwrap();
        let bad = GraphArena::from_raw(
            pool(),
            arena.label_count(),
            names.to_vec(),
            voff[..voff.len() - 1].to_vec(),
            eoff.to_vec(),
            vl.to_vec(),
            eu.to_vec(),
            ev.to_vec(),
            el.to_vec(),
        );
        assert!(bad.is_err(), "short offsets");
        let mut eu2 = eu.to_vec();
        eu2[0] = 99;
        assert!(
            GraphArena::from_raw(
                pool(),
                arena.label_count(),
                names.to_vec(),
                voff.to_vec(),
                eoff.to_vec(),
                vl.to_vec(),
                eu2,
                ev.to_vec(),
                el.to_vec(),
            )
            .is_err(),
            "endpoint out of range"
        );
        let mut vl2 = vl.to_vec();
        vl2[0] = arena.label_count();
        assert!(
            GraphArena::from_raw(
                pool(),
                arena.label_count(),
                names.to_vec(),
                voff.to_vec(),
                eoff.to_vec(),
                vl2,
                eu.to_vec(),
                ev.to_vec(),
                el.to_vec(),
            )
            .is_err(),
            "label outside vocabulary"
        );
    }

    #[test]
    fn rebuild_vocab_reproduces_interning() {
        let (vocab, graphs) = sample();
        let arena = GraphArena::from_graphs(&graphs, &vocab);
        let rebuilt = arena.rebuild_vocab();
        assert_eq!(rebuilt.len(), vocab.len());
        for (l, name) in vocab.entries() {
            assert_eq!(rebuilt.name(l), Some(name));
        }
    }

    #[test]
    fn stats_columns_decode_exactly() {
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(0x57A7);
        let graphs: Vec<Graph> = (0..25)
            .map(|i| random_graph(&mut rng, &format!("g{i}"), &mut vocab))
            .collect();
        let stats: Vec<GraphStats> = graphs.iter().map(GraphStats::compute).collect();
        let cols = StatsColumns::from_stats(&stats);
        assert_eq!(cols.len(), graphs.len());
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(&cols.decode(i), s, "graph {i} decodes to the exact value");
        }

        // Raw round trip preserves content and fingerprint.
        let (fixed, deg, vl, el, ec) = cols.raw();
        let rebuilt = StatsColumns::from_raw(
            (
                fixed.0.to_vec(),
                fixed.1.to_vec(),
                fixed.2.to_vec(),
                fixed.3.to_vec(),
            ),
            (deg.0.to_vec(), deg.1.to_vec()),
            (vl.0.to_vec(), vl.1.to_vec(), vl.2.to_vec()),
            (el.0.to_vec(), el.1.to_vec(), el.2.to_vec()),
            (
                ec.0.to_vec(),
                ec.1.to_vec(),
                ec.2.to_vec(),
                ec.3.to_vec(),
                ec.4.to_vec(),
            ),
        )
        .unwrap();
        assert_eq!(rebuilt.columns_fingerprint(), cols.columns_fingerprint());
        assert_eq!(rebuilt, cols);

        // Misaligned raw columns are rejected.
        assert!(
            StatsColumns::from_raw(
                (fixed.0.to_vec(), vec![], fixed.2.to_vec(), fixed.3.to_vec()),
                (deg.0.to_vec(), deg.1.to_vec()),
                (vl.0.to_vec(), vl.1.to_vec(), vl.2.to_vec()),
                (el.0.to_vec(), el.1.to_vec(), el.2.to_vec()),
                (
                    ec.0.to_vec(),
                    ec.1.to_vec(),
                    ec.2.to_vec(),
                    ec.3.to_vec(),
                    ec.4.to_vec(),
                ),
            )
            .is_err(),
            "misaligned sizes column"
        );
    }

    #[test]
    fn compaction_beats_pointer_rich_memory() {
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(0xBEEF);
        let graphs: Vec<Graph> = (0..50)
            .map(|i| random_graph(&mut rng, &format!("mol{i:03}"), &mut vocab))
            .collect();
        let arena = GraphArena::from_graphs(&graphs, &vocab);
        let pointer_rich: usize = graphs
            .iter()
            .map(|g| crate::arena::pointer_rich_estimate(g.order(), g.size(), g.name().len()))
            .sum();
        assert!(
            arena.heap_bytes() * 10 < pointer_rich * 6,
            "arena {} must be ≤ 60% of pointer-rich {}",
            arena.heap_bytes(),
            pointer_rich
        );
    }
}
