//! Property-based tests for the graph substrate.

use gss_graph::algo::{
    bfs_distances, bfs_order, connected_components, degree_sequence, dfs_order, is_connected,
    largest_connected_edge_component,
};
use gss_graph::{Graph, Label, Rng, VertexId};
use proptest::prelude::*;

/// Deterministic random graph (possibly disconnected) from a seed.
fn random_graph(seed: u64, n: usize, m: usize) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = Graph::new("prop");
    for _ in 0..n {
        g.add_vertex(Label(rng.gen_index(4) as u32));
    }
    let mut added = 0;
    let mut guard = 0;
    while added < m && guard < 20 * m + 50 {
        guard += 1;
        let u = VertexId::new(rng.gen_index(n));
        let v = VertexId::new(rng.gen_index(n));
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v, Label(10 + rng.gen_index(2) as u32))
                .unwrap();
            added += 1;
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn handshake_lemma(seed in any::<u64>(), n in 1usize..15, m in 0usize..20) {
        let g = random_graph(seed, n, m);
        prop_assert_eq!(g.degree_sum(), 2 * g.size());
        let ds = degree_sequence(&g);
        prop_assert_eq!(ds.iter().sum::<usize>(), 2 * g.size());
        // Degree sequence is non-increasing.
        for w in ds.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn components_partition_vertices(seed in any::<u64>(), n in 1usize..15, m in 0usize..20) {
        let g = random_graph(seed, n, m);
        let comps = connected_components(&g);
        let total: usize = comps.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.order());
        let mut all: Vec<VertexId> = comps.iter().flatten().copied().collect();
        all.sort();
        all.dedup();
        prop_assert_eq!(all.len(), g.order(), "no vertex in two components");
        prop_assert_eq!(comps.len() == 1, is_connected(&g));
        // Endpoints of every edge share a component.
        for e in g.edges() {
            let edge = g.edge(e);
            let cu = comps.iter().position(|c| c.contains(&edge.u));
            let cv = comps.iter().position(|c| c.contains(&edge.v));
            prop_assert_eq!(cu, cv);
        }
    }

    #[test]
    fn traversals_cover_exactly_the_component(seed in any::<u64>(), n in 1usize..12, m in 0usize..16) {
        let g = random_graph(seed, n, m);
        let comps = connected_components(&g);
        let start = VertexId::new(0);
        let comp0 = comps.iter().find(|c| c.contains(&start)).expect("vertex 0 exists");
        let mut bfs = bfs_order(&g, start);
        let mut dfs = dfs_order(&g, start);
        bfs.sort();
        dfs.sort();
        prop_assert_eq!(&bfs, comp0);
        prop_assert_eq!(&dfs, comp0);
    }

    #[test]
    fn bfs_distance_is_a_shortest_path_metric(seed in any::<u64>(), n in 2usize..10, m in 1usize..14) {
        let g = random_graph(seed, n, m);
        let d0 = bfs_distances(&g, VertexId::new(0));
        prop_assert_eq!(d0[0], Some(0));
        // Distances never jump by more than 1 across an edge.
        for e in g.edges() {
            let edge = g.edge(e);
            match (d0[edge.u.index()], d0[edge.v.index()]) {
                (Some(a), Some(b)) => {
                    prop_assert!(a.abs_diff(b) <= 1, "edge endpoints differ by ≤ 1 hop");
                }
                (None, None) => {}
                _ => prop_assert!(false, "one endpoint reachable, the other not"),
            }
        }
    }

    #[test]
    fn full_edge_set_component_matches_components(seed in any::<u64>(), n in 1usize..12, m in 0usize..16) {
        let g = random_graph(seed, n, m);
        let all: Vec<_> = g.edges().collect();
        let largest = largest_connected_edge_component(&g, &all);
        // Compare against component-wise edge counts.
        let comps = connected_components(&g);
        let expected = comps
            .iter()
            .map(|c| {
                g.edges()
                    .filter(|&e| c.contains(&g.edge(e).u))
                    .count()
            })
            .max()
            .unwrap_or(0);
        prop_assert_eq!(largest, expected);
    }

    #[test]
    fn without_edges_then_subgraph_roundtrip(seed in any::<u64>(), n in 2usize..10, m in 1usize..12) {
        let g = random_graph(seed, n, m);
        if g.size() == 0 {
            return Ok(());
        }
        let victim = gss_graph::EdgeId::new(0);
        let removed = g.without_edges(&[victim]);
        prop_assert_eq!(removed.size(), g.size() - 1);
        prop_assert_eq!(removed.order(), g.order());
        let edge = g.edge(victim);
        prop_assert!(!removed.has_edge(edge.u, edge.v) || g.edge_between(edge.u, edge.v).is_none());
        // Keeping every edge reproduces the same structure.
        let all: Vec<_> = g.edges().collect();
        let kept = g.edge_subgraph(&all);
        prop_assert_eq!(kept.size(), g.size());
        prop_assert_eq!(kept.order(), g.order());
    }
}
