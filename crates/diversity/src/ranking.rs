//! Dense descending ranking with ties.
//!
//! Step 1 of the paper's refinement (Section VII) ranks candidate subsets
//! per dimension "in decreasing way according to their diversity": rank 1 is
//! the most diverse, tied values share a rank, and ranks are *dense* (the
//! rank after a tie group is the next integer — exactly how Table V ranks
//! its tied candidates, e.g. two candidates at rank 3 followed by rank 4).

/// Assigns dense, descending ranks (1 = largest value). Values closer than
/// `epsilon` are treated as tied, guarding against floating-point noise in
/// distances computed along different code paths.
pub fn dense_ranks_desc(values: &[f64], epsilon: f64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
    let mut ranks = vec![0usize; values.len()];
    let mut rank = 0usize;
    let mut prev: Option<f64> = None;
    for &i in &order {
        match prev {
            Some(p) if (p - values[i]).abs() <= epsilon => {}
            _ => rank += 1,
        }
        ranks[i] = rank;
        prev = Some(values[i]);
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranking() {
        // Values 0.86, 0.83, 0.87, 0.80, 0.83, 0.75 — the paper's v1 column.
        let v = [0.86, 0.83, 0.87, 0.80, 0.83, 0.75];
        let r = dense_ranks_desc(&v, 1e-9);
        assert_eq!(r, vec![2, 3, 1, 4, 3, 5]); // Table V-(a) column r1
    }

    #[test]
    fn paper_v2_column() {
        let v = [0.67, 0.50, 0.60, 0.62, 0.70, 0.50];
        let r = dense_ranks_desc(&v, 1e-9);
        assert_eq!(r, vec![2, 5, 4, 3, 1, 5]); // Table V-(a) column r2
    }

    #[test]
    fn paper_v3_column() {
        let v = [0.80, 0.60, 0.67, 0.73, 0.77, 0.61];
        let r = dense_ranks_desc(&v, 1e-9);
        assert_eq!(r, vec![1, 6, 4, 3, 2, 5]); // Table V-(a) column r3
    }

    #[test]
    fn all_equal_values_share_rank_one() {
        let r = dense_ranks_desc(&[3.0, 3.0, 3.0], 1e-9);
        assert_eq!(r, vec![1, 1, 1]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(dense_ranks_desc(&[], 1e-9).is_empty());
        assert_eq!(dense_ranks_desc(&[42.0], 1e-9), vec![1]);
    }

    #[test]
    fn epsilon_merges_near_ties() {
        let v = [0.5000000001, 0.5, 0.4];
        assert_eq!(dense_ranks_desc(&v, 1e-6), vec![1, 1, 2]);
        assert_eq!(dense_ranks_desc(&v, 0.0), vec![1, 2, 3]);
    }
}
