//! Exact diversity-based refinement (Section VII of the paper).
//!
//! Given `n` items, `d` pairwise distance matrices (one per local measure)
//! and a target size `k`, evaluate **every** `k`-subset `S`:
//!
//! 1. `Div(S) = (v_1, …, v_d)` with `v_i = min { Dist_i(x, y) | x, y ∈ S }`;
//! 2. rank all candidates per dimension in decreasing diversity
//!    (dense ranks, ties share a rank — see [`crate::ranking`]);
//! 3. `val(S) = Σ_i rank_i(S)`; the refined subset `𝕊` minimizes `val`.
//!
//! The paper does not define a tiebreak; we return the lexicographically
//! first minimizer (by enumeration order) and expose every tied candidate
//! so callers can surface the ambiguity.

use crate::combinations::{binomial, Combinations};
use crate::ranking::dense_ranks_desc;

/// Evaluation of a single candidate subset.
#[derive(Clone, Debug)]
pub struct SubsetEvaluation {
    /// Item indices, ascending.
    pub members: Vec<usize>,
    /// Per-dimension diversity `v_i` (minimum pairwise distance inside).
    pub diversity: Vec<f64>,
    /// Per-dimension dense rank (1 = most diverse).
    pub ranks: Vec<usize>,
    /// Rank sum `val(S)`.
    pub val: usize,
}

/// Full result of the exact refinement.
#[derive(Clone, Debug)]
pub struct DiversityResult {
    /// Every candidate subset in enumeration (lexicographic) order.
    pub candidates: Vec<SubsetEvaluation>,
    /// Index into `candidates` of the returned winner.
    pub best: usize,
    /// Indices of all candidates tied at the minimal `val` (includes
    /// `best`; length 1 means the winner is unique).
    pub tied: Vec<usize>,
}

impl DiversityResult {
    /// The winning subset's members.
    pub fn best_members(&self) -> &[usize] {
        &self.candidates[self.best].members
    }
}

/// Errors from [`refine_exact`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiversityError {
    /// `k` must be at least 2 (single-element subsets have no pairwise
    /// diversity under the paper's definition).
    SubsetTooSmall {
        /// The offending k.
        k: usize,
    },
    /// `k` exceeds the number of items.
    NotEnoughItems {
        /// Requested subset size.
        k: usize,
        /// Items available.
        n: usize,
    },
    /// The number of candidate subsets exceeds `max_candidates`.
    TooManyCandidates {
        /// `C(n, k)`.
        candidates: u128,
        /// The configured cap.
        cap: u128,
    },
    /// A distance matrix is malformed (not `n × n`).
    MalformedMatrix {
        /// Dimension index of the bad matrix.
        dimension: usize,
    },
}

impl std::fmt::Display for DiversityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiversityError::SubsetTooSmall { k } => {
                write!(
                    f,
                    "subset size k={k} too small; pairwise diversity needs k >= 2"
                )
            }
            DiversityError::NotEnoughItems { k, n } => {
                write!(f, "cannot pick k={k} items out of {n}")
            }
            DiversityError::TooManyCandidates { candidates, cap } => {
                write!(
                    f,
                    "C(n,k) = {candidates} exceeds the exact-enumeration cap {cap}"
                )
            }
            DiversityError::MalformedMatrix { dimension } => {
                write!(f, "distance matrix for dimension {dimension} is not n×n")
            }
        }
    }
}

impl std::error::Error for DiversityError {}

/// Exhaustive rank-sum refinement.
///
/// `matrices[i]` is the symmetric `n × n` matrix of `Dist_i`;
/// `max_candidates` bounds `C(n, k)` to keep the exhaustive enumeration
/// honest about its cost (pass `u128::MAX` to disable).
pub fn refine_exact(
    matrices: &[Vec<Vec<f64>>],
    k: usize,
    max_candidates: u128,
) -> Result<DiversityResult, DiversityError> {
    let n = matrices.first().map_or(0, Vec::len);
    if k < 2 {
        return Err(DiversityError::SubsetTooSmall { k });
    }
    if k > n {
        return Err(DiversityError::NotEnoughItems { k, n });
    }
    for (dim, m) in matrices.iter().enumerate() {
        if m.len() != n || m.iter().any(|row| row.len() != n) {
            return Err(DiversityError::MalformedMatrix { dimension: dim });
        }
    }
    let count = binomial(n, k);
    if count > max_candidates {
        return Err(DiversityError::TooManyCandidates {
            candidates: count,
            cap: max_candidates,
        });
    }

    // Step 0: diversity vectors for every candidate.
    let mut candidates: Vec<SubsetEvaluation> = Combinations::new(n, k)
        .map(|members| {
            let diversity: Vec<f64> = matrices
                .iter()
                .map(|m| {
                    let mut v = f64::INFINITY;
                    for (ai, &a) in members.iter().enumerate() {
                        for &b in &members[ai + 1..] {
                            v = v.min(m[a][b]);
                        }
                    }
                    v
                })
                .collect();
            SubsetEvaluation {
                members,
                diversity,
                ranks: Vec::new(),
                val: 0,
            }
        })
        .collect();

    // Steps 1–2: per-dimension dense ranks, then rank sums.
    for dim in 0..matrices.len() {
        let column: Vec<f64> = candidates.iter().map(|c| c.diversity[dim]).collect();
        let ranks = dense_ranks_desc(&column, 1e-9);
        for (c, r) in candidates.iter_mut().zip(ranks) {
            c.ranks.push(r);
        }
    }
    for c in &mut candidates {
        c.val = c.ranks.iter().sum();
    }

    let min_val = candidates
        .iter()
        .map(|c| c.val)
        .min()
        .expect("k>=2 and k<=n imply candidates");
    let tied: Vec<usize> = candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.val == min_val)
        .map(|(i, _)| i)
        .collect();
    let best = tied[0];
    Ok(DiversityResult {
        candidates,
        best,
        tied,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic 4-item, 2-dimension instance with a clear winner.
    fn toy() -> Vec<Vec<Vec<f64>>> {
        // Items 0..4; dim 0 distances spread items 0 and 3 far apart.
        let d0 = vec![
            vec![0.0, 0.1, 0.2, 0.9],
            vec![0.1, 0.0, 0.1, 0.2],
            vec![0.2, 0.1, 0.0, 0.1],
            vec![0.9, 0.2, 0.1, 0.0],
        ];
        // dim 1 agrees.
        let d1 = vec![
            vec![0.0, 0.2, 0.3, 0.8],
            vec![0.2, 0.0, 0.2, 0.3],
            vec![0.3, 0.2, 0.0, 0.2],
            vec![0.8, 0.3, 0.2, 0.0],
        ];
        vec![d0, d1]
    }

    #[test]
    fn picks_the_far_pair() {
        let r = refine_exact(&toy(), 2, u128::MAX).unwrap();
        assert_eq!(r.best_members(), &[0, 3]);
        assert_eq!(r.tied.len(), 1, "unique winner expected");
        // Its per-dimension ranks must both be 1 (most diverse).
        assert_eq!(r.candidates[r.best].ranks, vec![1, 1]);
        assert_eq!(r.candidates[r.best].val, 2);
    }

    #[test]
    fn diversity_is_min_pairwise() {
        let r = refine_exact(&toy(), 3, u128::MAX).unwrap();
        // Subset {0,1,3}: dim0 min(0.1, 0.9, 0.2) = 0.1
        let s013 = r
            .candidates
            .iter()
            .find(|c| c.members == vec![0, 1, 3])
            .unwrap();
        assert!((s013.diversity[0] - 0.1).abs() < 1e-12);
        assert!((s013.diversity[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn error_cases() {
        let m = toy();
        assert_eq!(
            refine_exact(&m, 1, u128::MAX).unwrap_err(),
            DiversityError::SubsetTooSmall { k: 1 }
        );
        assert_eq!(
            refine_exact(&m, 9, u128::MAX).unwrap_err(),
            DiversityError::NotEnoughItems { k: 9, n: 4 }
        );
        assert!(matches!(
            refine_exact(&m, 2, 1).unwrap_err(),
            DiversityError::TooManyCandidates { .. }
        ));
        let bad = vec![vec![vec![0.0, 1.0], vec![1.0]]]; // ragged 2×(2,1)
        assert_eq!(
            refine_exact(&bad, 2, u128::MAX).unwrap_err(),
            DiversityError::MalformedMatrix { dimension: 0 }
        );
    }

    #[test]
    fn ties_are_reported() {
        // Perfectly symmetric instance: all pairs equidistant → all subsets tie.
        let m = vec![vec![
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ]];
        let r = refine_exact(&m, 2, u128::MAX).unwrap();
        assert_eq!(r.tied.len(), 3);
        assert_eq!(r.best, 0, "lexicographically first tie wins");
        assert_eq!(r.best_members(), &[0, 1]);
    }

    #[test]
    fn full_set_subset() {
        let r = refine_exact(&toy(), 4, u128::MAX).unwrap();
        assert_eq!(r.candidates.len(), 1);
        assert_eq!(r.best_members(), &[0, 1, 2, 3]);
    }
}
