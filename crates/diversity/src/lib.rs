//! # gss-diversity — diversity-based result refinement
//!
//! Implements Section VII of Abbaci et al. (GDM/ICDE 2011): a graph
//! similarity skyline can be large, so the user asks for the `k`-subset with
//! **maximal diversity** — the subset whose members are as dissimilar from
//! each other as possible, simultaneously along every local distance.
//!
//! The crate is domain-independent: it sees items only through `d` symmetric
//! pairwise-distance matrices.
//!
//! * [`refine::refine_exact`] — the paper's exhaustive rank-sum procedure
//!   (diversity vector → per-dimension dense ranks → minimize rank sum),
//!   with explicit tie reporting;
//! * [`greedy::refine_greedy`] — a polynomial max-min baseline for large
//!   skylines;
//! * [`combinations`], [`ranking`] — the underlying utilities, exposed
//!   because the bench harness uses them directly.
//!
//! ```
//! use gss_diversity::refine_exact;
//!
//! // Three items, one distance dimension; items 0 and 2 are farthest.
//! let m = vec![vec![
//!     vec![0.0, 0.2, 0.9],
//!     vec![0.2, 0.0, 0.3],
//!     vec![0.9, 0.3, 0.0],
//! ]];
//! let r = refine_exact(&m, 2, u128::MAX).unwrap();
//! assert_eq!(r.best_members(), &[0, 2]);
//! ```

#![warn(missing_docs)]

pub mod combinations;
pub mod greedy;
pub mod ranking;
pub mod refine;

pub use greedy::refine_greedy;
pub use ranking::dense_ranks_desc;
pub use refine::{refine_exact, DiversityError, DiversityResult, SubsetEvaluation};
