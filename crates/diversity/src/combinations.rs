//! Lexicographic k-subset enumeration.

/// Iterator over all `k`-element subsets of `0..n` in lexicographic order
/// (the order the paper's worked example lists its candidate subsets in).
///
/// ```
/// use gss_diversity::combinations::Combinations;
/// let all: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
/// assert_eq!(all.len(), 6);
/// assert_eq!(all[0], vec![0, 1]);
/// assert_eq!(all[5], vec![2, 3]);
/// ```
#[derive(Clone, Debug)]
pub struct Combinations {
    n: usize,
    k: usize,
    current: Vec<usize>,
    done: bool,
}

impl Combinations {
    /// Creates the iterator; yields nothing when `k > n`, and exactly one
    /// empty subset when `k == 0`.
    pub fn new(n: usize, k: usize) -> Self {
        Combinations {
            n,
            k,
            current: (0..k).collect(),
            done: k > n,
        }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let result = self.current.clone();
        // Advance to the next combination.
        if self.k == 0 {
            self.done = true;
            return Some(result);
        }
        let mut i = self.k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.current[i] < self.n - self.k + i {
                self.current[i] += 1;
                for j in i + 1..self.k {
                    self.current[j] = self.current[j - 1] + 1;
                }
                break;
            }
        }
        Some(result)
    }
}

/// `C(n, k)` without overflow for the small arguments used here.
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * (n - i) as u128 / (i + 1) as u128;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_lexicographically() {
        let all: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
        assert_eq!(
            all,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3],
            ]
        );
    }

    #[test]
    fn counts_match_binomial() {
        for n in 0..8 {
            for k in 0..=n + 1 {
                let count = Combinations::new(n, k).count() as u128;
                assert_eq!(count, binomial(n, k), "C({n},{k})");
            }
        }
    }

    #[test]
    fn edge_cases() {
        assert_eq!(
            Combinations::new(0, 0).collect::<Vec<_>>(),
            vec![Vec::<usize>::new()]
        );
        assert_eq!(Combinations::new(3, 0).count(), 1);
        assert_eq!(Combinations::new(3, 4).count(), 0);
        assert_eq!(
            Combinations::new(5, 5).collect::<Vec<_>>(),
            vec![vec![0, 1, 2, 3, 4]]
        );
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(60, 30), 118_264_581_564_861_424); // fits u128
    }
}
