//! Greedy max-min diversity heuristic.
//!
//! Exhaustive refinement costs `C(n, k)` subset evaluations; this module
//! provides the classical polynomial alternative for large skylines:
//! scalarize the `d` pairwise distances (sum), seed with the farthest pair,
//! then repeatedly add the item maximizing its minimum scalarized distance
//! to the current selection. `O(n²d + k·n²)`.
//!
//! The heuristic optimizes max-min scalarized diversity, not the paper's
//! rank-sum objective, so it is a *baseline*: benches compare its rank-sum
//! `val` against the exact optimum.

/// Greedily selects `k` diverse items. Returns ascending indices.
///
/// `matrices[i]` is the symmetric `n × n` matrix of `Dist_i`. Returns all
/// items when `k ≥ n`; an empty vector when `k == 0` or there are no items.
pub fn refine_greedy(matrices: &[Vec<Vec<f64>>], k: usize) -> Vec<usize> {
    let n = matrices.first().map_or(0, Vec::len);
    if k == 0 || n == 0 {
        return Vec::new();
    }
    if k >= n {
        return (0..n).collect();
    }
    let scalar = |a: usize, b: usize| -> f64 { matrices.iter().map(|m| m[a][b]).sum() };

    // Seed: the globally farthest pair (ties by smaller indices).
    let (mut sa, mut sb, mut best) = (0usize, 1usize.min(n - 1), f64::NEG_INFINITY);
    for a in 0..n {
        for b in a + 1..n {
            let d = scalar(a, b);
            if d > best {
                best = d;
                sa = a;
                sb = b;
            }
        }
    }
    let mut selected = vec![sa, sb];
    if k == 1 {
        selected.truncate(1);
        return selected;
    }

    while selected.len() < k {
        let mut pick: Option<(usize, f64)> = None;
        for cand in 0..n {
            if selected.contains(&cand) {
                continue;
            }
            let dmin = selected
                .iter()
                .map(|&s| scalar(cand, s))
                .fold(f64::INFINITY, f64::min);
            if pick.is_none_or(|(_, d)| dmin > d) {
                pick = Some((cand, dmin));
            }
        }
        selected.push(pick.expect("k < n guarantees a candidate").0);
    }
    selected.sort_unstable();
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::refine_exact;

    fn line_instance(n: usize) -> Vec<Vec<Vec<f64>>> {
        // Items on a line: distance = |i - j|.
        let m: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| (i as f64 - j as f64).abs()).collect())
            .collect();
        vec![m]
    }

    #[test]
    fn picks_extremes_on_a_line() {
        let m = line_instance(10);
        assert_eq!(refine_greedy(&m, 2), vec![0, 9]);
        // Adding a third point: the middle maximizes min distance.
        let three = refine_greedy(&m, 3);
        assert_eq!(three.len(), 3);
        assert!(three.contains(&0) && three.contains(&9));
    }

    #[test]
    fn degenerate_sizes() {
        let m = line_instance(5);
        assert!(refine_greedy(&m, 0).is_empty());
        assert_eq!(refine_greedy(&m, 1).len(), 1);
        assert_eq!(refine_greedy(&m, 5), vec![0, 1, 2, 3, 4]);
        assert_eq!(refine_greedy(&m, 50), vec![0, 1, 2, 3, 4]);
        assert!(refine_greedy(&[], 3).is_empty());
    }

    #[test]
    fn greedy_matches_exact_on_easy_instance() {
        // When one pair is overwhelmingly far apart, both must pick it.
        let m = vec![vec![
            vec![0.0, 0.1, 9.0],
            vec![0.1, 0.0, 0.1],
            vec![9.0, 0.1, 0.0],
        ]];
        let g = refine_greedy(&m, 2);
        let e = refine_exact(&m, 2, u128::MAX).unwrap();
        assert_eq!(g, e.best_members());
        assert_eq!(g, vec![0, 2]);
    }

    #[test]
    fn greedy_val_is_at_least_exact_val() {
        // Rank-sum of the greedy subset can't beat the exact optimum.
        let m = vec![
            vec![
                vec![0.0, 0.5, 0.2, 0.7],
                vec![0.5, 0.0, 0.9, 0.1],
                vec![0.2, 0.9, 0.0, 0.4],
                vec![0.7, 0.1, 0.4, 0.0],
            ],
            vec![
                vec![0.0, 0.3, 0.8, 0.2],
                vec![0.3, 0.0, 0.5, 0.6],
                vec![0.8, 0.5, 0.0, 0.3],
                vec![0.2, 0.6, 0.3, 0.0],
            ],
        ];
        let exact = refine_exact(&m, 2, u128::MAX).unwrap();
        let greedy = refine_greedy(&m, 2);
        let greedy_eval = exact
            .candidates
            .iter()
            .find(|c| c.members == greedy)
            .expect("greedy subset must be among candidates");
        assert!(greedy_eval.val >= exact.candidates[exact.best].val);
    }
}
