//! Property-based tests for diversity refinement.

use gss_diversity::combinations::{binomial, Combinations};
use gss_diversity::{dense_ranks_desc, refine_exact, refine_greedy};
use proptest::prelude::*;

/// Strategy: `d` random symmetric distance matrices over `n` items.
#[allow(clippy::needless_range_loop)] // symmetric matrix fill reads clearest indexed
fn matrices(n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<Vec<f64>>>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(0.0f64..1.0, n..=n), n..=n),
        d..=d,
    )
    .prop_map(move |mut ms| {
        for m in &mut ms {
            for i in 0..n {
                m[i][i] = 0.0;
                for j in 0..i {
                    m[i][j] = m[j][i];
                }
            }
        }
        ms
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn exact_winner_minimizes_rank_sum(ms in matrices(6, 3), k in 2usize..5) {
        let r = refine_exact(&ms, k, u128::MAX).unwrap();
        let best_val = r.candidates[r.best].val;
        for c in &r.candidates {
            prop_assert!(c.val >= best_val, "winner must minimize val");
        }
        // Tie list is consistent.
        for &t in &r.tied {
            prop_assert_eq!(r.candidates[t].val, best_val);
        }
        prop_assert!(r.tied.contains(&r.best));
        // Candidate count is C(n, k).
        prop_assert_eq!(r.candidates.len() as u128, binomial(6, k));
    }

    #[test]
    fn diversity_vectors_are_min_pairwise(ms in matrices(5, 2), k in 2usize..4) {
        let r = refine_exact(&ms, k, u128::MAX).unwrap();
        for c in &r.candidates {
            for (dim, m) in ms.iter().enumerate() {
                let mut expected = f64::INFINITY;
                for (ai, &a) in c.members.iter().enumerate() {
                    for &b in &c.members[ai + 1..] {
                        expected = expected.min(m[a][b]);
                    }
                }
                prop_assert!((c.diversity[dim] - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn greedy_subset_is_valid_and_never_beats_exact(ms in matrices(6, 2), k in 2usize..5) {
        let greedy = refine_greedy(&ms, k);
        prop_assert_eq!(greedy.len(), k);
        let mut sorted = greedy.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k, "greedy must return distinct items");

        let exact = refine_exact(&ms, k, u128::MAX).unwrap();
        let greedy_eval = exact
            .candidates
            .iter()
            .find(|c| c.members == greedy)
            .expect("greedy subset is one of the candidates");
        prop_assert!(greedy_eval.val >= exact.candidates[exact.best].val);
    }

    #[test]
    fn dense_ranks_are_dense_and_order_preserving(
        values in prop::collection::vec(0.0f64..1.0, 1..30),
    ) {
        let ranks = dense_ranks_desc(&values, 1e-12);
        let max_rank = *ranks.iter().max().unwrap();
        // Dense: every rank 1..=max occurs.
        for r in 1..=max_rank {
            prop_assert!(ranks.contains(&r), "rank {} missing", r);
        }
        // Order-preserving: larger value ⟹ smaller-or-equal rank.
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] > values[j] + 1e-12 {
                    prop_assert!(ranks[i] < ranks[j]);
                }
            }
        }
    }

    #[test]
    fn combinations_are_sorted_distinct_and_complete(n in 0usize..7, k in 0usize..8) {
        let all: Vec<Vec<usize>> = Combinations::new(n, k).collect();
        prop_assert_eq!(all.len() as u128, binomial(n, k));
        for c in &all {
            prop_assert_eq!(c.len(), k);
            for w in c.windows(2) {
                prop_assert!(w[0] < w[1], "members strictly increasing");
            }
            for &x in c {
                prop_assert!(x < n);
            }
        }
        // Lexicographic and distinct.
        for w in all.windows(2) {
            prop_assert!(w[0] < w[1], "enumeration must be strictly lexicographic");
        }
    }
}
