//! Property-based tests for the VF2 matcher.

use gss_graph::{Graph, Label, Rng, VertexId};
use gss_iso::brute::exists_brute;
use gss_iso::{enumerate_embeddings, find_embedding, MatchMode};
use proptest::prelude::*;

fn random_graph(seed: u64, n: usize, m: usize, vlabels: u32, elabels: u32) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = Graph::new("prop");
    for _ in 0..n {
        g.add_vertex(Label(rng.gen_index(vlabels as usize) as u32));
    }
    let mut added = 0;
    let mut guard = 0;
    while added < m && guard < 20 * m + 50 {
        guard += 1;
        let u = VertexId::new(rng.gen_index(n));
        let v = VertexId::new(rng.gen_index(n));
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v, Label(100 + rng.gen_index(elabels as usize) as u32))
                .unwrap();
            added += 1;
        }
    }
    g
}

/// Checks that an embedding really is a valid map under `mode`.
fn validate(pattern: &Graph, target: &Graph, map: &[VertexId], mode: MatchMode) -> bool {
    // Injective.
    let mut seen = vec![false; target.order()];
    for v in map {
        if seen[v.index()] {
            return false;
        }
        seen[v.index()] = true;
    }
    // Vertex labels preserved.
    for p in pattern.vertices() {
        if pattern.vertex_label(p) != target.vertex_label(map[p.index()]) {
            return false;
        }
    }
    // Pattern edges present with equal labels.
    for e in pattern.edges() {
        let edge = pattern.edge(e);
        match target.edge_between(map[edge.u.index()], map[edge.v.index()]) {
            Some(te) if target.edge_label(te) == edge.label => {}
            _ => return false,
        }
    }
    if matches!(mode, MatchMode::Isomorphism | MatchMode::SubgraphInduced) {
        // No extra target edges between images.
        for e in target.edges() {
            let edge = target.edge(e);
            let pu = map.iter().position(|&x| x == edge.u);
            let pv = map.iter().position(|&x| x == edge.v);
            if let (Some(pu), Some(pv)) = (pu, pv) {
                match pattern.edge_between(VertexId::new(pu), VertexId::new(pv)) {
                    Some(pe) if pattern.edge_label(pe) == edge.label => {}
                    _ => return false,
                }
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn vf2_agrees_with_brute_force(
        s1 in any::<u64>(), s2 in any::<u64>(),
        np in 1usize..5, extra in 0usize..3,
    ) {
        let pattern = random_graph(s1, np, np + 1, 2, 2);
        let target = random_graph(s2, np + extra, np + extra + 2, 2, 2);
        for mode in [MatchMode::SubgraphNonInduced, MatchMode::SubgraphInduced, MatchMode::Isomorphism] {
            let fast = find_embedding(&pattern, &target, mode).is_some();
            let slow = exists_brute(&pattern, &target, mode);
            prop_assert_eq!(fast, slow, "mode {:?}", mode);
        }
    }

    #[test]
    fn returned_embeddings_are_valid_and_distinct(
        s1 in any::<u64>(), s2 in any::<u64>(), np in 1usize..4,
    ) {
        let pattern = random_graph(s1, np, np, 2, 1);
        let target = random_graph(s2, np + 2, np + 4, 2, 1);
        for mode in [MatchMode::SubgraphNonInduced, MatchMode::SubgraphInduced] {
            let all = enumerate_embeddings(&pattern, &target, mode, 64);
            for emb in &all {
                prop_assert!(validate(&pattern, &target, &emb.map, mode), "invalid embedding in {:?}", mode);
            }
            // Distinct.
            for i in 0..all.len() {
                for j in i + 1..all.len() {
                    prop_assert_ne!(&all[i].map, &all[j].map, "duplicate embedding");
                }
            }
        }
    }

    #[test]
    fn self_isomorphism_always_exists(seed in any::<u64>(), n in 1usize..6) {
        let g = random_graph(seed, n, n + 1, 3, 2);
        let emb = find_embedding(&g, &g, MatchMode::Isomorphism);
        prop_assert!(emb.is_some(), "every graph is isomorphic to itself");
        prop_assert!(validate(&g, &g, &emb.unwrap().map, MatchMode::Isomorphism));
    }

    #[test]
    fn subgraph_relation_is_reflexive_and_composes(
        seed in any::<u64>(), n in 2usize..6,
    ) {
        let g = random_graph(seed, n, n + 2, 2, 1);
        prop_assert!(gss_iso::is_subgraph_isomorphic(&g, &g));
        // Removing an edge keeps the subgraph relation.
        if g.size() > 0 {
            let smaller = g.without_edges(&[gss_graph::EdgeId::new(0)]);
            prop_assert!(gss_iso::is_subgraph_isomorphic(&smaller, &g));
        }
    }
}
