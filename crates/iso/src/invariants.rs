//! Cheap necessary conditions for (sub)graph isomorphism.
//!
//! These filters are sound (they only reject when no match can exist) and
//! run in `O(|V| + |E|)`, so the matcher applies them before any search.

use gss_graph::stats::{edge_class_multiset, vertex_label_multiset};
use gss_graph::Graph;

use crate::vf2::MatchMode;

/// Returns `true` when `pattern` provably cannot match into `target` under
/// `mode`, using counting arguments only.
pub fn quick_reject(pattern: &Graph, target: &Graph, mode: MatchMode) -> bool {
    match mode {
        MatchMode::Isomorphism => {
            if pattern.order() != target.order() || pattern.size() != target.size() {
                return true;
            }
            if vertex_label_multiset(pattern) != vertex_label_multiset(target) {
                return true;
            }
            if edge_class_multiset(pattern) != edge_class_multiset(target) {
                return true;
            }
            if degree_histogram(pattern) != degree_histogram(target) {
                return true;
            }
            // Weisfeiler–Lehman fingerprints: a strictly stronger invariant
            // than all of the above; two refinement rounds are enough to
            // separate almost all non-isomorphic pairs at this domain's
            // graph sizes.
            if gss_graph::wl::wl_fingerprint(pattern, 2) != gss_graph::wl::wl_fingerprint(target, 2)
            {
                return true;
            }
            false
        }
        MatchMode::SubgraphNonInduced | MatchMode::SubgraphInduced => {
            if pattern.order() > target.order() || pattern.size() > target.size() {
                return true;
            }
            // Every pattern vertex label must be available in the target in
            // sufficient multiplicity; likewise every edge class.
            let vp = vertex_label_multiset(pattern);
            let vt = vertex_label_multiset(target);
            if vp.intersection_size(&vt) < pattern.order() as u32 {
                return true;
            }
            let ep = edge_class_multiset(pattern);
            let et = edge_class_multiset(target);
            if ep.intersection_size(&et) < pattern.size() as u32 {
                return true;
            }
            false
        }
    }
}

fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut d: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    d.sort_unstable();
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::{GraphBuilder, Vocabulary};

    #[test]
    fn rejects_on_counts() {
        let mut v = Vocabulary::new();
        let small = GraphBuilder::new("s", &mut v)
            .vertices(&["a", "b"], "C")
            .edge("a", "b", "-")
            .build()
            .unwrap();
        let big = GraphBuilder::new("b", &mut v)
            .vertices(&["a", "b", "c"], "C")
            .path(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        assert!(quick_reject(&big, &small, MatchMode::SubgraphNonInduced));
        assert!(!quick_reject(&small, &big, MatchMode::SubgraphNonInduced));
        assert!(quick_reject(&small, &big, MatchMode::Isomorphism));
    }

    #[test]
    fn rejects_on_labels() {
        let mut v = Vocabulary::new();
        let carbon = GraphBuilder::new("c", &mut v)
            .vertices(&["a", "b"], "C")
            .edge("a", "b", "-")
            .build()
            .unwrap();
        let nitrogen = GraphBuilder::new("n", &mut v)
            .vertices(&["a", "b"], "N")
            .edge("a", "b", "-")
            .build()
            .unwrap();
        assert!(quick_reject(
            &carbon,
            &nitrogen,
            MatchMode::SubgraphNonInduced
        ));
        assert!(quick_reject(&carbon, &nitrogen, MatchMode::Isomorphism));
    }

    #[test]
    fn rejects_on_degree_histogram_for_iso() {
        let mut v = Vocabulary::new();
        // Star vs path: same order, size, labels — different degrees.
        let star = GraphBuilder::new("star", &mut v)
            .vertices(&["c", "x", "y", "z"], "C")
            .edge("c", "x", "-")
            .edge("c", "y", "-")
            .edge("c", "z", "-")
            .build()
            .unwrap();
        let path = GraphBuilder::new("path", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .path(&["a", "b", "c", "d"], "-")
            .build()
            .unwrap();
        assert!(quick_reject(&star, &path, MatchMode::Isomorphism));
    }

    #[test]
    fn accepts_potential_matches() {
        let mut v = Vocabulary::new();
        let a = GraphBuilder::new("a", &mut v)
            .vertices(&["x", "y", "z"], "C")
            .cycle(&["x", "y", "z"], "-")
            .build()
            .unwrap();
        assert!(!quick_reject(&a, &a, MatchMode::Isomorphism));
        assert!(!quick_reject(&a, &a, MatchMode::SubgraphInduced));
    }
}
