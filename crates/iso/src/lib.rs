//! # gss-iso — label-preserving (sub)graph isomorphism
//!
//! Implements Definitions 4–6 of Abbaci et al. (GDM/ICDE 2011) for the
//! labeled graphs of [`gss_graph`]:
//!
//! * **graph isomorphism** (Def. 4) — a label-preserving bijection that maps
//!   edges to edges of equal label in both directions;
//! * **subgraph isomorphism** (Def. 5) — a label-preserving injection under
//!   which every *pattern* edge appears in the target with an equal label
//!   (the *non-induced* variant, which is what the paper's `⊆` means);
//! * an **induced** variant (useful for the clique-based MCS cross-check),
//!   where mapped vertex pairs must agree on edges *and* non-edges.
//!
//! The solver in [`vf2`] is a VF2-style backtracking matcher with
//! connectivity-guided candidate generation and cheap invariant pre-filters
//! ([`invariants`]). A transparent brute-force matcher ([`brute`]) serves as
//! a correctness oracle in tests.
//!
//! ```
//! use gss_graph::{GraphBuilder, Vocabulary};
//! use gss_iso::{is_subgraph_isomorphic, are_isomorphic};
//!
//! let mut vocab = Vocabulary::new();
//! let triangle = GraphBuilder::new("t", &mut vocab)
//!     .vertices(&["a", "b", "c"], "C")
//!     .cycle(&["a", "b", "c"], "-")
//!     .build()
//!     .unwrap();
//! let edge = GraphBuilder::new("e", &mut vocab)
//!     .vertices(&["x", "y"], "C")
//!     .edge("x", "y", "-")
//!     .build()
//!     .unwrap();
//! assert!(is_subgraph_isomorphic(&edge, &triangle));
//! assert!(!is_subgraph_isomorphic(&triangle, &edge));
//! assert!(!are_isomorphic(&edge, &triangle));
//! ```

#![warn(missing_docs)]

pub mod brute;
pub mod invariants;
pub mod vf2;

pub use vf2::{
    are_isomorphic, count_embeddings, enumerate_embeddings, find_embedding, is_subgraph_isomorphic,
    Embedding, MatchMode,
};
