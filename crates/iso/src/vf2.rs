//! VF2-style backtracking matcher for labeled undirected graphs.
//!
//! The matcher keeps both graphs' adjacency as word-packed
//! [`gss_graph::BitMatrix`]es and the set of already-mapped target vertices
//! as a [`gss_graph::Bitset`]: feasibility checks test adjacency in `O(1)`
//! words before touching edge labels, and candidate generation intersects
//! the anchor image's neighbour row with the unmapped-target mask into a
//! per-depth reusable buffer — one word-parallel operation per search node
//! instead of a freshly allocated filtered `Vec`.

use gss_graph::{BitMatrix, Bitset, Graph, VertexId};

use crate::invariants;

/// What kind of correspondence to search for.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MatchMode {
    /// A label-preserving bijection; edges must correspond in both
    /// directions (Definition 4 of the paper).
    Isomorphism,
    /// A label-preserving injection; every *pattern* edge must exist in the
    /// target with an equal label, extra target edges are allowed
    /// (Definition 5 — the paper's `⊆`).
    SubgraphNonInduced,
    /// Like [`MatchMode::SubgraphNonInduced`] but mapped vertex pairs must
    /// also agree on *non-edges* (vertex-induced subgraph isomorphism).
    SubgraphInduced,
}

/// A pattern → target vertex mapping found by the matcher.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Embedding {
    /// `map[p]` is the target vertex that pattern vertex `p` maps to.
    pub map: Vec<VertexId>,
}

impl Embedding {
    /// Image of a pattern vertex.
    pub fn image(&self, p: VertexId) -> VertexId {
        self.map[p.index()]
    }
}

struct Matcher<'a> {
    pattern: &'a Graph,
    target: &'a Graph,
    mode: MatchMode,
    /// pattern vertex -> mapped target vertex (or u32::MAX)
    core_p: Vec<u32>,
    /// target vertex -> mapped pattern vertex (or u32::MAX)
    core_t: Vec<u32>,
    /// word-packed adjacency of the pattern (O(1) edge tests).
    pattern_adj: BitMatrix,
    /// word-packed adjacency of the target.
    target_adj: BitMatrix,
    /// currently mapped target vertices, as a word mask.
    mapped_t: Bitset,
    /// per-depth candidate masks, reused across the whole search.
    cand_bufs: Vec<Bitset>,
    /// static matching order of pattern vertices (connectivity-first)
    order: Vec<VertexId>,
    /// collected results
    found: Vec<Embedding>,
    /// stop after this many embeddings
    limit: usize,
}

const UNMAPPED: u32 = u32::MAX;

impl<'a> Matcher<'a> {
    fn new(pattern: &'a Graph, target: &'a Graph, mode: MatchMode, limit: usize) -> Self {
        Matcher {
            pattern,
            target,
            mode,
            core_p: vec![UNMAPPED; pattern.order()],
            core_t: vec![UNMAPPED; target.order()],
            pattern_adj: BitMatrix::adjacency(pattern),
            target_adj: BitMatrix::adjacency(target),
            mapped_t: Bitset::new(target.order()),
            cand_bufs: Vec::new(),
            order: matching_order(pattern),
            found: Vec::new(),
            limit,
        }
    }

    /// Would mapping `p -> t` be consistent with the current partial map?
    fn feasible(&self, p: VertexId, t: VertexId) -> bool {
        if self.pattern.vertex_label(p) != self.target.vertex_label(t) {
            return false;
        }
        match self.mode {
            MatchMode::Isomorphism => {
                if self.pattern.degree(p) != self.target.degree(t) {
                    return false;
                }
            }
            _ => {
                if self.pattern.degree(p) > self.target.degree(t) {
                    return false;
                }
            }
        }
        // Every mapped pattern-neighbor of p must be adjacent to t with an
        // equal edge label. The adjacency word test settles the common
        // negative case before any edge lookup.
        for (pn, pe) in self.pattern.neighbors(p) {
            let tn = self.core_p[pn.index()];
            if tn == UNMAPPED {
                continue;
            }
            if !self.target_adj.test(t.index(), tn as usize) {
                return false;
            }
            let te = self
                .target
                .edge_between(t, VertexId(tn))
                .expect("adjacency matrix and edge set agree");
            if self.target.edge_label(te) != self.pattern.edge_label(pe) {
                return false;
            }
        }
        // For induced/iso modes: every mapped target-neighbor of t must map
        // back to a pattern-neighbor of p (edges cannot appear from nowhere).
        if matches!(
            self.mode,
            MatchMode::Isomorphism | MatchMode::SubgraphInduced
        ) {
            for (tn, te) in self.target.neighbors(t) {
                let pn = self.core_t[tn.index()];
                if pn == UNMAPPED {
                    continue;
                }
                if !self.pattern_adj.test(p.index(), pn as usize) {
                    return false;
                }
                let pe = self
                    .pattern
                    .edge_between(p, VertexId(pn))
                    .expect("adjacency matrix and edge set agree");
                if self.pattern.edge_label(pe) != self.target.edge_label(te) {
                    return false;
                }
            }
        }
        true
    }

    // gss-lint: kernel — the VF2 recursion; per-depth state is preallocated in the embedding context
    fn recurse(&mut self, depth: usize) {
        if self.found.len() >= self.limit {
            return;
        }
        if depth == self.order.len() {
            // gss-lint: allow(no-alloc-in-kernel) — success path: materializes one found embedding, bounded by `limit`, not per search node
            let map = self.core_p.iter().map(|&t| VertexId(t)).collect();
            self.found.push(Embedding { map });
            return;
        }
        let p = self.order[depth];
        // Candidate generation: if p has a mapped neighbor, only target
        // vertices adjacent to that neighbor's image can work; otherwise try
        // every unmapped target vertex.
        let anchor = self.pattern.neighbors(p).find_map(|(pn, _)| {
            let t = self.core_p[pn.index()];
            (t != UNMAPPED).then_some(VertexId(t))
        });
        match anchor {
            Some(a) => {
                // Candidates = N(image of anchor) \ mapped, as one
                // word-parallel row intersection into the per-depth mask.
                if self.cand_bufs.len() <= depth {
                    let n = self.target.order();
                    self.cand_bufs.resize_with(depth + 1, || Bitset::new(n));
                }
                let mut cand = std::mem::take(&mut self.cand_bufs[depth]);
                cand.assign_row(&self.target_adj, a.index());
                cand.difference_with(&self.mapped_t);
                for ti in cand.iter() {
                    self.try_pair(p, VertexId::new(ti), depth);
                    if self.found.len() >= self.limit {
                        break;
                    }
                }
                self.cand_bufs[depth] = cand;
            }
            None => {
                for ti in 0..self.target.order() {
                    let t = VertexId::new(ti);
                    if self.core_t[ti] == UNMAPPED {
                        self.try_pair(p, t, depth);
                        if self.found.len() >= self.limit {
                            return;
                        }
                    }
                }
            }
        }
    }

    fn try_pair(&mut self, p: VertexId, t: VertexId, depth: usize) {
        if !self.feasible(p, t) {
            return;
        }
        self.core_p[p.index()] = t.0;
        self.core_t[t.index()] = p.0;
        self.mapped_t.insert(t.index());
        self.recurse(depth + 1);
        self.core_p[p.index()] = UNMAPPED;
        self.core_t[t.index()] = UNMAPPED;
        self.mapped_t.remove(t.index());
    }
}

/// A static matching order: starts from the highest-degree vertex of each
/// component and expands via adjacency, so each step (after the first per
/// component) has a mapped anchor neighbor.
fn matching_order(pattern: &Graph) -> Vec<VertexId> {
    let n = pattern.order();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        // Seed: unplaced vertex with max degree (rarest-first would also work;
        // degree is a good cheap proxy at this scale).
        let seed = (0..n)
            .filter(|&i| !placed[i])
            .max_by_key(|&i| pattern.degree(VertexId::new(i)))
            .expect("some vertex remains");
        let mut frontier = vec![VertexId::new(seed)];
        placed[seed] = true;
        while let Some(v) = frontier.pop() {
            order.push(v);
            // Expand neighbors in decreasing degree for better pruning.
            let mut ns: Vec<VertexId> = pattern
                .neighbors(v)
                .map(|(n, _)| n)
                .filter(|n| !placed[n.index()])
                .collect();
            ns.sort_by_key(|n| std::cmp::Reverse(pattern.degree(*n)));
            for n in ns {
                if !placed[n.index()] {
                    placed[n.index()] = true;
                    frontier.push(n);
                }
            }
        }
    }
    order
}

/// Finds one embedding of `pattern` into `target` under `mode`.
///
/// Returns `None` when no embedding exists. An empty pattern embeds into any
/// target for the subgraph modes, and only into an empty target for
/// [`MatchMode::Isomorphism`].
pub fn find_embedding(pattern: &Graph, target: &Graph, mode: MatchMode) -> Option<Embedding> {
    enumerate_embeddings(pattern, target, mode, 1)
        .into_iter()
        .next()
}

/// Enumerates up to `limit` embeddings of `pattern` into `target`.
pub fn enumerate_embeddings(
    pattern: &Graph,
    target: &Graph,
    mode: MatchMode,
    limit: usize,
) -> Vec<Embedding> {
    if limit == 0 || invariants::quick_reject(pattern, target, mode) {
        return Vec::new();
    }
    let mut m = Matcher::new(pattern, target, mode, limit);
    m.recurse(0);
    m.found
}

/// Counts embeddings, stopping at `cap` (pass `usize::MAX` for all).
pub fn count_embeddings(pattern: &Graph, target: &Graph, mode: MatchMode, cap: usize) -> usize {
    enumerate_embeddings(pattern, target, mode, cap).len()
}

/// Label-preserving graph isomorphism (Definition 4).
pub fn are_isomorphic(g1: &Graph, g2: &Graph) -> bool {
    find_embedding(g1, g2, MatchMode::Isomorphism).is_some()
}

/// Non-induced, label-preserving subgraph isomorphism: is `pattern ⊆ target`
/// (Definition 5/6)?
pub fn is_subgraph_isomorphic(pattern: &Graph, target: &Graph) -> bool {
    find_embedding(pattern, target, MatchMode::SubgraphNonInduced).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::{GraphBuilder, Vocabulary};

    fn vocab() -> Vocabulary {
        Vocabulary::new()
    }

    #[test]
    fn triangle_automorphisms() {
        let mut v = vocab();
        let t = GraphBuilder::new("t", &mut v)
            .vertices(&["a", "b", "c"], "C")
            .cycle(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        // All 6 permutations are label-preserving automorphisms.
        assert_eq!(
            count_embeddings(&t, &t, MatchMode::Isomorphism, usize::MAX),
            6
        );
    }

    #[test]
    fn labels_break_symmetry() {
        let mut v = vocab();
        let t = GraphBuilder::new("t", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .cycle(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        assert_eq!(
            count_embeddings(&t, &t, MatchMode::Isomorphism, usize::MAX),
            1
        );
    }

    #[test]
    fn edge_labels_matter() {
        let mut v = vocab();
        let single = GraphBuilder::new("s", &mut v)
            .vertices(&["a", "b"], "C")
            .edge("a", "b", "-")
            .build()
            .unwrap();
        let double = GraphBuilder::new("d", &mut v)
            .vertices(&["a", "b"], "C")
            .edge("a", "b", "=")
            .build()
            .unwrap();
        assert!(!are_isomorphic(&single, &double));
        assert!(!is_subgraph_isomorphic(&single, &double));
    }

    #[test]
    fn path_into_cycle_non_induced() {
        let mut v = vocab();
        let path = GraphBuilder::new("p", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .path(&["a", "b", "c", "d"], "-")
            .build()
            .unwrap();
        let cycle = GraphBuilder::new("c", &mut v)
            .vertices(&["w", "x", "y", "z"], "C")
            .cycle(&["w", "x", "y", "z"], "-")
            .build()
            .unwrap();
        // A 4-path maps onto a 4-cycle non-induced (the closing edge is extra)…
        assert!(is_subgraph_isomorphic(&path, &cycle));
        // …but not induced: endpoints of the path are mapped adjacent.
        assert!(find_embedding(&path, &cycle, MatchMode::SubgraphInduced).is_none());
        // And the 4-cycle is not a subgraph of the 4-path.
        assert!(!is_subgraph_isomorphic(&cycle, &path));
    }

    #[test]
    fn empty_pattern_cases() {
        let mut v = vocab();
        let empty = GraphBuilder::new("e", &mut v).build().unwrap();
        let g = GraphBuilder::new("g", &mut v)
            .vertex("a", "A")
            .build()
            .unwrap();
        assert!(is_subgraph_isomorphic(&empty, &g));
        assert!(are_isomorphic(&empty, &empty));
        assert!(!are_isomorphic(&empty, &g));
        assert!(!are_isomorphic(&g, &empty));
    }

    #[test]
    fn disconnected_pattern() {
        let mut v = vocab();
        let two_edges = GraphBuilder::new("p", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .edge("a", "b", "-")
            .edge("c", "d", "-")
            .build()
            .unwrap();
        let path3 = GraphBuilder::new("t", &mut v)
            .vertices(&["x", "y", "z"], "C")
            .path(&["x", "y", "z"], "-")
            .build()
            .unwrap();
        // Needs 4 distinct target vertices — a 3-path cannot host it.
        assert!(!is_subgraph_isomorphic(&two_edges, &path3));
        let path4 = GraphBuilder::new("t4", &mut v)
            .vertices(&["x", "y", "z", "w"], "C")
            .path(&["x", "y", "z", "w"], "-")
            .build()
            .unwrap();
        assert!(is_subgraph_isomorphic(&two_edges, &path4));
    }

    #[test]
    fn embedding_is_a_valid_map() {
        let mut v = vocab();
        let pattern = GraphBuilder::new("p", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .edge("a", "b", "-")
            .build()
            .unwrap();
        let target = GraphBuilder::new("t", &mut v)
            .vertex("x", "B")
            .vertex("y", "A")
            .vertex("z", "C")
            .edge("y", "x", "-")
            .edge("x", "z", "-")
            .build()
            .unwrap();
        let emb = find_embedding(&pattern, &target, MatchMode::SubgraphNonInduced).unwrap();
        // a(A) must map to y(A), b(B) to x(B).
        assert_eq!(emb.image(VertexId::new(0)), VertexId::new(1));
        assert_eq!(emb.image(VertexId::new(1)), VertexId::new(0));
    }

    #[test]
    fn count_respects_cap() {
        let mut v = vocab();
        let t = GraphBuilder::new("t", &mut v)
            .vertices(&["a", "b", "c"], "C")
            .cycle(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        assert_eq!(count_embeddings(&t, &t, MatchMode::Isomorphism, 4), 4);
        assert_eq!(count_embeddings(&t, &t, MatchMode::Isomorphism, 0), 0);
    }

    #[test]
    fn isomorphism_is_an_equivalence_on_samples() {
        let mut v = vocab();
        // Same structure entered in different vertex orders.
        let g1 = GraphBuilder::new("g1", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .path(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let g2 = GraphBuilder::new("g2", &mut v)
            .vertex("c", "C")
            .vertex("a", "A")
            .vertex("b", "B")
            .path(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        assert!(are_isomorphic(&g1, &g1));
        assert!(are_isomorphic(&g1, &g2));
        assert!(are_isomorphic(&g2, &g1));
    }
}
