//! Brute-force (sub)graph isomorphism oracle.
//!
//! Checks every injective assignment of pattern vertices to target vertices.
//! Exponential, intended only for cross-checking [`crate::vf2`] on small
//! graphs in tests and for documentation of the exact matching semantics.

use gss_graph::{Graph, VertexId};

use crate::vf2::MatchMode;

/// True when some injective, label-preserving assignment satisfying `mode`
/// exists. Semantics identical to [`crate::vf2::find_embedding`].
pub fn exists_brute(pattern: &Graph, target: &Graph, mode: MatchMode) -> bool {
    if pattern.order() > target.order() {
        return false;
    }
    if mode == MatchMode::Isomorphism
        && (pattern.order() != target.order() || pattern.size() != target.size())
    {
        return false;
    }
    let mut map: Vec<Option<VertexId>> = vec![None; pattern.order()];
    let mut used = vec![false; target.order()];
    assign(pattern, target, mode, 0, &mut map, &mut used)
}

fn assign(
    pattern: &Graph,
    target: &Graph,
    mode: MatchMode,
    depth: usize,
    map: &mut Vec<Option<VertexId>>,
    used: &mut Vec<bool>,
) -> bool {
    if depth == pattern.order() {
        return check_complete(pattern, target, mode, map);
    }
    let p = VertexId::new(depth);
    for ti in 0..target.order() {
        if used[ti] {
            continue;
        }
        let t = VertexId::new(ti);
        if pattern.vertex_label(p) != target.vertex_label(t) {
            continue;
        }
        map[depth] = Some(t);
        used[ti] = true;
        if assign(pattern, target, mode, depth + 1, map, used) {
            return true;
        }
        map[depth] = None;
        used[ti] = false;
    }
    false
}

fn check_complete(
    pattern: &Graph,
    target: &Graph,
    mode: MatchMode,
    map: &[Option<VertexId>],
) -> bool {
    // Every pattern edge must exist in target with equal label.
    for e in pattern.edges() {
        let edge = pattern.edge(e);
        let tu = map[edge.u.index()].expect("complete assignment");
        let tv = map[edge.v.index()].expect("complete assignment");
        match target.edge_between(tu, tv) {
            Some(te) if target.edge_label(te) == edge.label => {}
            _ => return false,
        }
    }
    match mode {
        MatchMode::SubgraphNonInduced => true,
        MatchMode::SubgraphInduced | MatchMode::Isomorphism => {
            // No target edge may connect images of a pattern non-edge.
            let mut inverse = vec![None; target.order()];
            for (pi, t) in map.iter().enumerate() {
                inverse[t.expect("complete").index()] = Some(VertexId::new(pi));
            }
            for e in target.edges() {
                let edge = target.edge(e);
                if let (Some(pu), Some(pv)) = (inverse[edge.u.index()], inverse[edge.v.index()]) {
                    match pattern.edge_between(pu, pv) {
                        Some(pe) if pattern.edge_label(pe) == edge.label => {}
                        _ => return false,
                    }
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vf2::{find_embedding, MatchMode};
    use gss_graph::{Graph, GraphBuilder, Rng, Vocabulary};

    /// Deterministic random labeled graph for cross-checking.
    fn random_graph(rng: &mut Rng, n: usize, m: usize, vlabels: u32, elabels: u32) -> Graph {
        use gss_graph::Label;
        let mut g = Graph::new("r");
        for _ in 0..n {
            g.add_vertex(Label(rng.gen_index(vlabels as usize) as u32));
        }
        let mut attempts = 0;
        let mut added = 0;
        while added < m && attempts < 10 * m + 20 {
            attempts += 1;
            let u = VertexId::new(rng.gen_index(n));
            let v = VertexId::new(rng.gen_index(n));
            if u == v || g.has_edge(u, v) {
                continue;
            }
            let l = Label(vlabels + rng.gen_index(elabels as usize) as u32);
            g.add_edge(u, v, l).unwrap();
            added += 1;
        }
        g
    }

    #[test]
    fn vf2_agrees_with_brute_force_on_random_graphs() {
        let mut rng = Rng::seed_from_u64(0xfeed);
        for case in 0..200 {
            let np = 2 + rng.gen_index(4); // pattern: 2..=5 vertices
            let nt = np + rng.gen_index(3); // target: np..=np+2 vertices
            let pattern = random_graph(&mut rng, np, np + 1, 2, 2);
            let target = random_graph(&mut rng, nt, nt + 2, 2, 2);
            for mode in [
                MatchMode::SubgraphNonInduced,
                MatchMode::SubgraphInduced,
                MatchMode::Isomorphism,
            ] {
                let fast = find_embedding(&pattern, &target, mode).is_some();
                let slow = exists_brute(&pattern, &target, mode);
                assert_eq!(fast, slow, "case {case}: mode {mode:?} disagreement");
            }
        }
    }

    #[test]
    fn brute_basic_sanity() {
        let mut v = Vocabulary::new();
        let edge = GraphBuilder::new("e", &mut v)
            .vertices(&["a", "b"], "C")
            .edge("a", "b", "-")
            .build()
            .unwrap();
        let triangle = GraphBuilder::new("t", &mut v)
            .vertices(&["x", "y", "z"], "C")
            .cycle(&["x", "y", "z"], "-")
            .build()
            .unwrap();
        assert!(exists_brute(
            &edge,
            &triangle,
            MatchMode::SubgraphNonInduced
        ));
        assert!(!exists_brute(
            &triangle,
            &edge,
            MatchMode::SubgraphNonInduced
        ));
        assert!(!exists_brute(&edge, &triangle, MatchMode::Isomorphism));
        assert!(exists_brute(&triangle, &triangle, MatchMode::Isomorphism));
    }
}
