//! # gss-store — epoch-based MVCC snapshots over a live `GraphDatabase`
//!
//! Everything below the serving tier assumes an immutable database — the
//! byte-identity guarantees (cache hits, plan invariance, shard
//! invariance) are all stated *per database fingerprint*. This crate
//! makes the database mutable **without weakening any of them**, by
//! never mutating a database readers can see:
//!
//! * **Snapshots** ([`Snapshot`]): an immutable `(database, index,
//!   epoch)` triple behind `Arc`s. Readers grab one with
//!   [`GraphStore::snapshot`] and keep it for the lifetime of a query;
//!   every guarantee of the frozen-database world holds verbatim within
//!   one snapshot.
//! * **Writers** ([`GraphStore::apply`]): one [`MutationBatch`]
//!   (removals, then in-place updates, then inserts — all by graph name
//!   or `t/v/e` text) is applied atomically to a private clone, the
//!   epoch counter is bumped, and the new snapshot is swapped in with a
//!   single `Arc` store. Batches are serialized by a writer lock;
//!   readers never block. A failed batch (unknown name, parse error)
//!   changes nothing.
//! * **Epochs**: [`GraphDatabase::epoch`] is folded into
//!   [`GraphDatabase::fingerprint`], so every epoch has a distinct
//!   fingerprint — even a remove+insert round-trip that restores
//!   byte-identical content. Caches keyed by the fingerprint (the
//!   server's result cache) therefore never serve a stale epoch: old
//!   keys simply stop being produced, and stale entries age out.
//! * **Compact storage**: a snapshot whose database was
//!   [`GraphDatabase::compact`]ed keeps its CSR arena (and the lazy
//!   materialization cells) behind `Arc`s. The writer's private clone
//!   shares them, so a mutation batch copies-on-write only the graphs it
//!   actually touches — untouched slots keep reading the same flat
//!   arrays across every epoch, and a graph materialized under one
//!   snapshot stays materialized for all of them.
//! * **Incremental index maintenance**: when the store carries a
//!   [`PivotIndex`], each batch is absorbed through
//!   [`PivotIndex::apply_batch`] (probe-bound brackets, tombstoned
//!   removals — no exact solver calls). Absorbed operations accumulate
//!   staleness; when [`StoreConfig::staleness_budget`] is exceeded the
//!   store runs a cheap [`PivotIndex::partial_rebuild`]
//!   (re-quantile rings from stored brackets) instead of re-pivoting.
//!   Only removing/replacing a pivot graph forces a full rebuild.
//! * **Durability** ([`GraphStore::open_durable`]): an optional
//!   write-ahead log (module [`wal`]) persists every batch — flushed per
//!   a configurable [`FsyncPolicy`] — *before* its epoch is published,
//!   so an acked mutation survives a crash. Restart recovery loads the
//!   newest checkpoint, replays the WAL tail, truncates torn tails, and
//!   refuses ambiguous logs with a typed [`WalError`]. Client-supplied
//!   mutation ids are deduplicated across the log and checkpoints, so a
//!   retried mutation is acked with its original receipt instead of
//!   applying twice. Module [`fault`] provides the deterministic fault
//!   injection the crash-recovery tests drive this machinery with.
//!
//! ```
//! use gss_core::GraphDatabase;
//! use gss_store::{GraphStore, MutationBatch, StoreConfig};
//! use std::sync::Arc;
//!
//! let mut db = GraphDatabase::new();
//! db.add("a", |b| b.vertex("x", "C")).unwrap();
//! let store = GraphStore::new(Arc::new(db), StoreConfig::default());
//!
//! let before = store.snapshot();
//! let receipt = store
//!     .apply(&MutationBatch::default().insert("t b\nv 0 N\n"))
//!     .unwrap();
//! assert_eq!(receipt.epoch, 1);
//! assert_eq!(store.snapshot().database().len(), 2);
//! // The reader's snapshot is untouched — MVCC isolation.
//! assert_eq!(before.database().len(), 1);
//! assert_ne!(before.fingerprint(), store.snapshot().fingerprint());
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gss_core::database::{GraphDatabase, GraphId};
use gss_core::index::QueryIndex;
use gss_graph::format::parse_database;
use gss_graph::GraphError;
use gss_index::{IndexError, MaintenanceOutcome, PivotIndex, PivotIndexConfig};

pub mod fault;
pub mod wal;

pub use fault::{FaultAction, FaultPlan, FaultSpecError};
pub use wal::{
    inspect, ArtifactStatus, CheckpointInfo, FsyncPolicy, RecoveryStats, SegmentInfo, WalConfig,
    WalError, WalInspection, WalStats,
};

use wal::{DedupEntry, DedupLog, Wal, WalCounters};

/// Build-time knobs for a [`GraphStore`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// When set, [`GraphStore::new`] builds a [`PivotIndex`] with this
    /// configuration and every snapshot carries an incrementally
    /// maintained index. `None` serves without an index (one can still
    /// be supplied via [`GraphStore::with_index`]).
    pub index: Option<PivotIndexConfig>,
    /// Maximum mutation operations the index may absorb before the store
    /// triggers a partial rebuild ([`PivotIndex::partial_rebuild`]) to
    /// re-tighten its partitions. Ignored when no index is maintained.
    pub staleness_budget: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            index: None,
            staleness_budget: 64,
        }
    }
}

/// An immutable view of the store at one epoch.
///
/// Everything a query evaluation needs travels together: the database,
/// the (optional) index maintained for exactly that database, and the
/// cache identity. Queries admitted against a snapshot run to completion
/// on it no matter how many mutations land meanwhile.
pub struct Snapshot {
    // gss-lint: exempt(Snapshot::db) — the cached `fingerprint` below IS this database's fingerprint (captured once per epoch); hashing the graphs again on every access would cost O(|D|) per query
    db: Arc<GraphDatabase>,
    // gss-lint: exempt(Snapshot::index) — index identity reaches the cache key through `options_fingerprint` (its `describe()` string) on the snapshot-pinned options, not through the database component
    index: Option<Arc<PivotIndex>>,
    // gss-lint: exempt(Snapshot::epoch) — already folded into the cached fingerprint by `GraphDatabase::fingerprint`; kept unhashed as a human-readable label for stats and receipts
    epoch: u64,
    fingerprint: u64,
}

impl Snapshot {
    /// Captures the snapshot of a database + index pair; the epoch and
    /// the epoch-folded fingerprint both derive from the database.
    fn capture(db: Arc<GraphDatabase>, idx: Option<Arc<PivotIndex>>) -> Snapshot {
        let epoch = db.epoch();
        let fp = db.fingerprint();
        Snapshot {
            db,
            index: idx,
            epoch,
            fingerprint: fp,
        }
    }

    /// The database frozen at this epoch.
    pub fn database(&self) -> &Arc<GraphDatabase> {
        &self.db
    }

    /// The pivot index maintained for this epoch, if the store carries
    /// one. Always validates against [`Snapshot::database`].
    pub fn index(&self) -> Option<&Arc<PivotIndex>> {
        self.index.as_ref()
    }

    /// The index as the trait object [`gss_core::QueryOptions::index`]
    /// expects.
    pub fn query_index(&self) -> Option<Arc<dyn QueryIndex>> {
        self.index
            .as_ref()
            .map(|i| Arc::clone(i) as Arc<dyn QueryIndex>)
    }

    /// The mutation epoch of this snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch-folded database fingerprint — the `database` component
    /// of every cache key derived from this snapshot.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// One atomic batch of mutations, applied in a fixed order: **removals,
/// then updates, then inserts**. Names are resolved against the
/// pre-insert content (first match for duplicate names), so a batch
/// cannot update or remove a graph it inserts itself. An error anywhere
/// (unknown name, malformed graph text) aborts the whole batch.
#[derive(Clone, Debug, Default)]
pub struct MutationBatch {
    /// Graph names to remove.
    pub removes: Vec<String>,
    /// `(name, t/v/e text)` pairs: the named graph is replaced in place
    /// (same id) by the single graph parsed from the text.
    pub updates: Vec<(String, String)>,
    /// `t/v/e` texts to append; each may hold any number of graphs.
    pub inserts: Vec<String>,
}

impl MutationBatch {
    /// Adds an insert of one or more graphs in `t/v/e` text form.
    pub fn insert(mut self, graphs: &str) -> MutationBatch {
        self.inserts.push(graphs.to_owned());
        self
    }

    /// Adds a removal by graph name.
    pub fn remove(mut self, name: &str) -> MutationBatch {
        self.removes.push(name.to_owned());
        self
    }

    /// Adds an in-place update: `name` is replaced by the single graph
    /// parsed from `graph`.
    pub fn update(mut self, name: &str, graph: &str) -> MutationBatch {
        self.updates.push((name.to_owned(), graph.to_owned()));
        self
    }

    /// True when the batch holds no operations (applying it is a no-op
    /// that does **not** bump the epoch).
    pub fn is_empty(&self) -> bool {
        self.removes.is_empty() && self.updates.is_empty() && self.inserts.is_empty()
    }
}

/// Why a mutation batch was rejected (nothing was applied).
#[derive(Debug)]
pub enum MutationError {
    /// Graph text failed to parse.
    Parse(GraphError),
    /// A remove/update named a graph the current epoch does not hold.
    UnknownGraph(String),
    /// An update's text did not contain exactly one graph.
    NotOneGraph {
        /// The update target.
        name: String,
        /// How many graphs the text parsed to.
        found: usize,
    },
    /// The batch could not be made durable (WAL append or flush failed);
    /// nothing was published and nothing was acked.
    Durability(WalError),
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::Parse(e) => write!(f, "invalid graph text: {e}"),
            MutationError::UnknownGraph(name) => write!(f, "no graph named {name:?}"),
            MutationError::NotOneGraph { name, found } => {
                write!(
                    f,
                    "update of {name:?} must carry exactly one graph, got {found}"
                )
            }
            MutationError::Durability(e) => write!(f, "mutation was not made durable: {e}"),
        }
    }
}

impl std::error::Error for MutationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MutationError::Durability(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for MutationError {
    fn from(e: GraphError) -> Self {
        MutationError::Parse(e)
    }
}

impl From<WalError> for MutationError {
    fn from(e: WalError) -> Self {
        MutationError::Durability(e)
    }
}

/// How the snapshot's index absorbed one batch.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IndexMaintenance {
    /// The store maintains no index.
    None,
    /// All operations were absorbed in place via probe bounds.
    Incremental,
    /// Absorbed incrementally, then the staleness budget tripped a
    /// partial rebuild (re-quantiled rings, no exact solver calls).
    Partial,
    /// A pivot was removed/replaced: full exact rebuild.
    Rebuilt,
}

/// What one successful [`GraphStore::apply`] did.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MutationReceipt {
    /// The epoch the batch produced (current epoch for an empty batch).
    pub epoch: u64,
    /// Graphs appended.
    pub inserted: usize,
    /// Graphs removed.
    pub removed: usize,
    /// Graphs replaced in place.
    pub updated: usize,
    /// How the index was maintained.
    pub maintenance: IndexMaintenance,
    /// True when this receipt answers a deduplicated retry: the
    /// `mutation_id` was already applied, nothing changed, and the
    /// counts above are the original application's.
    pub replayed: bool,
}

/// A point-in-time view of the store's mutation counters (the `stats`
/// verb payload of `gss-server` reports these).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Current epoch.
    pub epoch: u64,
    /// Mutation batches applied (epoch bumps).
    pub batches: u64,
    /// Total graphs inserted.
    pub inserted: u64,
    /// Total graphs removed.
    pub removed: u64,
    /// Total graphs updated in place.
    pub updated: u64,
    /// Full index rebuilds forced by pivot mutations.
    pub index_rebuilds: u64,
    /// Index staleness (ops absorbed since the last rebuild), when an
    /// index is maintained.
    pub index_stale_ops: Option<u64>,
    /// Partial rebuilds the index has run, when an index is maintained.
    pub index_partial_rebuilds: Option<u64>,
    /// Write-ahead-log counters, when the store was opened durably via
    /// [`GraphStore::open_durable`].
    pub wal: Option<WalStats>,
}

/// The MVCC snapshot store: one mutable head, immutable epochs behind it.
///
/// Cloned `Arc<Snapshot>`s handed to readers stay valid forever; the
/// store only ever *replaces* the head. Writers serialize on an internal
/// lock, so [`GraphStore::apply`] is safe to call from any number of
/// threads.
pub struct GraphStore {
    /// The head snapshot. Swapped wholesale under the writer lock; read
    /// with a brief lock (clone an `Arc`, never blocks on evaluation).
    current: Mutex<Arc<Snapshot>>,
    /// Serializes writers across the whole read-modify-swap cycle and
    /// owns the durability state (WAL + dedup log) when there is one.
    write: Mutex<WriterState>,
    config: StoreConfig,
    batches: AtomicU64,
    inserted: AtomicU64,
    removed: AtomicU64,
    updated: AtomicU64,
    index_rebuilds: AtomicU64,
    /// Lock-free view of the WAL counters for [`GraphStore::stats`]
    /// (shared with the `Wal` inside the writer lock).
    wal_counters: Option<Arc<WalCounters>>,
    recovery: Option<RecoveryStats>,
}

/// State owned by the writer lock.
#[derive(Default)]
struct WriterState {
    durable: Option<DurableState>,
}

struct DurableState {
    wal: Wal,
    dedup: DedupLog,
}

impl GraphStore {
    /// Opens a store over a database, building a pivot index when
    /// [`StoreConfig::index`] asks for one. The database's current epoch
    /// (usually 0) is the first snapshot's epoch.
    pub fn new(db: Arc<GraphDatabase>, config: StoreConfig) -> GraphStore {
        let index = config
            .index
            .as_ref()
            .map(|cfg| Arc::new(PivotIndex::build(&db, cfg)));
        GraphStore::assemble(Snapshot::capture(db, index), config, None)
    }

    /// Opens a store backed by a write-ahead log in
    /// [`WalConfig::dir`]. A fresh directory is initialized with a
    /// checkpoint of `db`; a directory with prior state **recovers from
    /// disk and ignores `db`'s content** — the newest valid checkpoint
    /// is loaded, the WAL tail replayed, torn tails truncated, and
    /// ambiguous or gapped logs refused with a typed [`WalError`].
    ///
    /// The pivot index is never persisted: it is rebuilt once from
    /// [`StoreConfig::index`] after replay, which keeps recovered
    /// fingerprints byte-stable under vocabulary re-interning.
    pub fn open_durable(
        db: Arc<GraphDatabase>,
        config: StoreConfig,
        wal_config: WalConfig,
    ) -> Result<GraphStore, WalError> {
        let (wal, recovered) = Wal::open(wal_config, &db)?;
        let index = config
            .index
            .as_ref()
            .map(|cfg| Arc::new(PivotIndex::build(&recovered.db, cfg)));
        let dedup = DedupLog::from_entries(recovered.dedup);
        Ok(GraphStore::assemble(
            Snapshot::capture(recovered.db, index),
            config,
            Some(DurableState { wal, dedup }),
        ))
    }

    /// Opens a store over a database with a pre-built (e.g. loaded)
    /// index, which must validate against the database.
    pub fn with_index(
        db: Arc<GraphDatabase>,
        index: Arc<PivotIndex>,
        config: StoreConfig,
    ) -> Result<GraphStore, IndexError> {
        index.validate(&db)?;
        Ok(GraphStore::assemble(
            Snapshot::capture(db, Some(index)),
            config,
            None,
        ))
    }

    fn assemble(
        snapshot: Snapshot,
        config: StoreConfig,
        durable: Option<DurableState>,
    ) -> GraphStore {
        let (wal_counters, recovery) = match &durable {
            Some(d) => (Some(d.wal.counters()), Some(d.wal.recovery())),
            None => (None, None),
        };
        GraphStore {
            current: Mutex::new(Arc::new(snapshot)),
            write: Mutex::new(WriterState { durable }),
            config,
            batches: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
            removed: AtomicU64::new(0),
            updated: AtomicU64::new(0),
            index_rebuilds: AtomicU64::new(0),
            wal_counters,
            recovery,
        }
    }

    /// The current head snapshot. Queries pin the returned `Arc` for
    /// their whole evaluation; later mutations cannot disturb it.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        // Poison recovery: the guarded value is a single Arc, replaced
        // atomically — a panicking writer cannot leave it half-updated.
        Arc::clone(&self.current.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// The store's maintenance configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// A consistent view of the mutation counters.
    pub fn stats(&self) -> StoreStats {
        let snap = self.snapshot();
        StoreStats {
            epoch: snap.epoch,
            batches: self.batches.load(Ordering::Relaxed),
            inserted: self.inserted.load(Ordering::Relaxed),
            removed: self.removed.load(Ordering::Relaxed),
            updated: self.updated.load(Ordering::Relaxed),
            index_rebuilds: self.index_rebuilds.load(Ordering::Relaxed),
            index_stale_ops: snap.index.as_ref().map(|i| i.stale_ops()),
            index_partial_rebuilds: snap.index.as_ref().map(|i| i.partial_rebuilds()),
            wal: self
                .wal_counters
                .as_ref()
                .map(|c| c.stats(self.recovery.unwrap_or_default())),
        }
    }

    /// Applies one mutation batch atomically: removals, then updates,
    /// then inserts, against a private clone of the head snapshot; on
    /// success the epoch is bumped, the index (if any) is maintained
    /// incrementally, and the new snapshot becomes the head in a single
    /// swap. On error nothing changes. An empty batch is a no-op that
    /// keeps the current epoch.
    pub fn apply(&self, batch: &MutationBatch) -> Result<MutationReceipt, MutationError> {
        self.apply_logged(batch, None)
    }

    /// [`GraphStore::apply`] with an optional client-supplied
    /// `mutation_id` for at-most-once semantics: when the store is
    /// durable and the id was already applied, nothing changes and the
    /// original receipt is returned with [`MutationReceipt::replayed`]
    /// set. On a durable store the batch is WAL-appended and flushed
    /// **before** the new epoch is published; a durability failure
    /// refuses the batch ([`MutationError::Durability`]) with nothing
    /// observable changed.
    pub fn apply_logged(
        &self,
        batch: &MutationBatch,
        mutation_id: Option<&str>,
    ) -> Result<MutationReceipt, MutationError> {
        let mut writer = self.write.lock().unwrap_or_else(|p| p.into_inner());
        if let (Some(durable), Some(id)) = (writer.durable.as_ref(), mutation_id) {
            if let Some(entry) = durable.dedup.get(id) {
                return Ok(MutationReceipt {
                    epoch: entry.epoch,
                    inserted: entry.inserted,
                    removed: entry.removed,
                    updated: entry.updated,
                    maintenance: IndexMaintenance::None,
                    replayed: true,
                });
            }
        }
        let snap = self.snapshot();
        if batch.is_empty() {
            return Ok(MutationReceipt {
                epoch: snap.epoch,
                inserted: 0,
                removed: 0,
                updated: 0,
                maintenance: IndexMaintenance::None,
                replayed: false,
            });
        }

        // The clone shares the stats cache cells of untouched graphs, so
        // a new epoch does not recompute summaries it already has.
        let mut db = (*snap.db).clone();
        let (removed_ids, updated_ids, inserted) = apply_batch_contents(&mut db, batch)?;
        let epoch = snap.epoch + 1;
        db.set_epoch(epoch);

        // Durability before ack: the record must be on the log (flushed
        // per the fsync policy) before any reader or responder can see
        // the new epoch.
        if let Some(durable) = writer.durable.as_mut() {
            durable.wal.append(epoch, mutation_id, batch)?;
        }

        // Index maintenance on a private clone of the old epoch's index.
        let (index, maintenance) = match &snap.index {
            None => (None, IndexMaintenance::None),
            Some(old) => {
                let mut idx = (**old).clone();
                let outcome = idx.apply_batch(&db, &removed_ids, &updated_ids, inserted);
                let maintenance = match outcome {
                    MaintenanceOutcome::Rebuilt => {
                        self.index_rebuilds.fetch_add(1, Ordering::Relaxed);
                        IndexMaintenance::Rebuilt
                    }
                    MaintenanceOutcome::Incremental
                        if idx.stale_ops() > self.config.staleness_budget =>
                    {
                        idx.partial_rebuild(&db);
                        IndexMaintenance::Partial
                    }
                    MaintenanceOutcome::Incremental => IndexMaintenance::Incremental,
                };
                (Some(Arc::new(idx)), maintenance)
            }
        };

        let receipt = MutationReceipt {
            epoch,
            inserted,
            removed: removed_ids.len(),
            updated: updated_ids.len(),
            maintenance,
            replayed: false,
        };
        let db = Arc::new(db);
        let next = Arc::new(Snapshot::capture(Arc::clone(&db), index));
        *self.current.lock().unwrap_or_else(|p| p.into_inner()) = next;
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.inserted.fetch_add(inserted as u64, Ordering::Relaxed);
        self.removed
            .fetch_add(removed_ids.len() as u64, Ordering::Relaxed);
        self.updated
            .fetch_add(updated_ids.len() as u64, Ordering::Relaxed);
        if let Some(durable) = writer.durable.as_mut() {
            if let Some(id) = mutation_id {
                durable.dedup.insert(
                    id.to_owned(),
                    DedupEntry {
                        epoch,
                        inserted,
                        removed: removed_ids.len(),
                        updated: updated_ids.len(),
                    },
                );
            }
            durable.wal.after_publish(&db, &durable.dedup);
        }
        Ok(receipt)
    }
}

/// Applies a batch's removals, updates and inserts to `db` in the fixed
/// batch order, **without** bumping the epoch. Shared between the live
/// writer path and WAL replay, so a replayed record reproduces exactly
/// what the original application did.
pub(crate) fn apply_batch_contents(
    db: &mut GraphDatabase,
    batch: &MutationBatch,
) -> Result<(Vec<usize>, Vec<usize>, usize), MutationError> {
    // Removals first (descending ids so each removal's shift cannot
    // disturb the next).
    let mut removed_ids: Vec<usize> = Vec::new();
    for name in &batch.removes {
        let id = db
            .find_by_name(name)
            .ok_or_else(|| MutationError::UnknownGraph(name.clone()))?
            .index();
        if !removed_ids.contains(&id) {
            removed_ids.push(id);
        }
    }
    removed_ids.sort_unstable_by(|a, b| b.cmp(a));
    for &id in &removed_ids {
        db.remove(GraphId(id));
    }

    // In-place updates (ids are post-removal).
    let mut updated_ids: Vec<usize> = Vec::new();
    for (name, text) in &batch.updates {
        let id = db
            .find_by_name(name)
            .ok_or_else(|| MutationError::UnknownGraph(name.clone()))?
            .index();
        let mut graphs = parse_database(text, db.vocab_mut())?;
        let one = match (graphs.pop(), graphs.len()) {
            (Some(g), 0) => g,
            (got, rest) => {
                return Err(MutationError::NotOneGraph {
                    name: name.clone(),
                    found: rest + usize::from(got.is_some()),
                })
            }
        };
        db.replace(GraphId(id), one);
        if !updated_ids.contains(&id) {
            updated_ids.push(id);
        }
    }

    // Appends.
    let mut inserted = 0usize;
    for text in &batch.inserts {
        for graph in parse_database(text, db.vocab_mut())? {
            db.push(graph);
            inserted += 1;
        }
    }
    Ok((removed_ids, updated_ids, inserted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::{graph_similarity_skyline, QueryOptions};
    use gss_datasets::paper::figure3_database;

    fn store(config: StoreConfig) -> GraphStore {
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        GraphStore::new(Arc::new(db), config)
    }

    fn indexed_config(budget: u64) -> StoreConfig {
        StoreConfig {
            index: Some(PivotIndexConfig::default()),
            staleness_budget: budget,
        }
    }

    #[test]
    fn epochs_bump_and_snapshots_are_isolated() {
        let store = store(StoreConfig::default());
        let before = store.snapshot();
        assert_eq!(before.epoch(), 0);

        let receipt = store
            .apply(&MutationBatch::default().insert("t extra\nv 0 C\nv 1 C\ne 0 1 -\n"))
            .unwrap();
        assert_eq!(receipt.epoch, 1);
        assert_eq!(receipt.inserted, 1);
        assert_eq!(receipt.maintenance, IndexMaintenance::None);

        let after = store.snapshot();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.database().len(), before.database().len() + 1);
        assert_ne!(after.fingerprint(), before.fingerprint());
        // The pinned snapshot still evaluates against the old content.
        assert_eq!(before.database().len(), 7);
        assert_eq!(before.database().epoch(), 0);
    }

    #[test]
    fn epoch_clones_share_the_compact_arena() {
        let data = figure3_database();
        let mut db = GraphDatabase::from_parts(data.vocab, data.graphs);
        db.compact();
        let n = db.len();
        let store = GraphStore::new(Arc::new(db), StoreConfig::default());
        let before = store.snapshot();
        store
            .apply(&MutationBatch::default().insert("t extra\nv 0 C\n"))
            .unwrap();
        let after = store.snapshot();

        // The new epoch appends an owned slot; the original graphs still
        // read from the arena rather than being deep-copied.
        let mem = after.database().memory_stats();
        assert_eq!(mem.graphs, n + 1);
        assert_eq!(mem.arena_graphs, n);

        // The lazy materialization cells are shared across epochs: a graph
        // materialized through the old snapshot (after the clone was taken)
        // shows up as materialized in the new one too.
        assert_eq!(after.database().memory_stats().materialized, 0);
        let _ = before.database().get(GraphId(2));
        assert_eq!(before.database().memory_stats().materialized, 1);
        assert_eq!(after.database().memory_stats().materialized, 1);

        // And the compact epoch answers queries byte-identically to the
        // pointer-rich original.
        let q = figure3_database().query;
        let compact_r = graph_similarity_skyline(before.database(), &q, &QueryOptions::default());
        let fresh = figure3_database();
        let plain = GraphDatabase::from_parts(fresh.vocab, fresh.graphs);
        let plain_r = graph_similarity_skyline(&plain, &q, &QueryOptions::default());
        assert_eq!(compact_r.skyline, plain_r.skyline);
        assert_eq!(compact_r.gcs, plain_r.gcs);
    }

    #[test]
    fn round_trip_content_never_reuses_a_fingerprint() {
        let store = store(StoreConfig::default());
        let fp0 = store.snapshot().fingerprint();
        let text = {
            let snap = store.snapshot();
            // Serialize graph g8 alone, then remove + re-insert it.
            let db = snap.database();
            let name = db.get(GraphId(db.len() - 1)).name().to_owned();
            let full = db.to_text();
            let start = full.find(&format!("t {name}")).unwrap();
            (name, full[start..].to_owned())
        };
        store
            .apply(&MutationBatch::default().remove(&text.0))
            .unwrap();
        store
            .apply(&MutationBatch::default().insert(&text.1))
            .unwrap();
        let snap = store.snapshot();
        assert_eq!(snap.epoch(), 2);
        assert_eq!(snap.database().len(), 7, "content restored");
        assert_ne!(snap.fingerprint(), fp0, "epoch keeps fingerprints unique");
    }

    #[test]
    fn failed_batches_change_nothing() {
        let store = store(StoreConfig::default());
        let before = store.snapshot();
        assert!(matches!(
            store.apply(&MutationBatch::default().remove("no-such-graph")),
            Err(MutationError::UnknownGraph(_))
        ));
        assert!(matches!(
            store.apply(&MutationBatch::default().insert("not valid text")),
            Err(MutationError::Parse(_))
        ));
        let name = before.database().get(GraphId(0)).name().to_owned();
        assert!(matches!(
            store.apply(&MutationBatch::default().update(&name, "t a\nv 0 C\nt b\nv 0 C\n")),
            Err(MutationError::NotOneGraph { .. })
        ));
        let after = store.snapshot();
        assert_eq!(after.epoch(), 0);
        assert_eq!(after.fingerprint(), before.fingerprint());
        assert_eq!(store.stats().batches, 0);

        // Empty batches are no-ops, not epoch bumps.
        let receipt = store.apply(&MutationBatch::default()).unwrap();
        assert_eq!(receipt.epoch, 0);
        assert_eq!(store.epoch(), 0);
    }

    #[test]
    fn maintained_index_tracks_every_epoch() {
        let store = store(indexed_config(1_000));
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        let q = data.query;

        // Mutate: insert, update, remove (non-pivot names picked from the
        // tail of the database).
        let last = db.get(GraphId(db.len() - 1)).name().to_owned();
        store
            .apply(&MutationBatch::default().insert("t n1\nv 0 C\nv 1 N\ne 0 1 -\n"))
            .unwrap();
        store
            .apply(
                &MutationBatch::default()
                    .update(&last, "t swapped\nv 0 C\nv 1 C\nv 2 C\ne 0 1 -\ne 1 2 -\n"),
            )
            .unwrap();
        let receipt = store.apply(&MutationBatch::default().remove("n1")).unwrap();
        assert_eq!(receipt.epoch, 3);

        let snap = store.snapshot();
        let idx = snap.index().expect("configured index").clone();
        assert!(idx.validate(snap.database()).is_ok());

        // Query answers through the maintained index equal a from-scratch
        // rebuild.
        let rebuilt = Arc::new(PivotIndex::build(snap.database(), &idx.config()));
        let with_maintained = graph_similarity_skyline(
            snap.database(),
            &q,
            &QueryOptions::default().with_index(idx),
        );
        let with_rebuilt = graph_similarity_skyline(
            snap.database(),
            &q,
            &QueryOptions::default().with_index(rebuilt),
        );
        assert_eq!(with_maintained.skyline, with_rebuilt.skyline);
        assert_eq!(with_maintained.dominated, with_rebuilt.dominated);

        let stats = store.stats();
        assert_eq!(stats.epoch, 3);
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.updated, 1);
        assert_eq!(stats.removed, 1);
    }

    #[test]
    fn staleness_budget_triggers_partial_rebuilds() {
        let store = store(indexed_config(1));
        let mut partials = 0;
        for i in 0..4 {
            let receipt = store
                .apply(
                    &MutationBatch::default()
                        .insert(&format!("t churn{i}\nv 0 C\nv 1 O\ne 0 1 =\n")),
                )
                .unwrap();
            if receipt.maintenance == IndexMaintenance::Partial {
                partials += 1;
            }
        }
        assert!(partials >= 1, "budget of 1 must trip partial rebuilds");
        let stats = store.stats();
        assert_eq!(stats.index_partial_rebuilds, Some(partials));
        assert!(stats.index_stale_ops.expect("indexed") <= 1);
    }

    #[test]
    fn concurrent_writers_serialize_cleanly() {
        let store = Arc::new(store(StoreConfig::default()));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..8 {
                        store
                            .apply(
                                &MutationBatch::default().insert(&format!("t w{t}x{i}\nv 0 C\n")),
                            )
                            .unwrap();
                    }
                });
            }
        });
        let snap = store.snapshot();
        assert_eq!(snap.epoch(), 32, "every batch got its own epoch");
        assert_eq!(snap.database().len(), 7 + 32);
        assert_eq!(store.stats().inserted, 32);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gss-store-test-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn figure3_arc() -> Arc<GraphDatabase> {
        let data = figure3_database();
        Arc::new(GraphDatabase::from_parts(data.vocab, data.graphs))
    }

    #[test]
    fn durable_store_recovers_acked_mutations() {
        let dir = temp_dir("recover");
        let fp = {
            let store = GraphStore::open_durable(
                figure3_arc(),
                StoreConfig::default(),
                WalConfig::new(&dir),
            )
            .unwrap();
            for i in 0..3 {
                store
                    .apply(&MutationBatch::default().insert(&format!("t d{i}\nv 0 C\n")))
                    .unwrap();
            }
            let stats = store.stats().wal.unwrap();
            assert_eq!(stats.appended, 3);
            assert_eq!(stats.fsyncs, 3, "fsync always");
            assert_eq!(stats.last_durable_epoch, 3);
            store.snapshot().fingerprint()
        };
        // Reopen with an EMPTY initial database: recovery must restore
        // state from disk and ignore it.
        let store = GraphStore::open_durable(
            Arc::new(GraphDatabase::new()),
            StoreConfig::default(),
            WalConfig::new(&dir),
        )
        .unwrap();
        assert_eq!(store.epoch(), 3);
        assert_eq!(store.snapshot().fingerprint(), fp);
        assert_eq!(store.snapshot().database().len(), 7 + 3);
        let stats = store.stats().wal.unwrap();
        assert_eq!(stats.recovery.replayed, 3);
        assert!(!stats.recovery.truncated_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replayed_mutation_id_never_double_applies() {
        let dir = temp_dir("dedup");
        let batch = MutationBatch::default().insert("t once\nv 0 C\n");
        {
            let store = GraphStore::open_durable(
                figure3_arc(),
                StoreConfig::default(),
                WalConfig::new(&dir),
            )
            .unwrap();
            let first = store.apply_logged(&batch, Some("m-1")).unwrap();
            assert_eq!(first.epoch, 1);
            assert!(!first.replayed);
            let retry = store.apply_logged(&batch, Some("m-1")).unwrap();
            assert!(retry.replayed);
            assert_eq!(retry.epoch, 1, "original receipt, not a new epoch");
            assert_eq!(retry.inserted, 1);
            assert_eq!(store.epoch(), 1, "epoch advanced exactly once");
        }
        // The dedup log survives recovery: a retry after restart still
        // replays instead of double-applying.
        let store =
            GraphStore::open_durable(figure3_arc(), StoreConfig::default(), WalConfig::new(&dir))
                .unwrap();
        let retry = store.apply_logged(&batch, Some("m-1")).unwrap();
        assert!(retry.replayed);
        assert_eq!(retry.epoch, 1);
        assert_eq!(store.epoch(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_crash_recovers_to_the_acked_prefix() {
        let dir = temp_dir("crash");
        let mut config = WalConfig::new(&dir);
        config.faults = Arc::new(FaultPlan::parse("wal.append@3=crash").unwrap());
        let store =
            GraphStore::open_durable(figure3_arc(), StoreConfig::default(), config).unwrap();
        let batch = |i: usize| MutationBatch::default().insert(&format!("t c{i}\nv 0 C\n"));
        store.apply(&batch(0)).unwrap();
        store.apply(&batch(1)).unwrap();
        // Third append crashes mid-record: the batch is refused and the
        // WAL is poisoned (the simulated process is dead).
        assert!(matches!(
            store.apply(&batch(2)),
            Err(MutationError::Durability(WalError::Poisoned(_)))
        ));
        assert!(matches!(
            store.apply(&batch(3)),
            Err(MutationError::Durability(WalError::Poisoned(_)))
        ));
        assert_eq!(store.epoch(), 2, "unacked batch never published");
        drop(store);

        // Recovery truncates the torn record and lands exactly on the
        // acked prefix: fingerprint equals a never-crashed oracle that
        // saw the two acked batches.
        let recovered = GraphStore::open_durable(
            Arc::new(GraphDatabase::new()),
            StoreConfig::default(),
            WalConfig::new(&dir),
        )
        .unwrap();
        let oracle = GraphStore::new(figure3_arc(), StoreConfig::default());
        oracle.apply(&batch(0)).unwrap();
        oracle.apply(&batch(1)).unwrap();
        assert_eq!(recovered.epoch(), 2);
        assert_eq!(
            recovered.snapshot().fingerprint(),
            oracle.snapshot().fingerprint()
        );
        let stats = recovered.stats().wal.unwrap();
        assert_eq!(stats.recovery.replayed, 2);
        assert!(stats.recovery.truncated_tail, "torn tail was truncated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_bound_replay_and_prune_segments() {
        let dir = temp_dir("ckpt");
        let mut config = WalConfig::new(&dir);
        config.checkpoint_every = 2;
        let fp = {
            let store =
                GraphStore::open_durable(figure3_arc(), StoreConfig::default(), config).unwrap();
            for i in 0..5 {
                store
                    .apply(&MutationBatch::default().insert(&format!("t k{i}\nv 0 C\n")))
                    .unwrap();
            }
            let stats = store.stats().wal.unwrap();
            assert_eq!(stats.checkpoints, 3, "initial + two periodic");
            store.snapshot().fingerprint()
        };
        let inspection = wal::inspect(&dir).unwrap();
        assert_eq!(inspection.recoverable, Some((4, 5)));
        assert!(
            inspection.segments.iter().all(|s| s.start_epoch >= 5),
            "segments covered by the checkpoint were pruned"
        );
        let store = GraphStore::open_durable(
            Arc::new(GraphDatabase::new()),
            StoreConfig::default(),
            WalConfig::new(&dir),
        )
        .unwrap();
        assert_eq!(store.epoch(), 5);
        assert_eq!(store.snapshot().fingerprint(), fp);
        assert_eq!(
            store.stats().wal.unwrap().recovery.replayed,
            1,
            "only the post-checkpoint tail replays"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_indexed_store_rebuilds_index_on_recovery() {
        let dir = temp_dir("indexed");
        let q = figure3_database().query;
        let expected = {
            let store = GraphStore::open_durable(
                figure3_arc(),
                indexed_config(1_000),
                WalConfig::new(&dir),
            )
            .unwrap();
            store
                .apply(&MutationBatch::default().insert("t ix\nv 0 C\nv 1 N\ne 0 1 -\n"))
                .unwrap();
            let snap = store.snapshot();
            graph_similarity_skyline(
                snap.database(),
                &q,
                &QueryOptions::default().with_index(snap.index().unwrap().clone()),
            )
        };
        let store = GraphStore::open_durable(
            Arc::new(GraphDatabase::new()),
            indexed_config(1_000),
            WalConfig::new(&dir),
        )
        .unwrap();
        let snap = store.snapshot();
        let idx = snap.index().expect("index rebuilt after recovery").clone();
        assert!(idx.validate(snap.database()).is_ok());
        let got = graph_similarity_skyline(
            snap.database(),
            &q,
            &QueryOptions::default().with_index(idx),
        );
        assert_eq!(got.skyline, expected.skyline);
        assert_eq!(got.dominated, expected.dominated);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
