//! Deterministic, seedable fault injection for the durability stack.
//!
//! Chaos testing is only useful when a failure is **reproducible**. Every
//! injection site compiled into the WAL append path, the checkpoint
//! writer and the server connection I/O asks its [`FaultPlan`] whether to
//! fail *this* hit, and the plan answers deterministically from a parsed
//! spec — hit counters per point, plus a seeded xorshift generator for
//! probabilistic clauses. Plans are plain values shared by `Arc`, so two
//! stores (or two tests) in one process never interfere, and the default
//! empty plan short-circuits to a no-op.
//!
//! # Spec syntax
//!
//! A plan is a `;`-separated list of clauses, each `point@when=action`:
//!
//! | `when`     | fires on                                  |
//! |------------|-------------------------------------------|
//! | `N`        | exactly the Nth hit of the point (1-based)|
//! | `N+`       | the Nth hit and every later one           |
//! | `every-N`  | every Nth hit                             |
//! | `pN`       | each hit with probability N/1000 (seeded) |
//!
//! Actions: `err` (injected I/O error), `short` (partial write, then
//! error), `interrupted` / `wouldblock` (transient-kind errors),
//! `reset` (connection reset), `crash` (simulated `kill -9`: the
//! operation tears mid-write and the component refuses further work, as
//! a dead process would).
//!
//! ```
//! use gss_store::fault::{points, FaultAction, FaultPlan};
//!
//! let plan = FaultPlan::parse("wal.append@2=crash;conn.write@every-3=reset").unwrap();
//! assert_eq!(plan.fire(points::WAL_APPEND), None);
//! assert_eq!(plan.fire(points::WAL_APPEND), Some(FaultAction::Crash));
//! ```

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::Mutex;

/// Named injection points compiled into the durability stack. The spec
/// language accepts arbitrary point names; these are the ones that
/// actually fire in this workspace.
pub mod points {
    /// WAL record append (`gss-store`), before the epoch is published.
    pub const WAL_APPEND: &str = "wal.append";
    /// WAL fsync per the configured [`crate::wal::FsyncPolicy`].
    pub const WAL_FSYNC: &str = "wal.fsync";
    /// Checkpoint serialization + atomic rename (`gss-store`).
    pub const CHECKPOINT_WRITE: &str = "checkpoint.write";
    /// Server-side response write on a client connection (`gss-server`).
    pub const CONN_WRITE: &str = "conn.write";
}

/// What an injection point does when its clause fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with an injected I/O error.
    Err,
    /// Write a partial prefix, then fail (exercises rollback paths).
    Short,
    /// Fail with `ErrorKind::Interrupted` (transient; retry-safe).
    Interrupted,
    /// Fail with `ErrorKind::WouldBlock` (readiness storm).
    WouldBlock,
    /// Drop the peer: the server shuts the connection down mid-response.
    Reset,
    /// Simulated `kill -9`: the operation tears mid-write and the
    /// component poisons itself, as a dead process would.
    Crash,
}

impl FaultAction {
    /// The injected error this action surfaces to the failed operation.
    pub fn to_io_error(self, point: &str) -> io::Error {
        let kind = match self {
            FaultAction::Interrupted => io::ErrorKind::Interrupted,
            FaultAction::WouldBlock => io::ErrorKind::WouldBlock,
            FaultAction::Reset => io::ErrorKind::ConnectionReset,
            FaultAction::Err | FaultAction::Short | FaultAction::Crash => io::ErrorKind::Other,
        };
        io::Error::new(kind, format!("injected fault at {point}: {self:?}"))
    }
}

/// When one clause fires, relative to the point's 1-based hit counter.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum When {
    Exact(u64),
    From(u64),
    Every(u64),
    /// Probability per hit, in permille, drawn from the seeded generator.
    Chance(u64),
}

#[derive(Copy, Clone, Debug)]
struct Clause {
    when: When,
    action: FaultAction,
}

#[derive(Default)]
struct PlanState {
    hits: HashMap<String, u64>,
    rng: u64,
}

const DEFAULT_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// A parsed, deterministic fault plan (see the module docs for syntax).
pub struct FaultPlan {
    clauses: HashMap<String, Vec<Clause>>,
    state: Mutex<PlanState>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("points", &self.clauses.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl FaultPlan {
    /// The empty plan: every [`FaultPlan::fire`] call is a cheap no-op.
    pub fn none() -> FaultPlan {
        FaultPlan {
            clauses: HashMap::new(),
            state: Mutex::new(PlanState {
                hits: HashMap::new(),
                rng: DEFAULT_SEED,
            }),
        }
    }

    /// Parses a plan spec with the default probabilistic seed.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        FaultPlan::parse_seeded(spec, DEFAULT_SEED)
    }

    /// Parses a plan spec, seeding the generator behind `pN` clauses so
    /// probabilistic chaos runs replay byte-for-byte.
    pub fn parse_seeded(spec: &str, seed: u64) -> Result<FaultPlan, FaultSpecError> {
        let mut clauses: HashMap<String, Vec<Clause>> = HashMap::new();
        for raw in spec.split([';', ',']) {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (point, rest) = raw
                .split_once('@')
                .ok_or_else(|| FaultSpecError::new(raw, "expected point@when=action"))?;
            let (when, action) = rest
                .split_once('=')
                .ok_or_else(|| FaultSpecError::new(raw, "expected point@when=action"))?;
            let when = parse_when(when).ok_or_else(|| {
                FaultSpecError::new(raw, "`when` must be N, N+, every-N or pN (N >= 1)")
            })?;
            let action = parse_action(action).ok_or_else(|| {
                FaultSpecError::new(
                    raw,
                    "action must be err, short, interrupted, wouldblock, reset or crash",
                )
            })?;
            clauses
                .entry(point.trim().to_owned())
                .or_default()
                .push(Clause { when, action });
        }
        Ok(FaultPlan {
            clauses,
            state: Mutex::new(PlanState {
                hits: HashMap::new(),
                rng: if seed == 0 { DEFAULT_SEED } else { seed },
            }),
        })
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Registers one hit of `point` and returns the action to inject, if
    /// any clause fires. The empty plan never locks.
    pub fn fire(&self, point: &str) -> Option<FaultAction> {
        if self.clauses.is_empty() {
            return None;
        }
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let counter = state.hits.entry(point.to_owned()).or_insert(0);
        *counter += 1;
        let hit = *counter;
        let clauses = self.clauses.get(point)?;
        for clause in clauses {
            let fired = match clause.when {
                When::Exact(n) => hit == n,
                When::From(n) => hit >= n,
                When::Every(n) => n > 0 && hit.is_multiple_of(n),
                When::Chance(permille) => {
                    let mut x = state.rng;
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    state.rng = x;
                    x % 1000 < permille
                }
            };
            if fired {
                return Some(clause.action);
            }
        }
        None
    }

    /// How many times `point` has been hit so far (fired or not).
    pub fn hits(&self, point: &str) -> u64 {
        let state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.hits.get(point).copied().unwrap_or(0)
    }
}

fn parse_when(s: &str) -> Option<When> {
    let s = s.trim();
    if let Some(n) = s.strip_suffix('+') {
        let n: u64 = n.parse().ok()?;
        return (n >= 1).then_some(When::From(n));
    }
    if let Some(n) = s.strip_prefix("every-") {
        let n: u64 = n.parse().ok()?;
        return (n >= 1).then_some(When::Every(n));
    }
    if let Some(n) = s.strip_prefix('p') {
        if let Ok(permille) = n.parse::<u64>() {
            return (permille <= 1000).then_some(When::Chance(permille));
        }
    }
    let n: u64 = s.parse().ok()?;
    (n >= 1).then_some(When::Exact(n))
}

fn parse_action(s: &str) -> Option<FaultAction> {
    match s.trim() {
        "err" => Some(FaultAction::Err),
        "short" => Some(FaultAction::Short),
        "interrupted" => Some(FaultAction::Interrupted),
        "wouldblock" => Some(FaultAction::WouldBlock),
        "reset" => Some(FaultAction::Reset),
        "crash" => Some(FaultAction::Crash),
        _ => None,
    }
}

/// A malformed fault-plan spec (the offending clause plus what was
/// expected).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpecError {
    clause: String,
    expected: String,
}

impl FaultSpecError {
    fn new(clause: &str, expected: &str) -> FaultSpecError {
        FaultSpecError {
            clause: clause.to_owned(),
            expected: expected.to_owned(),
        }
    }
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fault clause {:?}: {}",
            self.clause, self.expected
        )
    }
}

impl std::error::Error for FaultSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_from_and_every_clauses_fire_deterministically() {
        let plan = FaultPlan::parse("a@2=err;b@3+=reset;c@every-2=short").unwrap();
        assert_eq!(plan.fire("a"), None);
        assert_eq!(plan.fire("a"), Some(FaultAction::Err));
        assert_eq!(plan.fire("a"), None, "exact clauses fire once");

        assert_eq!(plan.fire("b"), None);
        assert_eq!(plan.fire("b"), None);
        assert_eq!(plan.fire("b"), Some(FaultAction::Reset));
        assert_eq!(plan.fire("b"), Some(FaultAction::Reset), "N+ keeps firing");

        assert_eq!(plan.fire("c"), None);
        assert_eq!(plan.fire("c"), Some(FaultAction::Short));
        assert_eq!(plan.fire("c"), None);
        assert_eq!(plan.fire("c"), Some(FaultAction::Short));

        assert_eq!(plan.hits("a"), 3);
        assert_eq!(plan.hits("unknown"), 0);
        assert_eq!(plan.fire("unknown"), None);
        assert_eq!(plan.hits("unknown"), 1, "unknown points still count hits");
    }

    #[test]
    fn probabilistic_clauses_replay_per_seed() {
        let runs = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::parse_seeded("x@p500=err", seed).unwrap();
            (0..64).map(|_| plan.fire("x").is_some()).collect()
        };
        assert_eq!(runs(7), runs(7), "same seed, same chaos");
        assert_ne!(runs(7), runs(8), "different seed, different chaos");
        let fired = runs(7).iter().filter(|&&b| b).count();
        assert!(fired > 8 && fired < 56, "p500 fires roughly half the time");
    }

    #[test]
    fn empty_and_invalid_specs() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" ; , ").unwrap().is_empty());
        assert!(!FaultPlan::parse("wal.append@1=crash").unwrap().is_empty());

        for bad in [
            "no-at-sign",
            "p@1",
            "p@x=err",
            "p@0=err",
            "p@1=explode",
            "p@p1001=err",
            "p@every-0=err",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn io_error_kinds_match_the_action() {
        use std::io::ErrorKind;
        assert_eq!(
            FaultAction::Interrupted.to_io_error("p").kind(),
            ErrorKind::Interrupted
        );
        assert_eq!(
            FaultAction::WouldBlock.to_io_error("p").kind(),
            ErrorKind::WouldBlock
        );
        assert_eq!(
            FaultAction::Reset.to_io_error("p").kind(),
            ErrorKind::ConnectionReset
        );
        assert_eq!(FaultAction::Err.to_io_error("p").kind(), ErrorKind::Other);
    }
}
