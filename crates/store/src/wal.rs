//! Checksummed write-ahead log + checkpoint recovery for [`crate::GraphStore`].
//!
//! Durability contract: a mutation batch is appended to the log — and
//! flushed per the configured [`FsyncPolicy`] — **before** its epoch is
//! published and before the server can ack it. On restart,
//! [`crate::GraphStore::open_durable`] loads the newest valid checkpoint,
//! replays the WAL tail on top of it, and hands back a store whose
//! fingerprint equals the pre-crash store over exactly the acked prefix
//! of mutations.
//!
//! # On-disk format
//!
//! A data dir holds two artifact kinds, both wrapped in the workspace
//! codec framing (`gss_core::database::codec`: 8-byte magic, `u32`
//! version, payload, trailing FNV-1a checksum):
//!
//! * **Segments** (`wal-<start-epoch>.log`): a run of length-prefixed
//!   records (`u32` frame length, then one framed record). Each record
//!   carries its epoch, the optional client `mutation_id`, and the
//!   batch's removes/updates/inserts verbatim. Segments rotate at
//!   [`WalConfig::segment_bytes`] and after every checkpoint.
//! * **Checkpoints** (`checkpoint-<epoch>.ckpt`): the full database text
//!   at one epoch plus its fingerprint and the mutation-id dedup log.
//!   Written to a temp file, fsynced, then atomically renamed; after a
//!   successful checkpoint all older segments are pruned, bounding
//!   replay time. The pivot index is **not** checkpointed: it is rebuilt
//!   once after replay, which keeps recovery byte-stable under vocabulary
//!   re-interning.
//!
//! # Torn tails vs. interior corruption
//!
//! A crash mid-append leaves a partial record at the end of the last
//! segment. Recovery detects it (short read or checksum mismatch),
//! truncates the file back to the last intact record, and reports it in
//! [`RecoveryStats::truncated_tail`] — the torn record was never acked,
//! so dropping it preserves the acked-prefix contract. Corruption that
//! is **not** confined to the tail (a flipped byte with intact records
//! after it, or damage in a non-final segment) is refused with
//! [`WalError::Ambiguous`]: replaying around a hole could resurrect a
//! state no client ever observed.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gss_core::database::codec::{CodecError, Reader, Writer};
use gss_core::database::GraphDatabase;

use crate::fault::{points, FaultAction, FaultPlan};
use crate::{apply_batch_contents, MutationBatch, MutationError};

const WAL_MAGIC: &[u8; 8] = b"GSSWAL\0\0";
const WAL_VERSION: u32 = 1;
const CKPT_MAGIC: &[u8; 8] = b"GSSCKPT\0";
const CKPT_VERSION: u32 = 1;
/// Smallest possible codec frame: magic + version + checksum.
const MIN_FRAME: usize = 8 + 4 + 8;
/// Replayed-ack receipts retained for mutation-id deduplication.
pub(crate) const DEDUP_CAP: usize = 1024;

/// When appended WAL records reach the platter.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: an acked mutation is always durable.
    #[default]
    Always,
    /// `fsync` after every N records: bounded post-crash loss window in
    /// exchange for amortized flush cost.
    EveryN(u64),
    /// Never `fsync` from the append path (checkpoints still sync):
    /// durability rides on the OS page cache.
    Off,
}

impl FsyncPolicy {
    /// Parses `always`, `off` or `every-N` (N >= 1).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s.trim() {
            "always" => Some(FsyncPolicy::Always),
            "off" => Some(FsyncPolicy::Off),
            other => {
                let n: u64 = other.strip_prefix("every-")?.parse().ok()?;
                (n >= 1).then_some(FsyncPolicy::EveryN(n))
            }
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every-{n}"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// Durability knobs for [`crate::GraphStore::open_durable`].
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// The data directory holding segments and checkpoints (created on
    /// open if missing).
    pub dir: PathBuf,
    /// Flush policy for appended records.
    pub fsync: FsyncPolicy,
    /// Mutation batches between snapshot checkpoints (0 disables
    /// periodic checkpoints; one is still written when a fresh dir is
    /// initialized).
    pub checkpoint_every: u64,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Fault plan compiled into the append/fsync/checkpoint paths (the
    /// empty plan injects nothing).
    pub faults: Arc<FaultPlan>,
}

impl WalConfig {
    /// Defaults: fsync `always`, checkpoint every 256 batches, 8 MiB
    /// segments, no fault injection.
    pub fn new(dir: impl Into<PathBuf>) -> WalConfig {
        WalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: 256,
            segment_bytes: 8 * 1024 * 1024,
            faults: Arc::new(FaultPlan::none()),
        }
    }
}

/// What recovery did at open time.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// True when a torn tail (partial final record) was truncated.
    pub truncated_tail: bool,
}

/// A point-in-time view of the WAL counters (the `wal` section of the
/// server's `stats` verb).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since open.
    pub appended: u64,
    /// `fsync` calls issued from the append path.
    pub fsyncs: u64,
    /// Checkpoints written (including the one initializing a fresh dir).
    pub checkpoints: u64,
    /// Checkpoint attempts that failed (durability still holds via the
    /// WAL; the next due checkpoint retries).
    pub checkpoint_failures: u64,
    /// Highest epoch known to be on stable storage.
    pub last_durable_epoch: u64,
    /// What recovery did at open time.
    pub recovery: RecoveryStats,
}

#[derive(Debug, Default)]
pub(crate) struct WalCounters {
    appended: AtomicU64,
    fsyncs: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_failures: AtomicU64,
    last_durable_epoch: AtomicU64,
}

impl WalCounters {
    pub(crate) fn stats(&self, recovery: RecoveryStats) -> WalStats {
        WalStats {
            appended: self.appended.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
            last_durable_epoch: self.last_durable_epoch.load(Ordering::Relaxed),
            recovery,
        }
    }
}

/// Why the durability layer refused an operation or a log.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Corruption that is not confined to the log tail; replaying around
    /// it could resurrect a state no client observed, so recovery refuses.
    Ambiguous {
        /// The damaged file.
        file: String,
        /// Byte offset of the first unreadable record.
        offset: u64,
        /// What failed to decode.
        detail: String,
    },
    /// The data dir holds WAL segments but no loadable checkpoint.
    NoCheckpoint {
        /// The directory (plus why the newest checkpoint was rejected).
        dir: String,
    },
    /// Replay hit an epoch discontinuity (a missing or reordered record).
    EpochGap {
        /// The segment file.
        file: String,
        /// The epoch replay expected next.
        expected: u64,
        /// The epoch actually found.
        found: u64,
    },
    /// A logged batch no longer applies to the recovered database.
    Replay {
        /// The epoch of the failing record.
        epoch: u64,
        /// The underlying application error.
        error: Box<MutationError>,
    },
    /// An earlier failure left the log in an unknown state; mutations are
    /// refused until the process restarts and re-runs recovery.
    Poisoned(String),
    /// The encoded record exceeds the `u32` frame-length limit.
    Oversized {
        /// The encoded size.
        bytes: usize,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Ambiguous {
                file,
                offset,
                detail,
            } => write!(
                f,
                "ambiguous wal log {file} at byte {offset}: {detail} \
                 (corruption is not confined to the tail; refusing to guess)"
            ),
            WalError::NoCheckpoint { dir } => {
                write!(
                    f,
                    "data dir {dir} holds wal segments but no loadable checkpoint"
                )
            }
            WalError::EpochGap {
                file,
                expected,
                found,
            } => write!(
                f,
                "wal replay gap in {file}: expected epoch {expected}, found {found}"
            ),
            WalError::Replay { epoch, error } => {
                write!(f, "wal record for epoch {epoch} no longer applies: {error}")
            }
            WalError::Poisoned(reason) => write!(
                f,
                "wal is poisoned ({reason}); mutations are refused until restart"
            ),
            WalError::Oversized { bytes } => {
                write!(
                    f,
                    "wal record of {bytes} bytes exceeds the frame-length limit"
                )
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Replay { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One durable ack receipt retained for mutation-id deduplication.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) struct DedupEntry {
    pub epoch: u64,
    pub inserted: usize,
    pub removed: usize,
    pub updated: usize,
}

/// Bounded insertion-ordered `mutation_id -> receipt` map. Persisted in
/// checkpoints and rebuilt from WAL replay, so a retried mutation is
/// recognized across restarts.
#[derive(Debug, Default)]
pub(crate) struct DedupLog {
    map: HashMap<String, DedupEntry>,
    order: VecDeque<String>,
}

impl DedupLog {
    pub(crate) fn from_entries(entries: Vec<(String, DedupEntry)>) -> DedupLog {
        let mut log = DedupLog::default();
        for (id, entry) in entries {
            log.insert(id, entry);
        }
        log
    }

    pub(crate) fn get(&self, id: &str) -> Option<DedupEntry> {
        self.map.get(id).copied()
    }

    pub(crate) fn insert(&mut self, id: String, entry: DedupEntry) {
        if self.map.insert(id.clone(), entry).is_none() {
            self.order.push_back(id);
        }
        while self.order.len() > DEDUP_CAP {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
    }

    fn entries(&self) -> impl Iterator<Item = (&str, DedupEntry)> + '_ {
        self.order
            .iter()
            .filter_map(|id| self.map.get(id).map(|e| (id.as_str(), *e)))
    }

    fn len(&self) -> usize {
        self.order.len()
    }
}

/// One decoded WAL record.
#[derive(Clone, Debug)]
pub(crate) struct WalRecord {
    pub epoch: u64,
    pub mutation_id: Option<String>,
    pub batch: MutationBatch,
}

/// Encodes one record frame (magic/version/payload/checksum, **without**
/// the `u32` length prefix the segment adds).
pub(crate) fn encode_record(
    epoch: u64,
    mutation_id: Option<&str>,
    batch: &MutationBatch,
) -> Vec<u8> {
    let mut w = Writer::new(WAL_MAGIC, WAL_VERSION);
    w.u64(epoch);
    match mutation_id {
        Some(id) => {
            w.u32(1);
            w.str(id);
        }
        None => w.u32(0),
    }
    w.usize(batch.removes.len());
    for name in &batch.removes {
        w.str(name);
    }
    w.usize(batch.updates.len());
    for (name, text) in &batch.updates {
        w.str(name);
        w.str(text);
    }
    w.usize(batch.inserts.len());
    for text in &batch.inserts {
        w.str(text);
    }
    w.finish()
}

fn decode_record(frame: &[u8]) -> Result<WalRecord, CodecError> {
    let (mut r, _version) = Reader::new(frame, WAL_MAGIC, WAL_VERSION)?;
    let epoch = r.u64()?;
    let mutation_id = match r.u32()? {
        0 => None,
        1 => Some(r.str()?.to_owned()),
        flag => {
            return Err(CodecError::Invalid(format!(
                "mutation-id flag must be 0 or 1, got {flag}"
            )))
        }
    };
    let mut batch = MutationBatch::default();
    for _ in 0..r.usize()? {
        batch.removes.push(r.str()?.to_owned());
    }
    for _ in 0..r.usize()? {
        let name = r.str()?.to_owned();
        let text = r.str()?.to_owned();
        batch.updates.push((name, text));
    }
    for _ in 0..r.usize()? {
        batch.inserts.push(r.str()?.to_owned());
    }
    r.finish()?;
    Ok(WalRecord {
        epoch,
        mutation_id,
        batch,
    })
}

/// How a segment scan ended.
enum ScanEnd {
    /// Every byte decoded into intact records.
    Clean,
    /// Unreadable bytes at `offset` with **no** intact record after them
    /// — the signature of a torn (partially written) final record.
    Torn { offset: u64, detail: String },
    /// Unreadable bytes at `offset` with record framing visible later —
    /// interior corruption recovery must refuse.
    Ambiguous { offset: u64, detail: String },
}

struct SegmentScan {
    records: Vec<WalRecord>,
    end: ScanEnd,
}

fn scan_segment(data: &[u8]) -> SegmentScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        if pos >= data.len() {
            return SegmentScan {
                records,
                end: ScanEnd::Clean,
            };
        }
        let Some(len_bytes) = data.get(pos..pos + 4) else {
            return SegmentScan {
                records,
                end: classify(data, pos, "short frame-length prefix".to_owned()),
            };
        };
        let len = match <[u8; 4]>::try_from(len_bytes) {
            Ok(a) => u32::from_le_bytes(a) as usize,
            Err(_) => {
                return SegmentScan {
                    records,
                    end: classify(data, pos, "unreadable frame-length prefix".to_owned()),
                }
            }
        };
        if len < MIN_FRAME {
            return SegmentScan {
                records,
                end: classify(data, pos, format!("frame length {len} below minimum")),
            };
        }
        let Some(frame) = data.get(pos + 4..pos + 4 + len) else {
            return SegmentScan {
                records,
                end: classify(data, pos, "frame extends past end of segment".to_owned()),
            };
        };
        match decode_record(frame) {
            Ok(record) => {
                records.push(record);
                pos += 4 + len;
            }
            Err(e) => {
                return SegmentScan {
                    records,
                    end: classify(data, pos, format!("record decode failed: {e}")),
                }
            }
        }
    }
}

/// Distinguishes a torn tail from interior corruption: if record framing
/// (the WAL magic) appears anywhere *after* the failed record's own
/// header region, intact records follow the damage and replay must refuse.
fn classify(data: &[u8], pos: usize, detail: String) -> ScanEnd {
    let after_own_magic = data.get(pos + 4 + 8..).unwrap_or(&[]);
    let framing_later = after_own_magic
        .windows(WAL_MAGIC.len())
        .any(|w| w == WAL_MAGIC.as_slice());
    if framing_later {
        ScanEnd::Ambiguous {
            offset: pos as u64,
            detail,
        }
    } else {
        ScanEnd::Torn {
            offset: pos as u64,
            detail,
        }
    }
}

fn segment_name(start_epoch: u64) -> String {
    format!("wal-{start_epoch:020}.log")
}

fn checkpoint_name(epoch: u64) -> String {
    format!("checkpoint-{epoch:020}.ckpt")
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

/// Lists `(epoch, path)` pairs for checkpoints and segments, both sorted
/// ascending by epoch.
type DirListing = (Vec<(u64, PathBuf)>, Vec<(u64, PathBuf)>);

fn list_files(dir: &Path) -> io::Result<DirListing> {
    let mut checkpoints = Vec::new();
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(epoch) = parse_numbered(&name, "checkpoint-", ".ckpt") {
            checkpoints.push((epoch, entry.path()));
        } else if let Some(start) = parse_numbered(&name, "wal-", ".log") {
            segments.push((start, entry.path()));
        }
    }
    checkpoints.sort_by_key(|(e, _)| *e);
    segments.sort_by_key(|(e, _)| *e);
    Ok((checkpoints, segments))
}

struct CheckpointData {
    db: GraphDatabase,
    dedup: Vec<(String, DedupEntry)>,
}

fn encode_checkpoint(db: &GraphDatabase, dedup: &DedupLog) -> Vec<u8> {
    let mut w = Writer::new(CKPT_MAGIC, CKPT_VERSION);
    w.u64(db.epoch());
    w.u64(db.fingerprint());
    w.str(&db.to_text());
    w.usize(dedup.len());
    for (id, entry) in dedup.entries() {
        w.str(id);
        w.u64(entry.epoch);
        w.usize(entry.inserted);
        w.usize(entry.removed);
        w.usize(entry.updated);
    }
    w.finish()
}

fn load_checkpoint(path: &Path) -> Result<CheckpointData, String> {
    let data = fs::read(path).map_err(|e| e.to_string())?;
    let (mut r, _version) =
        Reader::new(&data, CKPT_MAGIC, CKPT_VERSION).map_err(|e| e.to_string())?;
    let inner = |r: &mut Reader<'_>| -> Result<CheckpointData, CodecError> {
        let epoch = r.u64()?;
        let fingerprint = r.u64()?;
        let text = r.str()?;
        let mut db = GraphDatabase::from_text(text)
            .map_err(|e| CodecError::Invalid(format!("database text: {e}")))?;
        db.set_epoch(epoch);
        if db.fingerprint() != fingerprint {
            return Err(CodecError::Invalid(
                "reloaded database does not match the recorded fingerprint".to_owned(),
            ));
        }
        let mut dedup = Vec::new();
        for _ in 0..r.usize()? {
            let id = r.str()?.to_owned();
            let epoch = r.u64()?;
            let inserted = r.usize()?;
            let removed = r.usize()?;
            let updated = r.usize()?;
            dedup.push((
                id,
                DedupEntry {
                    epoch,
                    inserted,
                    removed,
                    updated,
                },
            ));
        }
        Ok(CheckpointData { db, dedup })
    };
    let out = inner(&mut r).map_err(|e| e.to_string())?;
    r.finish().map_err(|e| e.to_string())?;
    Ok(out)
}

/// Writes a checkpoint via temp file + fsync + atomic rename.
fn write_checkpoint_file(dir: &Path, db: &GraphDatabase, dedup: &DedupLog) -> io::Result<()> {
    let name = checkpoint_name(db.epoch());
    let tmp = dir.join(format!("{name}.tmp"));
    let bytes = encode_checkpoint(db, dedup);
    let mut file = File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, dir.join(&name))?;
    // Durability of the rename itself (best effort: not all platforms
    // support syncing a directory handle).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

struct Segment {
    file: File,
    written: u64,
}

/// What [`Wal::open`] recovered.
pub(crate) struct Recovered {
    pub db: Arc<GraphDatabase>,
    pub dedup: Vec<(String, DedupEntry)>,
}

/// The live append side of the log. Owned by the store's writer state,
/// so all calls arrive serialized.
pub(crate) struct Wal {
    config: WalConfig,
    counters: Arc<WalCounters>,
    recovery: RecoveryStats,
    segment: Option<Segment>,
    next_segment_start: u64,
    unsynced: u64,
    records_since_checkpoint: u64,
    poisoned: Option<String>,
}

impl Wal {
    /// Opens (and if needed initializes or recovers) a data dir. A fresh
    /// dir is seeded with a checkpoint of `initial`; a dir with prior
    /// state recovers from its newest valid checkpoint + WAL tail and
    /// **ignores** `initial`.
    pub(crate) fn open(
        config: WalConfig,
        initial: &Arc<GraphDatabase>,
    ) -> Result<(Wal, Recovered), WalError> {
        fs::create_dir_all(&config.dir)?;
        let (checkpoints, segments) = list_files(&config.dir)?;
        let counters = Arc::new(WalCounters::default());
        let mut recovery = RecoveryStats::default();

        let (db, dedup) = if checkpoints.is_empty() {
            if !segments.is_empty() {
                return Err(WalError::NoCheckpoint {
                    dir: config.dir.display().to_string(),
                });
            }
            write_checkpoint_file(&config.dir, initial, &DedupLog::default())?;
            counters.checkpoints.fetch_add(1, Ordering::Relaxed);
            (Arc::clone(initial), Vec::new())
        } else {
            let mut chosen: Option<CheckpointData> = None;
            let mut newest_err = String::new();
            for (_, path) in checkpoints.iter().rev() {
                match load_checkpoint(path) {
                    Ok(data) => {
                        chosen = Some(data);
                        break;
                    }
                    Err(e) => {
                        if newest_err.is_empty() {
                            newest_err = format!("{}: {e}", path.display());
                        }
                    }
                }
            }
            let Some(CheckpointData { mut db, mut dedup }) = chosen else {
                return Err(WalError::NoCheckpoint {
                    dir: format!("{} ({newest_err})", config.dir.display()),
                });
            };
            let last_idx = segments.len().saturating_sub(1);
            for (i, (_, path)) in segments.iter().enumerate() {
                let file_name = path.display().to_string();
                let data = fs::read(path)?;
                let scan = scan_segment(&data);
                for record in scan.records {
                    if record.epoch <= db.epoch() {
                        continue; // pre-checkpoint leftovers from an unpruned segment
                    }
                    if record.epoch != db.epoch() + 1 {
                        return Err(WalError::EpochGap {
                            file: file_name,
                            expected: db.epoch() + 1,
                            found: record.epoch,
                        });
                    }
                    let (removed_ids, updated_ids, inserted) =
                        apply_batch_contents(&mut db, &record.batch).map_err(|e| {
                            WalError::Replay {
                                epoch: record.epoch,
                                error: Box::new(e),
                            }
                        })?;
                    db.set_epoch(record.epoch);
                    recovery.replayed += 1;
                    if let Some(id) = record.mutation_id {
                        dedup.push((
                            id,
                            DedupEntry {
                                epoch: record.epoch,
                                inserted,
                                removed: removed_ids.len(),
                                updated: updated_ids.len(),
                            },
                        ));
                    }
                }
                match scan.end {
                    ScanEnd::Clean => {}
                    ScanEnd::Torn { offset, .. } if i == last_idx => {
                        let file = OpenOptions::new().write(true).open(path)?;
                        file.set_len(offset)?;
                        file.sync_all()?;
                        recovery.truncated_tail = true;
                    }
                    ScanEnd::Torn { offset, detail } | ScanEnd::Ambiguous { offset, detail } => {
                        return Err(WalError::Ambiguous {
                            file: file_name,
                            offset,
                            detail,
                        });
                    }
                }
            }
            (Arc::new(db), dedup)
        };

        counters
            .last_durable_epoch
            .store(db.epoch(), Ordering::Relaxed);
        let next_segment_start = db.epoch() + 1;
        Ok((
            Wal {
                config,
                counters,
                recovery,
                segment: None,
                next_segment_start,
                unsynced: 0,
                records_since_checkpoint: 0,
                poisoned: None,
            },
            Recovered { db, dedup },
        ))
    }

    pub(crate) fn counters(&self) -> Arc<WalCounters> {
        Arc::clone(&self.counters)
    }

    pub(crate) fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    fn poison(&mut self, reason: &str) -> WalError {
        self.poisoned = Some(reason.to_owned());
        WalError::Poisoned(reason.to_owned())
    }

    /// Rolls the segment back to `prev_len` after a failed append, so an
    /// unacked record can never replay. If the rollback itself fails the
    /// log state is unknown and the WAL poisons itself.
    fn rollback(&mut self, prev_len: u64, cause: io::Error) -> WalError {
        let rolled_back = match self.segment.as_mut() {
            Some(seg) => {
                let ok = seg
                    .file
                    .set_len(prev_len)
                    .and_then(|()| seg.file.sync_data());
                seg.written = prev_len;
                ok.is_ok()
            }
            None => true,
        };
        if rolled_back {
            WalError::Io(cause)
        } else {
            self.poison(&format!("rollback failed after append error: {cause}"))
        }
    }

    /// Appends one record and flushes it per the fsync policy. Called
    /// **before** the epoch is published; an error here means the
    /// mutation is refused and nothing observable changed.
    pub(crate) fn append(
        &mut self,
        epoch: u64,
        mutation_id: Option<&str>,
        batch: &MutationBatch,
    ) -> Result<(), WalError> {
        if let Some(reason) = self.poisoned.clone() {
            return Err(WalError::Poisoned(reason));
        }
        let frame = encode_record(epoch, mutation_id, batch);
        let Ok(frame_len) = u32::try_from(frame.len()) else {
            return Err(WalError::Oversized { bytes: frame.len() });
        };
        let mut bytes = Vec::with_capacity(frame.len() + 4);
        bytes.extend_from_slice(&frame_len.to_le_bytes());
        bytes.extend_from_slice(&frame);

        if self.segment.is_none() {
            let path = self.config.dir.join(segment_name(self.next_segment_start));
            let file = OpenOptions::new().create(true).append(true).open(&path)?;
            let written = file.metadata().map(|m| m.len()).unwrap_or(0);
            self.segment = Some(Segment { file, written });
        }

        let action = self.config.faults.fire(points::WAL_APPEND);
        if action == Some(FaultAction::Crash) {
            // kill -9 semantics: a torn prefix of the record reaches the
            // disk, nothing is rolled back, and this writer is dead.
            if let Some(seg) = self.segment.as_mut() {
                let half = bytes.len() / 2;
                let _ = seg.file.write_all(bytes.get(..half).unwrap_or(&[]));
                let _ = seg.file.sync_data();
            }
            return Err(self.poison("injected crash during wal append"));
        }

        let prev_len = self.segment.as_ref().map(|s| s.written).unwrap_or(0);
        let write_result: io::Result<()> = match (action, self.segment.as_mut()) {
            (_, None) => Ok(()), // unreachable: the segment was just opened
            (None, Some(seg)) => seg.file.write_all(&bytes),
            (Some(FaultAction::Short), Some(seg)) => {
                let half = bytes.len() / 2;
                seg.file
                    .write_all(bytes.get(..half).unwrap_or(&[]))
                    .and_then(|()| Err(FaultAction::Short.to_io_error(points::WAL_APPEND)))
            }
            (Some(a), Some(_)) => Err(a.to_io_error(points::WAL_APPEND)),
        };
        match write_result {
            Ok(()) => {
                if let Some(seg) = self.segment.as_mut() {
                    seg.written = prev_len + bytes.len() as u64;
                }
            }
            Err(e) => return Err(self.rollback(prev_len, e)),
        }
        self.counters.appended.fetch_add(1, Ordering::Relaxed);
        self.unsynced += 1;

        let need_sync = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::Off => false,
        };
        if need_sync {
            let action = self.config.faults.fire(points::WAL_FSYNC);
            if action == Some(FaultAction::Crash) {
                // Power cut during the flush: only a torn prefix of the
                // final record survives.
                if let Some(seg) = self.segment.as_mut() {
                    let torn = seg.written.saturating_sub(bytes.len() as u64 / 2);
                    let _ = seg.file.set_len(torn);
                    let _ = seg.file.sync_data();
                }
                return Err(self.poison("injected crash during wal fsync"));
            }
            let sync_result: io::Result<()> = match (action, self.segment.as_mut()) {
                (None, Some(seg)) => seg.file.sync_data(),
                (None, None) => Ok(()),
                (Some(a), _) => Err(a.to_io_error(points::WAL_FSYNC)),
            };
            match sync_result {
                Ok(()) => {
                    self.unsynced = 0;
                    self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .last_durable_epoch
                        .store(epoch, Ordering::Relaxed);
                }
                Err(e) => return Err(self.rollback(prev_len, e)),
            }
        }
        Ok(())
    }

    /// Bookkeeping after the epoch was published: periodic checkpoints
    /// (with segment pruning) and size-based segment rotation. Failures
    /// here never unpublish the mutation — durability already holds via
    /// the appended record.
    pub(crate) fn after_publish(&mut self, db: &GraphDatabase, dedup: &DedupLog) {
        self.records_since_checkpoint += 1;
        let due = self.config.checkpoint_every > 0
            && self.records_since_checkpoint >= self.config.checkpoint_every;
        if due {
            match self.write_checkpoint(db, dedup) {
                Ok(()) => {
                    self.records_since_checkpoint = 0;
                    self.unsynced = 0;
                    self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .last_durable_epoch
                        .store(db.epoch(), Ordering::Relaxed);
                    self.segment = None;
                    self.next_segment_start = db.epoch() + 1;
                    self.prune(db.epoch());
                }
                Err(_) => {
                    self.counters
                        .checkpoint_failures
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            return;
        }
        let rotate = self
            .segment
            .as_ref()
            .map(|s| s.written >= self.config.segment_bytes)
            .unwrap_or(false);
        if rotate {
            if self.unsynced > 0 {
                if let Some(seg) = self.segment.as_mut() {
                    if seg.file.sync_data().is_ok() {
                        self.unsynced = 0;
                    }
                }
            }
            self.segment = None;
            self.next_segment_start = db.epoch() + 1;
        }
    }

    fn write_checkpoint(&mut self, db: &GraphDatabase, dedup: &DedupLog) -> io::Result<()> {
        if let Some(action) = self.config.faults.fire(points::CHECKPOINT_WRITE) {
            if action == FaultAction::Crash {
                let _ = self.poison("injected crash during checkpoint write");
            }
            return Err(action.to_io_error(points::CHECKPOINT_WRITE));
        }
        write_checkpoint_file(&self.config.dir, db, dedup)
    }

    /// Deletes segments fully covered by the checkpoint at `up_to` and
    /// all but the two newest checkpoints. Best effort: a leftover file
    /// only costs replay-skip time on the next open.
    fn prune(&self, up_to: u64) {
        let Ok((checkpoints, segments)) = list_files(&self.config.dir) else {
            return;
        };
        for (start, path) in segments {
            if start <= up_to {
                let _ = fs::remove_file(path);
            }
        }
        let keep_from = checkpoints.len().saturating_sub(2);
        for (i, (_, path)) in checkpoints.into_iter().enumerate() {
            if i < keep_from {
                let _ = fs::remove_file(path);
            }
        }
    }
}

/// Integrity status of one on-disk artifact, as reported by [`inspect`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactStatus {
    /// Decodes end to end.
    Clean,
    /// A torn final record starts at `offset`; recovery truncates it.
    TornTail {
        /// Byte offset of the torn record.
        offset: u64,
    },
    /// Interior corruption; recovery refuses the log.
    Corrupt {
        /// What failed to decode.
        detail: String,
    },
}

/// One checkpoint file, as reported by [`inspect`].
#[derive(Clone, Debug)]
pub struct CheckpointInfo {
    /// File name inside the data dir.
    pub file: String,
    /// Epoch encoded in the file name.
    pub epoch: u64,
    /// Graph count, when the checkpoint loads cleanly.
    pub graphs: Option<usize>,
    /// Integrity status.
    pub status: ArtifactStatus,
}

/// One WAL segment file, as reported by [`inspect`].
#[derive(Clone, Debug)]
pub struct SegmentInfo {
    /// File name inside the data dir.
    pub file: String,
    /// First epoch the segment was opened for.
    pub start_epoch: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Intact records decoded.
    pub records: u64,
    /// Epoch of the first intact record.
    pub first_epoch: Option<u64>,
    /// Epoch of the last intact record.
    pub last_epoch: Option<u64>,
    /// Integrity status.
    pub status: ArtifactStatus,
}

/// Read-only report over a data dir (the `gss wal inspect` payload).
#[derive(Clone, Debug)]
pub struct WalInspection {
    /// Checkpoints, ascending by epoch.
    pub checkpoints: Vec<CheckpointInfo>,
    /// Segments, ascending by start epoch.
    pub segments: Vec<SegmentInfo>,
    /// `(checkpoint_epoch, last_epoch)` recovery would restore, when the
    /// dir is recoverable at all.
    pub recoverable: Option<(u64, u64)>,
}

/// Walks a data dir without mutating it: checkpoint validity, per-segment
/// record counts and checksum status, and the recoverable epoch range.
pub fn inspect(dir: &Path) -> Result<WalInspection, WalError> {
    let (checkpoints, segments) = list_files(dir)?;
    let mut checkpoint_infos = Vec::new();
    let mut best: Option<u64> = None;
    for (epoch, path) in &checkpoints {
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        match load_checkpoint(path) {
            Ok(data) => {
                best = Some(data.db.epoch());
                checkpoint_infos.push(CheckpointInfo {
                    file,
                    epoch: *epoch,
                    graphs: Some(data.db.len()),
                    status: ArtifactStatus::Clean,
                });
            }
            Err(detail) => checkpoint_infos.push(CheckpointInfo {
                file,
                epoch: *epoch,
                graphs: None,
                status: ArtifactStatus::Corrupt { detail },
            }),
        }
    }

    let mut segment_infos = Vec::new();
    let mut replay_epoch = best;
    let mut refused = best.is_none() && !segments.is_empty();
    let last_idx = segments.len().saturating_sub(1);
    for (i, (start, path)) in segments.iter().enumerate() {
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let data = fs::read(path)?;
        let scan = scan_segment(&data);
        if let Some(mut current) = replay_epoch {
            if !refused {
                for record in &scan.records {
                    if record.epoch <= current {
                        continue;
                    }
                    if record.epoch == current + 1 {
                        current += 1;
                    } else {
                        refused = true; // epoch gap: recovery would refuse
                        break;
                    }
                }
                replay_epoch = Some(current);
            }
        }
        let status = match scan.end {
            ScanEnd::Clean => ArtifactStatus::Clean,
            ScanEnd::Torn { offset, .. } if i == last_idx => ArtifactStatus::TornTail { offset },
            ScanEnd::Torn { offset, detail } | ScanEnd::Ambiguous { offset, detail } => {
                refused = true;
                ArtifactStatus::Corrupt {
                    detail: format!("at byte {offset}: {detail}"),
                }
            }
        };
        segment_infos.push(SegmentInfo {
            file,
            start_epoch: *start,
            bytes: data.len() as u64,
            records: scan.records.len() as u64,
            first_epoch: scan.records.first().map(|r| r.epoch),
            last_epoch: scan.records.last().map(|r| r.epoch),
            status,
        });
    }

    let recoverable = match (best, replay_epoch, refused) {
        (Some(ckpt), Some(last), false) => Some((ckpt, last)),
        _ => None,
    };
    Ok(WalInspection {
        checkpoints: checkpoint_infos,
        segments: segment_infos,
        recoverable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> MutationBatch {
        MutationBatch::default()
            .insert("t a\nv 0 C\nv 1 N\ne 0 1 -\n")
            .remove("old")
            .update("b", "t b\nv 0 O\n")
    }

    #[test]
    fn records_round_trip() {
        let batch = sample_batch();
        let frame = encode_record(7, Some("client-1:42"), &batch);
        let rec = decode_record(&frame).unwrap();
        assert_eq!(rec.epoch, 7);
        assert_eq!(rec.mutation_id.as_deref(), Some("client-1:42"));
        assert_eq!(rec.batch.removes, batch.removes);
        assert_eq!(rec.batch.updates, batch.updates);
        assert_eq!(rec.batch.inserts, batch.inserts);

        let frame = encode_record(1, None, &MutationBatch::default());
        assert_eq!(decode_record(&frame).unwrap().mutation_id, None);
    }

    fn segment_bytes(records: &[(u64, Option<&str>)]) -> Vec<u8> {
        let mut out = Vec::new();
        for (epoch, id) in records {
            let frame = encode_record(*epoch, *id, &sample_batch());
            out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            out.extend_from_slice(&frame);
        }
        out
    }

    #[test]
    fn scans_classify_clean_torn_and_ambiguous() {
        let data = segment_bytes(&[(1, None), (2, Some("x")), (3, None)]);
        let scan = scan_segment(&data);
        assert_eq!(scan.records.len(), 3);
        assert!(matches!(scan.end, ScanEnd::Clean));

        // Any truncation is a torn tail: complete records still replay.
        for cut in 1..data.len() {
            let scan = scan_segment(&data[..cut]);
            assert!(
                matches!(scan.end, ScanEnd::Torn { .. }) || matches!(scan.end, ScanEnd::Clean),
                "cut at {cut} must be torn or clean"
            );
            assert!(scan.records.len() <= 3);
        }

        // A flipped byte in a non-final record leaves framing after the
        // damage: ambiguous. In the final record: torn.
        let mut flipped = data.clone();
        flipped[6] ^= 0xff; // inside record 1's frame
        assert!(matches!(
            scan_segment(&flipped).end,
            ScanEnd::Ambiguous { .. }
        ));
        let mut flipped = data.clone();
        let last = data.len() - 3;
        flipped[last] ^= 0xff; // inside the final record
        let scan = scan_segment(&flipped);
        assert_eq!(scan.records.len(), 2);
        assert!(matches!(scan.end, ScanEnd::Torn { .. }));
    }

    #[test]
    fn fsync_policy_parses_and_prints() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("off"), Some(FsyncPolicy::Off));
        assert_eq!(
            FsyncPolicy::parse("every-16"),
            Some(FsyncPolicy::EveryN(16))
        );
        assert_eq!(FsyncPolicy::parse("every-0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::EveryN(4).to_string(), "every-4");
    }

    #[test]
    fn dedup_log_is_bounded_and_ordered() {
        let mut log = DedupLog::default();
        for i in 0..(DEDUP_CAP + 10) {
            log.insert(
                format!("id-{i}"),
                DedupEntry {
                    epoch: i as u64,
                    inserted: 1,
                    removed: 0,
                    updated: 0,
                },
            );
        }
        assert_eq!(log.len(), DEDUP_CAP);
        assert!(log.get("id-0").is_none(), "oldest entries evicted");
        assert!(log.get(&format!("id-{}", DEDUP_CAP + 9)).is_some());
        let first = log.entries().next().map(|(id, _)| id.to_owned());
        assert_eq!(first.as_deref(), Some("id-10"));
    }
}
