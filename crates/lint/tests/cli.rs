//! End-to-end tests of the `gss-lint` binary: exit codes, rendered
//! output, `--json` report shape, `--list-rules`.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gss-lint"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gss-lint-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn list_rules_names_every_rule() {
    let out = bin().arg("--list-rules").output().expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "fingerprint-completeness",
        "no-alloc-in-kernel",
        "cancellation-checkpoint",
        "no-panic-in-request-path",
        "lock-discipline",
        "reference-parity-drift",
        "lint-directives",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }
}

#[test]
fn a_violation_fails_with_a_span_accurate_diagnostic() {
    let dir = scratch_dir("bad");
    let file = dir.join("server/src/server.rs");
    std::fs::create_dir_all(file.parent().expect("parent")).expect("mkdir");
    std::fs::write(
        &file,
        "pub fn handle(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    )
    .expect("write fixture");

    let out = bin().arg(&file).output().expect("run");
    assert_eq!(out.status.code(), Some(1), "violations exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error[no-panic-in-request-path]"),
        "{stderr}"
    );
    assert!(stderr.contains("server.rs:2:7"), "span-accurate: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn json_report_carries_rule_path_and_position() {
    let dir = scratch_dir("json");
    let file = dir.join("server/src/cache.rs");
    std::fs::create_dir_all(file.parent().expect("parent")).expect("mkdir");
    std::fs::write(
        &file,
        "pub fn get(v: Option<u32>) -> u32 {\n    v.expect(\"set\")\n}\n",
    )
    .expect("write fixture");
    let report = dir.join("lint.json");

    let out = bin()
        .arg(&file)
        .arg("--json")
        .arg(&report)
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    let json = std::fs::read_to_string(&report).expect("report written");
    assert!(
        json.contains("\"rule\":\"no-panic-in-request-path\""),
        "{json}"
    );
    assert!(json.contains("\"category\":\"expect\""), "{json}");
    assert!(
        json.contains("\"line\":2") && json.contains("\"col\":7"),
        "{json}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_real_workspace_exits_zero() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let out = bin()
        .args(["--workspace", "--deny-all", "--root"])
        .arg(&root)
        .output()
        .expect("run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}");
    assert!(stderr.contains("clean across"), "{stderr}");
}

#[test]
fn usage_errors_exit_two() {
    let out = bin().output().expect("run");
    assert_eq!(out.status.code(), Some(2), "no input is a usage error");
    let out = bin().arg("--frobnicate").output().expect("run");
    assert_eq!(out.status.code(), Some(2), "unknown flag is a usage error");
}
