impl Store {
    fn publish_then_log(&self, next: Snap) -> Result<(), Error> {
        *self.current.lock().unwrap_or_else(recover) = next;
        self.wal.append(1)?;
        Ok(())
    }
}
