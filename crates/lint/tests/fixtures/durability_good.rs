pub fn ack(engine: &Engine, batch: &MutationBatch) -> Response {
    match engine.apply_mutation_logged(batch, None) {
        Ok(receipt) => Response::Mutated {
            id: None,
            epoch: receipt.epoch,
            inserted: receipt.inserted,
            removed: receipt.removed,
            updated: receipt.updated,
            replayed: receipt.replayed,
        },
        Err(e) => Response::Error {
            id: None,
            message: e.to_string(),
        },
    }
}
