pub fn reference_exact_ged(a: &u32, b: &u32) -> u64 {
    (*a as u64) + (*b as u64)
}

pub fn orphan_reference(a: u32) -> u32 {
    a
}

pub fn helper_without_convention(a: u32) -> u32 {
    a
}
