// gss-lint: kernel — fixture: marked hot region
pub fn kernel_step(xs: &[u32], out: &mut Vec<u32>) {
    let copy = xs.to_vec();
    let tmp = vec![0u32; xs.len()];
    let buf: Vec<u32> = Vec::new();
    out.extend_from_slice(&copy);
    out.extend_from_slice(&tmp);
    out.extend_from_slice(&buf);
}

pub fn unmarked_may_allocate(xs: &[u32]) -> Vec<u32> {
    xs.to_vec()
}
