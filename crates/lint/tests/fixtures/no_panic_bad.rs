pub fn handle(v: Option<u32>, xs: &[u32]) -> u32 {
    let a = v.unwrap();
    let b = xs[0];
    let c = v.expect("present");
    if a > c {
        panic!("unreachable");
    }
    a + b + c
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
