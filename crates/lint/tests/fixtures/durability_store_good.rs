impl Store {
    fn log_then_publish(&self, next: Snap) -> Result<Snap, Error> {
        self.wal.append(1)?;
        *self.current.lock().unwrap_or_else(recover) = next;
        // A head *read* is not a publish: no top-level assignment.
        Ok(Snap::clone(&self.current.lock().unwrap_or_else(recover)))
    }
}
