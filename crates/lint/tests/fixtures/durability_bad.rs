pub fn ack_without_apply(id: Option<u64>) -> Response {
    Response::Mutated {
        id,
        epoch: 1,
        inserted: 0,
        removed: 0,
        updated: 0,
        replayed: false,
    }
}
