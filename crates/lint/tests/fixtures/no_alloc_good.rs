// gss-lint: kernel — fixture: allocation-free hot region
pub fn kernel_step(xs: &[u32], buf: &mut [u32]) -> u32 {
    buf[..xs.len()].copy_from_slice(xs);
    let mut sum = 0;
    for w in buf.iter() {
        sum += *w;
    }
    sum
}
