pub fn exact_ged(a: &u32, b: &u32, tighten: bool) -> u64 {
    let base = (*a as u64) + (*b as u64);
    if tighten {
        base
    } else {
        base + 1
    }
}
