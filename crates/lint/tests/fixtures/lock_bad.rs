use std::sync::Mutex;

pub fn dispatch(m: &Mutex<Vec<u32>>) -> u32 {
    let guard = m.lock().unwrap_or_else(|p| p.into_inner());
    evaluate_batch(&guard)
}

pub fn dispatch_scoped(m: &Mutex<Vec<u32>>) -> u32 {
    let jobs = {
        let guard = m.lock().unwrap_or_else(|p| p.into_inner());
        guard.len() as u32
    };
    compute(jobs)
}

fn compute(x: u32) -> u32 {
    x
}

fn evaluate_batch(xs: &[u32]) -> u32 {
    xs.iter().sum()
}
