use std::sync::Mutex;

pub fn dispatch(m: &Mutex<Vec<u32>>) -> u32 {
    let guard = m.lock().unwrap_or_else(|p| p.into_inner());
    let jobs: u32 = guard.len() as u32;
    drop(guard);
    evaluate_batch(jobs)
}

fn evaluate_batch(x: u32) -> u32 {
    x
}
