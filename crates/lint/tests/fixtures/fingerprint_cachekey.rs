// gss-lint: exempt(QueryOptions::plan) — fixture: stale, plan IS hashed below
pub fn options_fingerprint(o: &QueryOptions) -> u64 {
    (o.measures as u64) ^ (o.plan as u64)
}
