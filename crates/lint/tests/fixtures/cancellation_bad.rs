pub struct CancelToken;

impl CancelToken {
    pub fn checkpoint(&self) -> Result<(), ()> {
        Ok(())
    }
}

pub fn stage(cancel: &CancelToken, items: &[u32]) -> Result<u32, ()> {
    let mut sum = 0;
    for x in items {
        sum += *x;
    }
    cancel.checkpoint()?;
    Ok(sum)
}

pub fn run_waves(n: usize, threads: usize) -> Vec<usize> {
    parallel_map_waves(n, threads, threads * 4, || Ok(()), |i| i)
}

fn parallel_map_waves<C, F>(_n: usize, _t: usize, _w: usize, _c: C, _f: F) -> Vec<usize> {
    Vec::new()
}
