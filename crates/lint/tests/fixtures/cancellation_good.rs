pub struct CancelToken;

impl CancelToken {
    pub fn checkpoint(&self) -> Result<(), ()> {
        Ok(())
    }
}

pub fn stage(cancel: &CancelToken, items: &[u32]) -> Result<u32, ()> {
    let mut sum = 0;
    for x in items {
        cancel.checkpoint()?;
        sum += *x;
    }
    // gss-lint: allow(cancellation-checkpoint) — fixture: bounded bookkeeping loop
    for _ in 0..4 {
        sum += 1;
    }
    Ok(sum)
}
