// gss-lint: allow(no-panic-in-request-path[index]) — fixture: indices produced by enumerate over the same slice
pub fn route(xs: &[u32]) -> u32 {
    let mut sum = 0;
    for i in 0..xs.len() {
        sum += xs[i];
    }
    sum
}

pub fn poisoned(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|p| p.into_inner())
}

pub fn one_line(v: Option<u32>) -> u32 {
    v.unwrap() // gss-lint: allow(no-panic-in-request-path) — fixture: trailing allow on one line
}
