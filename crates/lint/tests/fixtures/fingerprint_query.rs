pub struct QueryOptions {
    pub measures: u32,
    pub threads: usize,
    pub plan: u8,
}
