//! The dogfood gate in test form: the real workspace must lint clean.
//! This is the same check CI's `lint` job runs via `cargo lint`, kept
//! here too so `cargo test` alone catches a reintroduced violation.

use gss_lint::Workspace;

#[test]
fn the_workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let ws = Workspace::load(&root).expect("load workspace sources");
    assert!(
        ws.files.len() > 50,
        "workspace walk found only {} files — load() is broken",
        ws.files.len()
    );
    let diags = ws.run();
    let rendered: String = diags
        .iter()
        .map(|d| d.render(&ws.files[d.file]))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        diags.is_empty(),
        "the workspace must lint clean; {} diagnostic(s):\n{rendered}",
        diags.len()
    );
}
