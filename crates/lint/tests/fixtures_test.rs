//! Rule-by-rule fixture tests: each fixture under `tests/fixtures/` is
//! registered under a *virtual* workspace path the rule watches, and the
//! diagnostics are pinned to exact `(rule, category, line, col)` spans so
//! a regression in the lexer, the item model, or a rule's span
//! arithmetic fails loudly.

use gss_lint::{Diagnostic, Workspace};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn spans(ws: &Workspace, diags: &[Diagnostic]) -> Vec<(String, String, usize, usize)> {
    diags
        .iter()
        .map(|d| {
            let (line, col) = ws.files[d.file].line_col(d.start);
            (d.rule.to_owned(), d.category.to_owned(), line, col)
        })
        .collect()
}

#[test]
fn no_panic_flags_each_category_at_exact_spans() {
    let mut ws = Workspace::new();
    ws.add_file("crates/server/src/server.rs", fixture("no_panic_bad.rs"));
    let diags = ws.run();
    assert_eq!(
        spans(&ws, &diags),
        vec![
            ("no-panic-in-request-path".into(), "unwrap".into(), 2, 15),
            ("no-panic-in-request-path".into(), "index".into(), 3, 15),
            ("no-panic-in-request-path".into(), "expect".into(), 4, 15),
            ("no-panic-in-request-path".into(), "panic".into(), 6, 9),
        ],
        "full diagnostics:\n{}",
        render_all(&ws, &diags)
    );
}

#[test]
fn no_panic_allows_suppress_by_category_and_line() {
    let mut ws = Workspace::new();
    ws.add_file("crates/server/src/cache.rs", fixture("no_panic_allowed.rs"));
    let diags = ws.run();
    assert!(diags.is_empty(), "{}", render_all(&ws, &diags));
}

#[test]
fn no_panic_ignores_unwatched_paths() {
    let mut ws = Workspace::new();
    ws.add_file("crates/core/src/measures.rs", fixture("no_panic_bad.rs"));
    assert!(ws.run().is_empty(), "rule must only watch the request path");
}

#[test]
fn no_alloc_flags_marked_kernels_only() {
    let mut ws = Workspace::new();
    ws.add_file("crates/x/src/lib.rs", fixture("no_alloc_bad.rs"));
    let diags = ws.run();
    assert_eq!(
        spans(&ws, &diags),
        vec![
            ("no-alloc-in-kernel".into(), "alloc".into(), 3, 19),
            ("no-alloc-in-kernel".into(), "alloc".into(), 4, 15),
            ("no-alloc-in-kernel".into(), "alloc".into(), 5, 25),
        ],
        "full diagnostics:\n{}",
        render_all(&ws, &diags)
    );
}

#[test]
fn no_alloc_accepts_buffer_reuse() {
    let mut ws = Workspace::new();
    ws.add_file("crates/x/src/lib.rs", fixture("no_alloc_good.rs"));
    let diags = ws.run();
    assert!(diags.is_empty(), "{}", render_all(&ws, &diags));
}

#[test]
fn cancellation_flags_unchecked_loops_and_wave_callers() {
    let mut ws = Workspace::new();
    ws.add_file("crates/core/src/exec.rs", fixture("cancellation_bad.rs"));
    let diags = ws.run();
    assert_eq!(
        spans(&ws, &diags),
        vec![
            ("cancellation-checkpoint".into(), "loop".into(), 11, 5),
            ("cancellation-checkpoint".into(), "waves".into(), 19, 5),
        ],
        "full diagnostics:\n{}",
        render_all(&ws, &diags)
    );
}

#[test]
fn cancellation_accepts_checkpointed_and_allowed_loops() {
    let mut ws = Workspace::new();
    ws.add_file("crates/core/src/exec.rs", fixture("cancellation_good.rs"));
    let diags = ws.run();
    assert!(diags.is_empty(), "{}", render_all(&ws, &diags));
}

#[test]
fn fingerprint_flags_unhashed_fields_and_stale_exemptions() {
    let mut ws = Workspace::new();
    ws.add_file("crates/core/src/query.rs", fixture("fingerprint_query.rs"));
    ws.add_file(
        "crates/core/src/cachekey.rs",
        fixture("fingerprint_cachekey.rs"),
    );
    let diags = ws.run();
    assert_eq!(
        spans(&ws, &diags),
        vec![
            // `threads` is neither hashed nor exempted (field token).
            (
                "fingerprint-completeness".into(),
                "unhashed-field".into(),
                3,
                9
            ),
            // `plan` IS hashed, so its exemption is stale (directive span).
            (
                "fingerprint-completeness".into(),
                "stale-exemption".into(),
                1,
                1
            ),
        ],
        "full diagnostics:\n{}",
        render_all(&ws, &diags)
    );
}

#[test]
fn fingerprint_accepts_exempted_fields() {
    let mut ws = Workspace::new();
    ws.add_file(
        "crates/core/src/query.rs",
        "pub struct QueryOptions {\n    pub measures: u32,\n    // gss-lint: exempt(QueryOptions::threads) — fixture: never changes the bytes\n    pub threads: usize,\n}\n"
            .to_owned(),
    );
    ws.add_file(
        "crates/core/src/cachekey.rs",
        "pub fn options_fingerprint(o: &QueryOptions) -> u64 {\n    o.measures as u64\n}\n"
            .to_owned(),
    );
    let diags = ws.run();
    assert!(diags.is_empty(), "{}", render_all(&ws, &diags));
}

#[test]
fn durability_flags_unfounded_acks_and_early_publishes() {
    let mut ws = Workspace::new();
    ws.add_file("crates/server/src/server.rs", fixture("durability_bad.rs"));
    // Registered as wal.rs: the fingerprint audit owns store/src/lib.rs.
    ws.add_file(
        "crates/store/src/wal.rs",
        fixture("durability_store_bad.rs"),
    );
    let diags = ws.run();
    assert_eq!(
        spans(&ws, &diags),
        vec![
            (
                "durability-before-ack".into(),
                "ack-without-durability".into(),
                2,
                15
            ),
            (
                "durability-before-ack".into(),
                "publish-before-append".into(),
                3,
                15
            ),
        ],
        "full diagnostics:\n{}",
        render_all(&ws, &diags)
    );
}

#[test]
fn durability_accepts_receipt_backed_acks_and_append_first_publishes() {
    let mut ws = Workspace::new();
    ws.add_file("crates/server/src/server.rs", fixture("durability_good.rs"));
    ws.add_file(
        "crates/store/src/wal.rs",
        fixture("durability_store_good.rs"),
    );
    let diags = ws.run();
    assert!(diags.is_empty(), "{}", render_all(&ws, &diags));
}

#[test]
fn lock_discipline_flags_engine_calls_under_a_live_guard() {
    let mut ws = Workspace::new();
    ws.add_file("crates/server/src/dispatch.rs", fixture("lock_bad.rs"));
    let diags = ws.run();
    assert_eq!(
        spans(&ws, &diags),
        vec![("lock-discipline".into(), "call-under-lock".into(), 5, 5)],
        "full diagnostics:\n{}",
        render_all(&ws, &diags)
    );
}

#[test]
fn lock_discipline_accepts_drop_before_the_call() {
    let mut ws = Workspace::new();
    ws.add_file("crates/server/src/dispatch.rs", fixture("lock_good.rs"));
    let diags = ws.run();
    assert!(diags.is_empty(), "{}", render_all(&ws, &diags));
}

#[test]
fn parity_flags_signature_drift_and_dead_oracles() {
    let mut ws = Workspace::new();
    ws.add_file(
        "crates/ged/src/reference.rs",
        fixture("parity_reference.rs"),
    );
    ws.add_file("crates/ged/src/exact.rs", fixture("parity_kernel.rs"));
    let diags = ws.run();
    assert_eq!(
        spans(&ws, &diags),
        vec![
            ("reference-parity-drift".into(), "signature".into(), 1, 8),
            (
                "reference-parity-drift".into(),
                "missing-kernel".into(),
                5,
                8
            ),
        ],
        "full diagnostics:\n{}",
        render_all(&ws, &diags)
    );
    // The drift note shows both normalized signatures.
    let note = diags[0].note.as_deref().unwrap_or("");
    assert!(
        note.contains("(& u32, & u32) -> u64") && note.contains("(& u32, & u32, bool) -> u64"),
        "note must show both signatures: {note}"
    );
}

#[test]
fn parity_accepts_matching_signatures() {
    let mut ws = Workspace::new();
    ws.add_file(
        "crates/ged/src/reference.rs",
        "pub fn reference_exact_ged(a: &u32, b: &u32) -> u64 {\n    (*a as u64) + (*b as u64)\n}\n"
            .to_owned(),
    );
    ws.add_file(
        "crates/ged/src/exact.rs",
        "pub fn exact_ged(x: &u32, y: &u32) -> u64 {\n    (*x as u64) + (*y as u64)\n}\n"
            .to_owned(),
    );
    let diags = ws.run();
    assert!(diags.is_empty(), "{}", render_all(&ws, &diags));
}

fn render_all(ws: &Workspace, diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.render(&ws.files[d.file]))
        .collect::<Vec<_>>()
        .join("\n")
}
