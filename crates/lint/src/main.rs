//! The `gss-lint` binary. See the crate docs of [`gss_lint`] for the
//! rule catalogue and directive syntax.
//!
//! ```text
//! gss-lint --workspace [--root PATH] [--deny-all] [--json FILE]
//! gss-lint FILE.rs [FILE.rs ...]
//! gss-lint --list-rules
//! ```
//!
//! Exit status: 0 when clean, 1 when diagnostics were emitted, 2 on
//! usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use gss_lint::{rules, Workspace};

struct Args {
    workspace: bool,
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    list_rules: bool,
    files: Vec<PathBuf>,
    // --deny-all is accepted for CI clarity; diagnostics always fail the
    // run (there is no warning level), so it changes nothing today.
    #[allow(dead_code)]
    deny_all: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: None,
        json: None,
        list_rules: false,
        files: Vec::new(),
        deny_all: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--deny-all" => args.deny_all = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a path argument")?,
                ));
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or("--json needs a file argument")?,
                ));
            }
            "-h" | "--help" => {
                println!(
                    "gss-lint — static analysis for the gss workspace\n\n\
                     USAGE:\n  gss-lint --workspace [--root PATH] [--deny-all] [--json FILE]\n  \
                     gss-lint FILE.rs [FILE.rs ...]\n  gss-lint --list-rules\n\n\
                     OPTIONS:\n  --workspace     lint every .rs file under the workspace root\n  \
                     --root PATH     workspace root (default: nearest ancestor with Cargo.toml)\n  \
                     --deny-all      explicit CI spelling; diagnostics always fail the run\n  \
                     --json FILE     also write the findings as a JSON array to FILE\n  \
                     --list-rules    print the registered rule ids and exit"
                );
                std::process::exit(0);
            }
            f if !f.starts_with('-') => args.files.push(PathBuf::from(f)),
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    if !args.list_rules && !args.workspace && args.files.is_empty() {
        return Err("nothing to lint: pass --workspace or one or more files".to_owned());
    }
    Ok(args)
}

/// The nearest ancestor of the current directory containing a
/// `Cargo.toml` with a `[workspace]` table, falling back to the nearest
/// with any `Cargo.toml`.
fn find_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    let mut best_any = None;
    for dir in cwd.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            best_any.get_or_insert_with(|| dir.to_path_buf());
            if std::fs::read_to_string(&manifest).is_ok_and(|t| t.contains("[workspace]")) {
                return Some(dir.to_path_buf());
            }
        }
    }
    best_any
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gss-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for id in rules::rule_ids() {
            println!("{id}");
        }
        println!("{} (meta, not allowable)", rules::DIRECTIVES);
        return ExitCode::SUCCESS;
    }

    let ws = if args.workspace {
        let root = match args.root.or_else(find_root) {
            Some(r) => r,
            None => {
                eprintln!("gss-lint: no workspace root found (pass --root)");
                return ExitCode::from(2);
            }
        };
        match Workspace::load(&root) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!(
                    "gss-lint: failed to load workspace at {}: {e}",
                    root.display()
                );
                return ExitCode::from(2);
            }
        }
    } else {
        let mut ws = Workspace::new();
        for p in &args.files {
            match std::fs::read_to_string(p) {
                Ok(text) => ws.add_file(p.to_string_lossy().replace('\\', "/"), text),
                Err(e) => {
                    eprintln!("gss-lint: cannot read {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            }
        }
        ws
    };

    let diags = ws.run();

    if let Some(json_path) = &args.json {
        let mut s = String::from("[");
        for (i, d) in diags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            s.push_str("  ");
            s.push_str(&d.to_json(&ws.files[d.file]));
        }
        s.push_str(if diags.is_empty() { "]\n" } else { "\n]\n" });
        if let Err(e) = std::fs::write(json_path, s) {
            eprintln!("gss-lint: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    for d in &diags {
        eprintln!("{}", d.render(&ws.files[d.file]));
    }
    if diags.is_empty() {
        eprintln!(
            "gss-lint: {} file(s) clean across {} rule(s)",
            ws.files.len(),
            rules::rule_ids().len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "gss-lint: {} diagnostic(s) in {} file(s)",
            diags.len(),
            ws.files.len()
        );
        ExitCode::FAILURE
    }
}
