//! The per-file source model the rules consume: tokens plus a light
//! item index (functions, structs with fields, test regions) and the
//! parsed `gss-lint:` directives.
//!
//! This is deliberately **not** a parser. A brace-matched token stream
//! with item anchors is enough for every rule in the registry, keeps the
//! crate std-only (no `syn`), and degrades gracefully: code the model
//! cannot classify is simply not checked, never misreported.

use crate::lexer::{lex, Comment, TokKind, Token};

/// What a `gss-lint:` comment directive asks for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `allow(<rule>)` or `allow(<rule>[<category>])`: suppress matching
    /// diagnostics in the directive's scope.
    Allow {
        /// Rule id, e.g. `no-panic-in-request-path`.
        rule: String,
        /// Optional diagnostic category, e.g. `index`.
        category: Option<String>,
    },
    /// `exempt(<Struct>::<field>)`: the field is deliberately excluded
    /// from its fingerprint function (fingerprint-completeness rule).
    Exempt {
        /// The struct the field belongs to.
        owner: String,
        /// The exempted field.
        field: String,
    },
    /// `kernel`: the next `fn` is an allocation-free hot region
    /// (no-alloc-in-kernel rule).
    Kernel,
}

/// Where an `allow` directive applies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirectiveScope {
    /// Diagnostics on this 1-based line (trailing comment, or the line
    /// right below an own-line comment).
    Line(usize),
    /// Diagnostics anywhere in this byte range (an own-line comment
    /// directly above an `fn` covers the whole item).
    Span(usize, usize),
}

/// One parsed `gss-lint:` directive.
#[derive(Clone, Debug)]
pub struct Directive {
    /// The request.
    pub kind: DirectiveKind,
    /// Prose after the directive — the required justification.
    pub justification: String,
    /// Byte span of the comment carrying the directive.
    pub start: usize,
    /// End of the comment.
    pub end: usize,
    /// Where the directive applies.
    pub scope: DirectiveScope,
}

/// One `fn` item (any nesting depth, closures excluded).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// Token index of the name.
    pub name_tok: usize,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token indices of the body `{` and `}`; `None` for bodyless
    /// declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// Whether the declaration is `pub` (any visibility restriction
    /// counts).
    pub is_pub: bool,
    /// Whether a `// gss-lint: kernel` marker precedes the item.
    pub kernel: bool,
}

/// One named field of a struct.
#[derive(Clone, Debug)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// Token index of the field name.
    pub name_tok: usize,
}

/// One `struct` item with named fields (tuple and unit structs have an
/// empty field list).
#[derive(Clone, Debug)]
pub struct StructItem {
    /// The struct name.
    pub name: String,
    /// Token index of the name.
    pub name_tok: usize,
    /// The named fields, in declaration order.
    pub fields: Vec<FieldItem>,
}

/// One lexed + indexed source file.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The file contents.
    pub text: String,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// Comments.
    pub comments: Vec<Comment>,
    /// Parsed `gss-lint:` directives.
    pub directives: Vec<Directive>,
    /// Directive parse errors: `(comment span, message)` — surfaced by
    /// the engine as `lint-directives` diagnostics.
    pub directive_errors: Vec<(usize, usize, String)>,
    /// Every `fn` item.
    pub functions: Vec<FnItem>,
    /// Every `struct` item.
    pub structs: Vec<StructItem>,
    line_starts: Vec<usize>,
    test_regions: Vec<(usize, usize)>,
}

const RANGE_OPEN: &[u8] = b"([{";
const RANGE_CLOSE: &[u8] = b")]}";

impl SourceFile {
    /// Lexes and indexes one file.
    pub fn new(path: impl Into<String>, text: String) -> SourceFile {
        let lexed = lex(&text);
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let mut file = SourceFile {
            path: path.into().replace('\\', "/"),
            text,
            tokens: lexed.tokens,
            comments: lexed.comments,
            directives: Vec::new(),
            directive_errors: Vec::new(),
            functions: Vec::new(),
            structs: Vec::new(),
            line_starts,
            test_regions: Vec::new(),
        };
        file.functions = file.scan_functions();
        file.structs = file.scan_structs();
        file.test_regions = file.scan_test_regions();
        file.scan_directives();
        file
    }

    /// 1-based `(line, column)` of a byte offset (columns count bytes).
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// The text of a 1-based line, without its newline.
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.text.len(), |&e| e.saturating_sub(1));
        self.text[start..end].trim_end_matches('\r')
    }

    /// The source text of token `i`.
    pub fn tok_str(&self, i: usize) -> &str {
        let t = self.tokens[i];
        &self.text[t.start..t.end]
    }

    /// True when token `i` is the identifier `s`.
    pub fn is_ident(&self, i: usize, s: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && &self.text[t.start..t.end] == s)
    }

    /// True when token `i` is the punctuation character `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && self.text[t.start..t.end].starts_with(c))
    }

    /// Given the token index of an opening `(`/`[`/`{`, returns the index
    /// of its matching close (or the last token when unbalanced).
    pub fn match_delim(&self, open: usize) -> usize {
        let mut depth = 0i64;
        for i in open..self.tokens.len() {
            let t = self.tokens[i];
            if t.kind == TokKind::Punct {
                let b = self.text.as_bytes()[t.start];
                if RANGE_OPEN.contains(&b) {
                    depth += 1;
                } else if RANGE_CLOSE.contains(&b) {
                    depth -= 1;
                    if depth <= 0 {
                        return i;
                    }
                }
            }
        }
        self.tokens.len().saturating_sub(1)
    }

    /// True when the byte offset falls inside `#[test]` / `#[cfg(test)]`
    /// code.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// The byte span of the innermost brace block containing token `i`,
    /// as token indices of `{` and `}`.
    pub fn enclosing_block(&self, i: usize) -> Option<(usize, usize)> {
        let mut stack: Vec<usize> = Vec::new();
        for (j, t) in self.tokens.iter().enumerate() {
            if j >= i {
                break;
            }
            if t.kind == TokKind::Punct {
                match self.text.as_bytes()[t.start] {
                    b'{' => stack.push(j),
                    b'}' => {
                        stack.pop();
                    }
                    _ => {}
                }
            }
        }
        stack.pop().map(|open| (open, self.match_delim(open)))
    }

    // ---- item scanning -------------------------------------------------

    fn scan_functions(&self) -> Vec<FnItem> {
        let mut out = Vec::new();
        for i in 0..self.tokens.len() {
            if !self.is_ident(i, "fn") {
                continue;
            }
            let Some(name_t) = self.tokens.get(i + 1) else {
                continue;
            };
            if name_t.kind != TokKind::Ident {
                continue;
            }
            // Find the body `{` (or the `;` of a bodyless declaration) at
            // paren/bracket depth 0 after the signature.
            let mut depth = 0i64;
            let mut body = None;
            for j in i + 2..self.tokens.len() {
                let t = self.tokens[j];
                if t.kind != TokKind::Punct {
                    continue;
                }
                match self.text.as_bytes()[t.start] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'{' if depth == 0 => {
                        body = Some((j, self.match_delim(j)));
                        break;
                    }
                    b';' if depth == 0 => break,
                    _ => {}
                }
            }
            out.push(FnItem {
                name: self.tok_str(i + 1).to_owned(),
                name_tok: i + 1,
                fn_tok: i,
                body,
                is_pub: self.decl_is_pub(i),
                kernel: false,
            });
        }
        out
    }

    /// Looks backwards from the `fn` keyword over qualifiers
    /// (`const`/`unsafe`/`async`/`extern "C"`) for a `pub`.
    fn decl_is_pub(&self, fn_tok: usize) -> bool {
        let mut i = fn_tok;
        while i > 0 {
            i -= 1;
            let t = self.tokens[i];
            match t.kind {
                TokKind::Ident => match self.tok_str(i) {
                    "const" | "unsafe" | "async" | "extern" => continue,
                    "pub" => return true,
                    _ => return false,
                },
                TokKind::Str => continue, // the "C" of extern "C"
                TokKind::Punct if self.is_punct(i, ')') => {
                    // pub(crate) and friends: skip back over the group.
                    let mut depth = 1i64;
                    while i > 0 && depth > 0 {
                        i -= 1;
                        if self.is_punct(i, ')') {
                            depth += 1;
                        } else if self.is_punct(i, '(') {
                            depth -= 1;
                        }
                    }
                    continue;
                }
                _ => return false,
            }
        }
        false
    }

    fn scan_structs(&self) -> Vec<StructItem> {
        let mut out = Vec::new();
        for i in 0..self.tokens.len() {
            if !self.is_ident(i, "struct") {
                continue;
            }
            let Some(name_t) = self.tokens.get(i + 1) else {
                continue;
            };
            if name_t.kind != TokKind::Ident {
                continue;
            }
            // Skip generics (angle-aware; `->` inside Fn bounds must not
            // close an angle) up to `{`, `(`, or `;`.
            let mut angle = 0i64;
            let mut fields = Vec::new();
            for j in i + 2..self.tokens.len() {
                if self.tokens[j].kind != TokKind::Punct {
                    continue;
                }
                match self.text.as_bytes()[self.tokens[j].start] {
                    b'<' => angle += 1,
                    b'>' if !(j > 0 && self.is_punct(j - 1, '-')) => angle -= 1,
                    b'{' if angle <= 0 => {
                        fields = self.scan_fields(j, self.match_delim(j));
                        break;
                    }
                    b'(' | b';' if angle <= 0 => break,
                    _ => {}
                }
            }
            out.push(StructItem {
                name: self.tok_str(i + 1).to_owned(),
                name_tok: i + 1,
                fields,
            });
        }
        out
    }

    fn scan_fields(&self, open: usize, close: usize) -> Vec<FieldItem> {
        let mut out = Vec::new();
        let mut j = open + 1;
        while j < close {
            // Skip attributes and visibility.
            if self.is_punct(j, '#') && self.is_punct(j + 1, '[') {
                j = self.match_delim(j + 1) + 1;
                continue;
            }
            if self.is_ident(j, "pub") {
                j += 1;
                if self.is_punct(j, '(') {
                    j = self.match_delim(j) + 1;
                }
                continue;
            }
            if self.tokens[j].kind == TokKind::Ident
                && self.is_punct(j + 1, ':')
                && !self.is_punct(j + 2, ':')
            {
                out.push(FieldItem {
                    name: self.tok_str(j).to_owned(),
                    name_tok: j,
                });
                // Skip the type up to the `,` at depth 0.
                let mut depth = 0i64;
                let mut angle = 0i64;
                j += 2;
                while j < close {
                    if self.tokens[j].kind == TokKind::Punct {
                        match self.text.as_bytes()[self.tokens[j].start] {
                            b'(' | b'[' | b'{' => depth += 1,
                            b')' | b']' | b'}' => depth -= 1,
                            b'<' => angle += 1,
                            b'>' if !(j > 0 && self.is_punct(j - 1, '-')) => angle -= 1,
                            b',' if depth == 0 && angle <= 0 => {
                                j += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    j += 1;
                }
                continue;
            }
            j += 1;
        }
        out
    }

    fn scan_test_regions(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while i + 1 < self.tokens.len() {
            if self.is_punct(i, '#') && self.is_punct(i + 1, '[') {
                let close = self.match_delim(i + 1);
                let mut has_test = false;
                let mut has_not = false;
                for j in i + 2..close {
                    if self.is_ident(j, "test") {
                        has_test = true;
                    }
                    if self.is_ident(j, "not") {
                        has_not = true;
                    }
                }
                let mut resume = close + 1;
                if has_test && !has_not {
                    // The attributed item's body: the first `{` at
                    // paren/bracket depth 0 (skipping further attributes).
                    let mut depth = 0i64;
                    let mut j = close + 1;
                    while j < self.tokens.len() {
                        if self.is_punct(j, '#') && self.is_punct(j + 1, '[') {
                            j = self.match_delim(j + 1) + 1;
                            continue;
                        }
                        if self.tokens[j].kind == TokKind::Punct {
                            match self.text.as_bytes()[self.tokens[j].start] {
                                b'(' | b'[' => depth += 1,
                                b')' | b']' => depth -= 1,
                                b'{' if depth == 0 => {
                                    let end = self.match_delim(j);
                                    out.push((self.tokens[j].start, self.tokens[end].end));
                                    resume = end + 1;
                                    break;
                                }
                                b';' if depth == 0 => break,
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                }
                i = resume;
                continue;
            }
            i += 1;
        }
        out
    }

    // ---- directive scanning --------------------------------------------

    fn scan_directives(&mut self) {
        let mut directives = Vec::new();
        let mut errors = Vec::new();
        let mut kernel_marks: Vec<usize> = Vec::new();
        for (ci, c) in self.comments.iter().enumerate() {
            let text = &self.text[c.start..c.end];
            // Doc comments (`///`, `//!`, `/**`, `/*!`) are prose — the
            // lint's own documentation describes the directive syntax
            // without issuing directives.
            if text.starts_with("///")
                || text.starts_with("//!")
                || text.starts_with("/**")
                || text.starts_with("/*!")
            {
                continue;
            }
            let Some(pos) = text.find("gss-lint:") else {
                continue;
            };
            let rest = text[pos + "gss-lint:".len()..]
                .trim_start()
                .trim_end_matches("*/")
                .trim_end();
            let (kind, tail) = if let Some(args) = rest.strip_prefix("allow(") {
                match split_paren(args) {
                    Some((inner, tail)) => {
                        let (rule, category) = match inner.split_once('[') {
                            Some((r, c)) => (
                                r.trim().to_owned(),
                                Some(c.trim_end_matches(']').trim().to_owned()),
                            ),
                            None => (inner.trim().to_owned(), None),
                        };
                        (DirectiveKind::Allow { rule, category }, tail)
                    }
                    None => {
                        errors.push((c.start, c.end, "unclosed `allow(`".to_owned()));
                        continue;
                    }
                }
            } else if let Some(args) = rest.strip_prefix("exempt(") {
                match split_paren(args) {
                    Some((inner, tail)) => match inner.split_once("::") {
                        Some((owner, field)) => (
                            DirectiveKind::Exempt {
                                owner: owner.trim().to_owned(),
                                field: field.trim().to_owned(),
                            },
                            tail,
                        ),
                        None => {
                            errors.push((
                                c.start,
                                c.end,
                                "exempt() takes `Struct::field`".to_owned(),
                            ));
                            continue;
                        }
                    },
                    None => {
                        errors.push((c.start, c.end, "unclosed `exempt(`".to_owned()));
                        continue;
                    }
                }
            } else if let Some(tail) = rest.strip_prefix("kernel") {
                (DirectiveKind::Kernel, tail)
            } else {
                errors.push((
                    c.start,
                    c.end,
                    format!(
                        "unknown gss-lint directive {:?} (expected allow(...), exempt(...) or kernel)",
                        rest.split_whitespace().next().unwrap_or("")
                    ),
                ));
                continue;
            };
            let justification = tail
                .trim_start_matches(|ch: char| {
                    ch.is_whitespace() || matches!(ch, '—' | '–' | '-' | ':' | ',')
                })
                .trim()
                .to_owned();
            let scope = self.directive_scope(ci, &kind, &mut kernel_marks);
            directives.push(Directive {
                kind,
                justification,
                start: c.start,
                end: c.end,
                scope,
            });
        }
        for fn_idx in kernel_marks {
            self.functions[fn_idx].kernel = true;
        }
        self.directives = directives;
        self.directive_errors = errors;
    }

    /// Resolves where a directive applies; `kernel_marks` collects the
    /// functions flagged by `kernel` directives.
    fn directive_scope(
        &self,
        comment_idx: usize,
        kind: &DirectiveKind,
        kernel_marks: &mut Vec<usize>,
    ) -> DirectiveScope {
        let c = self.comments[comment_idx];
        let (comment_line, _) = self.line_col(c.start);
        // A trailing comment (code before it on the same line) covers
        // that line.
        let own_line = !self
            .tokens
            .iter()
            .any(|t| t.end <= c.start && self.line_col(t.start).0 == comment_line);
        if !own_line {
            return DirectiveScope::Line(comment_line);
        }
        // Own-line comment: find the next code token.
        let next = self.tokens.iter().position(|t| t.start >= c.end);
        let Some(mut j) = next else {
            return DirectiveScope::Line(comment_line);
        };
        // If the next item is an `fn` (skipping attributes + qualifiers),
        // the directive covers the whole item.
        let mut probe = j;
        let mut steps = 0;
        while probe < self.tokens.len() && steps < 16 {
            if self.is_punct(probe, '#') && self.is_punct(probe + 1, '[') {
                probe = self.match_delim(probe + 1) + 1;
                continue;
            }
            if self.is_ident(probe, "fn") {
                if let Some(fi) = self.functions.iter().position(|f| f.fn_tok == probe) {
                    if matches!(kind, DirectiveKind::Kernel) {
                        kernel_marks.push(fi);
                    }
                    let f = &self.functions[fi];
                    let end = f.body.map_or(self.tokens[f.name_tok].end, |(_, close)| {
                        self.tokens[close].end
                    });
                    return DirectiveScope::Span(self.tokens[f.fn_tok].start, end);
                }
                break;
            }
            match self.tokens[probe].kind {
                TokKind::Ident
                    if matches!(
                        self.tok_str(probe),
                        "pub" | "const" | "unsafe" | "async" | "extern" | "crate"
                    ) => {}
                TokKind::Punct if self.is_punct(probe, '(') => {
                    probe = self.match_delim(probe) + 1;
                    continue;
                }
                TokKind::Str => {}
                _ => break,
            }
            probe += 1;
            steps += 1;
        }
        // Otherwise it covers the next code line.
        j = next.unwrap_or(j);
        DirectiveScope::Line(self.line_col(self.tokens[j].start).0)
    }
}

/// Splits `"inner) tail"` into `("inner", " tail")`.
fn split_paren(s: &str) -> Option<(&str, &str)> {
    let i = s.find(')')?;
    Some((&s[..i], &s[i + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs", src.to_owned())
    }

    #[test]
    fn finds_functions_and_bodies() {
        let f = file("pub fn a() { b(); }\nfn b() {}\ntrait T { fn c(&self); }");
        let names: Vec<&str> = f.functions.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert!(f.functions[0].is_pub);
        assert!(!f.functions[1].is_pub);
        assert!(f.functions[0].body.is_some());
        assert!(f.functions[2].body.is_none(), "trait decl has no body");
    }

    #[test]
    fn finds_struct_fields() {
        let f = file(
            "pub struct S<T: Fn() -> u64> {\n    #[serde(skip)]\n    pub a: Vec<(u8, u8)>,\n    b: T,\n}\nstruct Unit;\nstruct Tup(u8);",
        );
        assert_eq!(f.structs.len(), 3);
        let fields: Vec<&str> = f.structs[0]
            .fields
            .iter()
            .map(|x| x.name.as_str())
            .collect();
        assert_eq!(fields, ["a", "b"]);
        assert!(f.structs[1].fields.is_empty());
        assert!(f.structs[2].fields.is_empty());
    }

    #[test]
    fn test_regions_cover_cfg_test_mods_and_test_fns() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let f = file(src);
        let live = src.find("live").unwrap();
        let helper = src.find("helper").unwrap();
        assert!(!f.in_test(live));
        assert!(f.in_test(helper));
        let f2 = file("#[cfg(not(test))]\nfn shipped() {}\n");
        assert!(!f2.in_test(f2.text.find("shipped").unwrap()));
    }

    #[test]
    fn parses_allow_directives_with_scopes() {
        let src = "\
fn f() {
    let a = 1; // gss-lint: allow(no-panic-in-request-path) — trailing
    // gss-lint: allow(lock-discipline[x]) — own line
    let b = 2;
}
// gss-lint: allow(no-alloc-in-kernel) — whole fn
fn g() { let c = 3; }
";
        let f = file(src);
        assert_eq!(f.directives.len(), 3);
        assert_eq!(f.directives[0].scope, DirectiveScope::Line(2));
        assert_eq!(f.directives[1].scope, DirectiveScope::Line(4));
        match f.directives[2].scope {
            DirectiveScope::Span(s, e) => {
                let g = src.find("fn g").unwrap();
                assert!(s <= g && e >= src.rfind('}').unwrap());
            }
            ref other => panic!("expected fn scope, got {other:?}"),
        }
        assert_eq!(f.directives[1].justification, "own line");
        match &f.directives[1].kind {
            DirectiveKind::Allow { rule, category } => {
                assert_eq!(rule, "lock-discipline");
                assert_eq!(category.as_deref(), Some("x"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_exempt_and_kernel_directives() {
        let src = "\
// gss-lint: exempt(QueryOptions::threads) — never changes the bytes
fn options_fingerprint() {}
// gss-lint: kernel
fn hot() {}
";
        let f = file(src);
        assert_eq!(f.directives.len(), 2);
        assert!(matches!(
            &f.directives[0].kind,
            DirectiveKind::Exempt { owner, field } if owner == "QueryOptions" && field == "threads"
        ));
        assert!(f.functions[1].kernel, "kernel marker flags `hot`");
        assert!(!f.functions[0].kernel);
    }

    #[test]
    fn malformed_directives_are_reported() {
        let f = file("// gss-lint: frobnicate\nfn x() {}\n");
        assert_eq!(f.directive_errors.len(), 1);
        assert!(f.directive_errors[0].2.contains("unknown"));
    }

    #[test]
    fn line_col_is_one_based() {
        let f = file("ab\ncd\n");
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(3), (2, 1));
        assert_eq!(f.line_col(4), (2, 2));
        assert_eq!(f.line_text(2), "cd");
    }
}
