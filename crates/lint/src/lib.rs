//! `gss-lint` — workspace-native static analysis for the gss engine.
//!
//! The serving stack's correctness rests on invariants that no type
//! system or runtime test fully enforces: cache keys must fingerprint
//! every result-affecting option, solver kernels must stay
//! allocation-free, executor loops must reach cancellation checkpoints,
//! the server request path must never panic, solver calls must not run
//! under cache/queue locks, a mutation ack must never precede its WAL
//! flush (durability-before-ack), and the retained reference solvers
//! must keep the signatures their parity oracles compare against. This crate
//! checks those invariants at the **source level** — a small std-only
//! lexer plus an item/brace-tree model (no `syn`, same vendoring
//! discipline as the rest of the workspace) and a registry of
//! project-specific rules with span-accurate, `rustc`-style diagnostics.
//!
//! # Directives
//!
//! Rules are steered by structured comments:
//!
//! - `// gss-lint: allow(<rule>) — <justification>` suppresses a rule on
//!   the same line (trailing), the next line (own-line), or a whole
//!   function (own-line directly above the `fn`). A category narrows the
//!   suppression: `allow(no-panic-in-request-path[index])` keeps the
//!   `unwrap`/`expect`/`panic` gates live while permitting indexing.
//! - `// gss-lint: exempt(<Struct>::<field>) — <justification>` excludes
//!   one field from the fingerprint-completeness check.
//! - `// gss-lint: kernel` marks the next `fn` as an allocation-free hot
//!   region for no-alloc-in-kernel.
//!
//! Every directive **requires a justification**; a bare `allow(...)` is
//! itself a diagnostic (`lint-directives`), so the allowlist cannot rot
//! silently. Unknown rule names in `allow(...)` are diagnostics too.
//!
//! # Running
//!
//! `cargo lint` (an alias for `cargo run -p gss-lint -- --workspace
//! --deny-all`) lints every `.rs` file in the workspace, excluding
//! `vendor/`, `target/` and the lint fixtures. CI gates on it.

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

use std::io;
use std::path::{Path, PathBuf};

pub use diag::Diagnostic;
pub use source::{Directive, DirectiveKind, DirectiveScope, SourceFile};

/// The set of files one lint run analyzes, with cross-file rule support
/// (the fingerprint rule reads a struct in one file and a function in
/// another).
#[derive(Default)]
pub struct Workspace {
    /// The indexed files, in load order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// Adds one file under the given (possibly virtual) path. Rule
    /// applicability is decided from path suffixes, so tests can register
    /// fixture content under the paths the rules watch.
    pub fn add_file(&mut self, path: impl Into<String>, text: String) {
        self.files.push(SourceFile::new(path, text));
    }

    /// Loads every workspace `.rs` file under `root`, skipping `vendor/`,
    /// `target/`, `.git/` and the lint fixture tree. Paths are stored
    /// relative to `root`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut ws = Workspace::new();
        let mut paths: Vec<PathBuf> = Vec::new();
        for top in ["crates", "src", "tests", "examples", "benches"] {
            let dir = root.join(top);
            if dir.is_dir() {
                collect_rs(&dir, &mut paths)?;
            }
        }
        paths.sort();
        for p in paths {
            let text = std::fs::read_to_string(&p)?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            ws.add_file(rel, text);
        }
        Ok(ws)
    }

    /// The index of the first file whose path ends with `suffix`.
    pub fn file_matching(&self, suffix: &str) -> Option<usize> {
        self.files.iter().position(|f| f.path.ends_with(suffix))
    }

    /// Runs every registered rule plus the directive meta-checks, applies
    /// `allow(...)` suppression, and returns the surviving diagnostics in
    /// (file, offset) order.
    pub fn run(&self) -> Vec<Diagnostic> {
        let mut raw = Vec::new();
        for rule in rules::registry() {
            rule.check(self, &mut raw);
        }
        let mut out: Vec<Diagnostic> = raw.into_iter().filter(|d| !self.suppressed(d)).collect();
        self.check_directives(&mut out);
        out.sort_by_key(|d| (d.file, d.start));
        out
    }

    /// True when an `allow` directive in the diagnostic's file covers it.
    fn suppressed(&self, d: &Diagnostic) -> bool {
        let file = &self.files[d.file];
        let (line, _) = file.line_col(d.start);
        file.directives.iter().any(|dir| {
            let DirectiveKind::Allow { rule, category } = &dir.kind else {
                return false;
            };
            if rule != d.rule {
                return false;
            }
            if let Some(cat) = category {
                if cat != d.category {
                    return false;
                }
            }
            match dir.scope {
                DirectiveScope::Line(l) => l == line,
                DirectiveScope::Span(s, e) => d.start >= s && d.start < e,
            }
        })
    }

    /// The `lint-directives` meta-rule: malformed directives, unknown
    /// rule names, missing justifications, dangling `kernel` markers.
    fn check_directives(&self, out: &mut Vec<Diagnostic>) {
        let known = rules::rule_ids();
        for (fi, file) in self.files.iter().enumerate() {
            for (start, end, message) in &file.directive_errors {
                out.push(Diagnostic {
                    rule: rules::DIRECTIVES,
                    category: "syntax",
                    file: fi,
                    start: *start,
                    end: *end,
                    message: message.clone(),
                    note: None,
                });
            }
            for dir in &file.directives {
                if let DirectiveKind::Allow { rule, .. } = &dir.kind {
                    if !known.contains(&rule.as_str()) {
                        out.push(Diagnostic {
                            rule: rules::DIRECTIVES,
                            category: "unknown-rule",
                            file: fi,
                            start: dir.start,
                            end: dir.end,
                            message: format!("allow() names unknown rule `{rule}`"),
                            note: Some(format!("known rules: {}", known.join(", "))),
                        });
                    }
                }
                if dir.justification.is_empty() {
                    out.push(Diagnostic {
                        rule: rules::DIRECTIVES,
                        category: "justification",
                        file: fi,
                        start: dir.start,
                        end: dir.end,
                        message: "directive needs a justification".to_owned(),
                        note: Some(
                            "write `// gss-lint: allow(rule) — why this is safe`; \
                             unexplained suppressions rot"
                                .to_owned(),
                        ),
                    });
                }
                if matches!(dir.kind, DirectiveKind::Kernel)
                    && matches!(dir.scope, DirectiveScope::Line(_))
                {
                    out.push(Diagnostic {
                        rule: rules::DIRECTIVES,
                        category: "dangling-kernel",
                        file: fi,
                        start: dir.start,
                        end: dir.end,
                        message: "`kernel` marker is not followed by an fn".to_owned(),
                        note: None,
                    });
                }
            }
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(&*name, "target" | "vendor" | ".git" | "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_suppression_and_meta_checks() {
        let mut ws = Workspace::new();
        ws.add_file(
            "crates/server/src/cache.rs",
            "fn f(v: Option<u8>) -> u8 {\n    v.unwrap() // gss-lint: allow(no-panic-in-request-path) — test stub\n}\n"
                .to_owned(),
        );
        assert!(ws.run().is_empty(), "trailing allow suppresses");

        let mut ws = Workspace::new();
        ws.add_file(
            "crates/x/src/lib.rs",
            "// gss-lint: allow(frobnicate) — nope\nfn f() {}\n".to_owned(),
        );
        let diags = ws.run();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].category, "unknown-rule");

        let mut ws = Workspace::new();
        ws.add_file(
            "crates/x/src/lib.rs",
            "// gss-lint: allow(lock-discipline)\nfn f() {}\n".to_owned(),
        );
        let diags = ws.run();
        assert_eq!(diags.len(), 1, "missing justification is a diagnostic");
        assert_eq!(diags[0].category, "justification");
    }
}
