//! A minimal, dependency-free Rust lexer.
//!
//! The lint rules operate on token streams, not syntax trees, so the
//! lexer only has to get the *boundaries* right: identifiers (keywords
//! included), numbers, string/char literals (including raw and byte
//! strings — a `"` inside a literal must never open or close a region),
//! lifetimes, single-character punctuation, and comments (line, nested
//! block). Multi-character operators like `::` or `->` surface as runs
//! of punctuation tokens; rules match on those runs.
//!
//! The lexer never fails: unterminated literals or comments simply run
//! to end of input. Rules only ever see code that `rustc` also compiles,
//! so graceful degradation on malformed input is all that is needed.

/// What a [`Token`] is.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `while`, `unwrap`, `r#type`).
    Ident,
    /// A numeric literal (`0x1f`, `1.5e-3`, `42u64`).
    Number,
    /// A string or byte-string literal, raw or not.
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// One punctuation character (`.`, `:`, `{`, …).
    Punct,
}

/// One lexed token: a kind plus its byte span in the source.
#[derive(Copy, Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// One comment (line or block, doc or not), with its byte span.
#[derive(Copy, Clone, Debug)]
pub struct Comment {
    /// Byte offset of the `//` or `/*`.
    pub start: usize,
    /// Byte offset one past the comment's last byte.
    pub end: usize,
}

/// The result of lexing one file: code tokens and comments, both in
/// source order.
pub struct Lexed {
    /// Code tokens, comments excluded.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Scans a non-raw string/char body starting *after* the opening quote;
/// returns the offset one past the closing quote (or end of input).
fn scan_quoted(b: &[u8], mut i: usize, quote: u8) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            c if c == quote => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Scans a raw string at `i` pointing at the first `#` or `"` after the
/// `r`; returns the offset one past the closing quote+hashes.
fn scan_raw(b: &[u8], mut i: usize) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return i; // not actually a raw string; caller guards against this
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'"'
            && b.len() - i > hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&c| c == b'#')
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// True when the `r`/`br` at `i` begins a raw string.
fn raw_follows(b: &[u8], mut i: usize) -> bool {
    while i < b.len() && b[i] == b'#' {
        i += 1;
    }
    i < b.len() && b[i] == b'"'
}

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() && (b[i + 1] == b'/' || b[i + 1] == b'*') {
            let start = i;
            if b[i + 1] == b'/' {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            } else {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            comments.push(Comment { start, end: i });
            continue;
        }
        // Raw strings and byte strings: r"..", r#".."#, b"..", br".." and
        // the raw identifier r#ident.
        if c == b'r' || c == b'b' {
            let start = i;
            let after_prefix = if c == b'b' && i + 1 < b.len() && b[i + 1] == b'r' {
                i + 2
            } else {
                i + 1
            };
            let is_raw_capable = c == b'r' || (c == b'b' && after_prefix == i + 2);
            if is_raw_capable && after_prefix < b.len() && raw_follows(b, after_prefix) {
                i = scan_raw(b, after_prefix);
                tokens.push(Token {
                    kind: TokKind::Str,
                    start,
                    end: i,
                });
                continue;
            }
            if c == b'r'
                && i + 1 < b.len()
                && b[i + 1] == b'#'
                && i + 2 < b.len()
                && is_ident_start(b[i + 2])
            {
                // Raw identifier r#type.
                i += 2;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Ident,
                    start,
                    end: i,
                });
                continue;
            }
            if c == b'b' && i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'\'') {
                let quote = b[i + 1];
                i = scan_quoted(b, i + 2, quote);
                tokens.push(Token {
                    kind: if quote == b'"' {
                        TokKind::Str
                    } else {
                        TokKind::Char
                    },
                    start,
                    end: i,
                });
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            tokens.push(Token {
                kind: TokKind::Ident,
                start,
                end: i,
            });
            continue;
        }
        if c == b'"' {
            let start = i;
            i = scan_quoted(b, i + 1, b'"');
            tokens.push(Token {
                kind: TokKind::Str,
                start,
                end: i,
            });
            continue;
        }
        if c == b'\'' {
            let start = i;
            // 'a' is a char, 'a is a lifetime, '\n' is a char, ' ' is a char.
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                i = scan_quoted(b, i + 1, b'\'');
                tokens.push(Token {
                    kind: TokKind::Char,
                    start,
                    end: i,
                });
                continue;
            }
            let mut j = i + 1;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            if j > i + 1 && j < b.len() && b[j] == b'\'' {
                // 'a' — a char literal (possibly multi-byte like 'é').
                i = j + 1;
                tokens.push(Token {
                    kind: TokKind::Char,
                    start,
                    end: i,
                });
            } else if j > i + 1 {
                // 'lifetime — no closing quote.
                i = j;
                tokens.push(Token {
                    kind: TokKind::Lifetime,
                    start,
                    end: i,
                });
            } else {
                // Punctuation char like '(' or ' ' inside quotes.
                i = scan_quoted(b, i + 1, b'\'');
                tokens.push(Token {
                    kind: TokKind::Char,
                    start,
                    end: i,
                });
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            loop {
                while i < b.len() && (is_ident_continue(b[i])) {
                    i += 1;
                }
                // Exponent sign: 1e-3, 2.5E+7.
                if i < b.len()
                    && (b[i] == b'+' || b[i] == b'-')
                    && (b[i - 1] == b'e' || b[i - 1] == b'E')
                    && i + 1 < b.len()
                    && b[i + 1].is_ascii_digit()
                {
                    i += 1;
                    continue;
                }
                // Fraction: 1.5 — but not the range 0..n or a method 1.max(2).
                if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    i += 1;
                    continue;
                }
                break;
            }
            tokens.push(Token {
                kind: TokKind::Number,
                start,
                end: i,
            });
            continue;
        }
        // Single punctuation character.
        tokens.push(Token {
            kind: TokKind::Punct,
            start: i,
            end: i + 1,
        });
        i += 1;
    }
    Lexed { tokens, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        let lexed = lex(src);
        lexed
            .tokens
            .iter()
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    #[test]
    fn idents_keywords_numbers_punct() {
        let toks = kinds("fn f(x: u64) -> f64 { x as f64 * 1.5e-3 }");
        assert_eq!(toks[0], (TokKind::Ident, "fn"));
        assert_eq!(toks[1], (TokKind::Ident, "f"));
        assert!(toks.contains(&(TokKind::Number, "1.5e-3")));
        assert!(toks.contains(&(TokKind::Punct, "{")));
    }

    #[test]
    fn ranges_are_not_fractions() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.contains(&(TokKind::Number, "0")));
        assert!(toks.contains(&(TokKind::Number, "10")));
        assert_eq!(
            toks.iter().filter(|(_, s)| *s == ".").count(),
            2,
            "the two range dots lex as punctuation"
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "quoted // not a comment { vec! }";"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(!toks.iter().any(|(_, s)| *s == "vec"));
        let lexed = lex(r#"let s = "has // comment";"#);
        assert!(lexed.comments.is_empty());
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let s = r#"raw "inner" body"#; let b = b"bytes";"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        let toks = kinds("let c = b'x';");
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Char));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn comments_line_and_nested_block() {
        let lexed = lex("a // line\nb /* outer /* inner */ still */ c");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.tokens.len(), 3);
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokKind::Ident, "r#type")));
    }
}
