//! The rule registry. Each rule enforces one engine invariant; see the
//! module docs of each rule for the invariant, the PR that introduced
//! it, and what a violation looks like.

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::Workspace;

pub mod cancellation;
pub mod durability;
pub mod fingerprint;
pub mod lock_discipline;
pub mod no_alloc;
pub mod no_panic;
pub mod parity;

/// The id of the directive meta-rule (malformed/unjustified directives).
/// Not a registry rule and not a valid `allow(...)` target — the checks
/// that keep the allowlist honest cannot themselves be allowed away.
pub const DIRECTIVES: &str = "lint-directives";

/// One registered rule.
pub trait Rule {
    /// Stable rule id (the `allow(...)` target).
    fn id(&self) -> &'static str;
    /// Runs the rule over the whole workspace, appending findings.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// Every registered rule, in reporting order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(fingerprint::FingerprintCompleteness),
        Box::new(no_alloc::NoAllocInKernel),
        Box::new(cancellation::CancellationCheckpoint),
        Box::new(no_panic::NoPanicInRequestPath),
        Box::new(durability::DurabilityBeforeAck),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(parity::ReferenceParityDrift),
    ]
}

/// The ids of every registered rule (valid `allow(...)` targets).
pub fn rule_ids() -> Vec<&'static str> {
    registry().iter().map(|r| r.id()).collect()
}

/// True when token `i` is an identifier equal to `s` with a `.` before
/// it and a `(` after it — a method call `.s(...)`.
pub(crate) fn is_method_call(file: &SourceFile, i: usize, s: &str) -> bool {
    file.is_ident(i, s) && i > 0 && file.is_punct(i - 1, '.') && file.is_punct(i + 1, '(')
}

/// Finds every call to `name` (an identifier followed by `(` that is not
/// its own declaration) and yields the token range of the argument list
/// (open paren index, close paren index).
pub(crate) fn call_arg_ranges(file: &SourceFile, name: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..file.tokens.len() {
        if file.is_ident(i, name)
            && file.is_punct(i + 1, '(')
            && !(i > 0 && file.is_ident(i - 1, "fn"))
        {
            out.push((i + 1, file.match_delim(i + 1)));
        }
    }
    out
}

/// True when any token in `[start, end)` is an identifier containing
/// `needle` (case-sensitive substring) — used for the cancellation
/// heuristics (`cancel`, `cancels`, `cancel_token`, `is_cancelled`…).
pub(crate) fn range_has_ident_containing(
    file: &SourceFile,
    start: usize,
    end: usize,
    needles: &[&str],
) -> bool {
    (start..end.min(file.tokens.len())).any(|i| {
        file.tokens[i].kind == crate::lexer::TokKind::Ident
            && needles.iter().any(|n| file.tok_str(i).contains(n))
    })
}
