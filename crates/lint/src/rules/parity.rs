//! **reference-parity-drift** — the retained reference solvers must keep
//! kernel-compatible signatures (PR 4).
//!
//! PR 4 rewrote the GED/MCS hot paths around bitset kernels and kept the
//! original implementations verbatim in `gss_ged::reference` /
//! `gss_mcs::reference` as parity oracles: property tests call the
//! kernel and the reference with the same inputs and assert identical
//! costs, witnesses and expanded counts. That oracle only binds while
//! the two signatures agree — if a kernel entry point gains a parameter
//! or changes its return shape and the reference does not (or vice
//! versa), the parity tests quietly compare less than they claim.
//!
//! For every `pub fn` in a reference module, the rule derives the kernel
//! counterpart's name (`reference_exact_ged` → `exact_ged`,
//! `max_clique_reference` → `max_clique_expanded` / `max_clique`) and
//! compares the normalized parameter types and return type token-for-
//! token (parameter names and lifetimes are ignored).

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::{FnItem, SourceFile};
use crate::Workspace;

use super::Rule;

/// Reference module → candidate kernel modules.
const PAIRS: &[(&str, &[&str])] = &[
    ("ged/src/reference.rs", &["ged/src/exact.rs"]),
    (
        "mcs/src/reference.rs",
        &["mcs/src/exact.rs", "mcs/src/product.rs"],
    ),
];

/// See the module docs.
pub struct ReferenceParityDrift;

impl Rule for ReferenceParityDrift {
    fn id(&self) -> &'static str {
        "reference-parity-drift"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for (ref_suffix, kernel_suffixes) in PAIRS {
            let Some(rfi) = ws.file_matching(ref_suffix) else {
                continue;
            };
            let kernels: Vec<usize> = kernel_suffixes
                .iter()
                .filter_map(|s| ws.file_matching(s))
                .collect();
            if kernels.is_empty() {
                continue;
            }
            let rfile = &ws.files[rfi];
            for f in &rfile.functions {
                if !f.is_pub || f.body.is_none() || rfile.in_test(rfile.tokens[f.fn_tok].start) {
                    continue;
                }
                let Some(base) = f
                    .name
                    .strip_prefix("reference_")
                    .or_else(|| f.name.strip_suffix("_reference"))
                else {
                    continue; // helpers without the naming convention
                };
                let ref_sig = normalized_signature(rfile, f);
                // Prefer the `_expanded` variant (same return shape as the
                // reference, which reports expanded counts), fall back to
                // the bare name.
                let mut found_name = None;
                let mut matched = false;
                'outer: for cand in [format!("{base}_expanded"), base.to_owned()] {
                    for &kfi in &kernels {
                        let kfile = &ws.files[kfi];
                        if let Some(kf) = kfile
                            .functions
                            .iter()
                            .find(|k| k.is_pub && k.name == cand && k.body.is_some())
                        {
                            found_name = Some((kfi, cand.clone()));
                            if normalized_signature(kfile, kf) == ref_sig {
                                matched = true;
                                break 'outer;
                            }
                        }
                    }
                    if found_name.is_some() {
                        break;
                    }
                }
                let tok = rfile.tokens[f.name_tok];
                match (matched, found_name) {
                    (true, _) => {}
                    (false, Some((kfi, kname))) => {
                        let kfile = &ws.files[kfi];
                        let kf = kfile
                            .functions
                            .iter()
                            .find(|k| k.name == kname)
                            .expect("just located by name");
                        out.push(Diagnostic {
                            rule: "reference-parity-drift",
                            category: "signature",
                            file: rfi,
                            start: tok.start,
                            end: tok.end,
                            message: format!(
                                "`{}` drifted from its kernel counterpart `{}` ({})",
                                f.name, kname, kfile.path
                            ),
                            note: Some(format!(
                                "the parity oracle compares these two; reference takes `{ref_sig}` \
                                 but the kernel takes `{}` — keep them identical",
                                normalized_signature(kfile, kf)
                            )),
                        });
                    }
                    (false, None) => {
                        out.push(Diagnostic {
                            rule: "reference-parity-drift",
                            category: "missing-kernel",
                            file: rfi,
                            start: tok.start,
                            end: tok.end,
                            message: format!(
                                "reference fn `{}` has no kernel counterpart `{base}` / \
                                 `{base}_expanded`",
                                f.name
                            ),
                            note: Some(
                                "a reference without a kernel is a dead oracle; remove it or \
                                 restore the kernel entry point"
                                    .to_owned(),
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// The comparable shape of a signature: parameter *types* (names
/// dropped) and the return type, as space-joined token text with
/// lifetimes removed. `&'a Graph` and `&Graph` normalize identically.
fn normalized_signature(file: &SourceFile, f: &FnItem) -> String {
    // Parameter list: the first `(` after the name (skipping generics).
    let mut i = f.name_tok + 1;
    let mut angle = 0i64;
    while i < file.tokens.len() {
        if file.tokens[i].kind == TokKind::Punct {
            match file.text.as_bytes()[file.tokens[i].start] {
                b'<' => angle += 1,
                b'>' if !(i > 0 && file.is_punct(i - 1, '-')) => angle -= 1,
                b'(' if angle <= 0 => break,
                _ => {}
            }
        }
        i += 1;
    }
    let open = i;
    let close = file.match_delim(open);
    let mut params: Vec<String> = Vec::new();
    let mut j = open + 1;
    let mut start = j;
    let mut depth = 0i64;
    let mut angle = 0i64;
    while j <= close {
        let at_end = j == close;
        let is_sep = !at_end
            && file.tokens[j].kind == TokKind::Punct
            && file.text.as_bytes()[file.tokens[j].start] == b','
            && depth == 0
            && angle <= 0;
        if at_end || is_sep {
            if j > start {
                params.push(param_type(file, start, j));
            }
            start = j + 1;
        } else if file.tokens[j].kind == TokKind::Punct {
            match file.text.as_bytes()[file.tokens[j].start] {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b'<' => angle += 1,
                b'>' if !(j > 0 && file.is_punct(j - 1, '-')) => angle -= 1,
                _ => {}
            }
        }
        j += 1;
    }
    // Return type: `-> …` up to the body `{` / `;` / `where`.
    let mut ret = String::new();
    if file.is_punct(close + 1, '-') && file.is_punct(close + 2, '>') {
        let stop = f.body.map_or(file.tokens.len(), |(o, _)| o);
        for k in close + 3..stop {
            if file.is_ident(k, "where") {
                break;
            }
            if file.tokens[k].kind == TokKind::Lifetime {
                continue;
            }
            if !ret.is_empty() {
                ret.push(' ');
            }
            ret.push_str(file.tok_str(k));
        }
    }
    format!("({}) -> {}", params.join(", "), ret)
}

/// The type part of one parameter (`x: &Graph` → `& Graph`; a bare
/// `self`/`&mut self` keeps its own shape), lifetimes dropped.
fn param_type(file: &SourceFile, start: usize, end: usize) -> String {
    let colon = (start..end).find(|&k| {
        file.is_punct(k, ':')
            && !file.is_punct(k + 1, ':')
            && !(k > start && file.is_punct(k - 1, ':'))
    });
    let from = colon.map_or(start, |c| c + 1);
    let mut s = String::new();
    for k in from..end {
        if file.tokens[k].kind == TokKind::Lifetime {
            continue;
        }
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(file.tok_str(k));
    }
    s
}
