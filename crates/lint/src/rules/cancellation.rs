//! **cancellation-checkpoint** — executor loops must reach a
//! [`CancelToken`] check (PR 5).
//!
//! Cooperative cancellation only works if every long-running loop in the
//! staged executor actually polls the token: a scan loop without a
//! checkpoint turns `deadline_ms` and explicit cancellation into dead
//! letters, and the server's mid-evaluation aborts (the `cancelled`
//! stats counter) silently stop firing. Two checks:
//!
//! 1. In `gss_core::exec` (`core/src/exec.rs`): inside every function
//!    that has cancellation in scope (its signature or body mentions
//!    `CancelToken` or a `cancel`-ish identifier), each `for`/`while`/
//!    `loop` must contain a cancellation identifier (`checkpoint`,
//!    `is_cancelled`, anything containing `cancel`) in its header or
//!    body. Bounded bookkeeping loops that run no solver calls are
//!    justified with `allow(cancellation-checkpoint)`.
//! 2. Everywhere: every call to `parallel_map_waves` must pass a
//!    checkpoint that mentions the token — the wave structure exists
//!    *for* cancellation, so a caller wiring in a no-op checkpoint is a
//!    bug.
//!
//! [`CancelToken`]: ../../gss_core/exec/struct.CancelToken.html

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Workspace;

use super::{call_arg_ranges, range_has_ident_containing, Rule};

const CANCEL_NEEDLES: &[&str] = &["cancel", "checkpoint", "Cancelled"];

/// See the module docs.
pub struct CancellationCheckpoint;

impl Rule for CancellationCheckpoint {
    fn id(&self) -> &'static str {
        "cancellation-checkpoint"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for (fi, file) in ws.files.iter().enumerate() {
            if file.path.ends_with("core/src/exec.rs") {
                check_exec_loops(fi, file, out);
            }
            check_wave_callers(fi, file, out);
        }
    }
}

fn check_exec_loops(fi: usize, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for f in &file.functions {
        let Some((open, close)) = f.body else {
            continue;
        };
        if file.in_test(file.tokens[f.fn_tok].start) {
            continue;
        }
        // Cancellation in scope? Look at the whole item (signature + body).
        if !range_has_ident_containing(file, f.fn_tok, close + 1, CANCEL_NEEDLES)
            && !range_has_ident_containing(file, f.fn_tok, close + 1, &["CancelToken"])
        {
            continue;
        }
        let mut i = open + 1;
        while i < close {
            if is_loop_keyword(file, i) {
                // The loop body: first `{` at paren/bracket depth 0 after
                // the keyword (struct literals are not legal in loop
                // headers without parens).
                let mut depth = 0i64;
                let mut j = i + 1;
                let mut body = None;
                while j < close {
                    if file.tokens[j].kind == TokKind::Punct {
                        match file.text.as_bytes()[file.tokens[j].start] {
                            b'(' | b'[' => depth += 1,
                            b')' | b']' => depth -= 1,
                            b'{' if depth == 0 => {
                                body = Some((j, file.match_delim(j)));
                                break;
                            }
                            _ => {}
                        }
                    }
                    j += 1;
                }
                if let Some((_, bc)) = body {
                    // Header + body (nested loops included) must mention
                    // the token.
                    if !range_has_ident_containing(file, i, bc + 1, CANCEL_NEEDLES) {
                        let tok = file.tokens[i];
                        out.push(Diagnostic {
                            rule: "cancellation-checkpoint",
                            category: "loop",
                            file: fi,
                            start: tok.start,
                            end: tok.end,
                            message: format!(
                                "loop in `{}` never reaches a CancelToken check",
                                f.name
                            ),
                            note: Some(
                                "every executor loop must poll cancellation (e.g. \
                                 cancel.checkpoint()?) or justify its boundedness with \
                                 allow(cancellation-checkpoint)"
                                    .to_owned(),
                            ),
                        });
                    }
                }
            }
            i += 1;
        }
    }
}

fn check_wave_callers(fi: usize, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (open, close) in call_arg_ranges(file, "parallel_map_waves") {
        let call_tok = file.tokens[open - 1];
        if file.in_test(call_tok.start) {
            continue;
        }
        if !range_has_ident_containing(file, open, close + 1, CANCEL_NEEDLES) {
            out.push(Diagnostic {
                rule: "cancellation-checkpoint",
                category: "waves",
                file: fi,
                start: call_tok.start,
                end: call_tok.end,
                message: "parallel_map_waves called without a cancellation checkpoint".to_owned(),
                note: Some(
                    "pass `|| cancel.checkpoint()` (or equivalent) — the wave structure exists \
                     so cancellation is observed between waves"
                        .to_owned(),
                ),
            });
        }
    }
}

/// True when token `i` starts a loop: `for` (not `impl .. for`, not HRTB
/// `for<'a>`), `while`, or `loop` followed by `{`.
fn is_loop_keyword(file: &SourceFile, i: usize) -> bool {
    if file.is_ident(i, "while") {
        return true;
    }
    if file.is_ident(i, "loop") {
        return file.is_punct(i + 1, '{');
    }
    if file.is_ident(i, "for") {
        return !file.is_punct(i + 1, '<');
    }
    false
}
