//! **durability-before-ack** — a mutation is acknowledged only after its
//! WAL record is flushed (PR 9).
//!
//! The durable store's contract is *durability before ack*: the epoch a
//! client sees in `{"ok":true,"epoch":N,...}` must already be on disk
//! (appended to the write-ahead log and flushed per the fsync policy)
//! when the response leaves. Two orderings uphold it, and this rule pins
//! both:
//!
//! - **`publish-before-append`** (`gss-store`): inside any function of
//!   the store that both touches the WAL and publishes a new head
//!   snapshot (an assignment through `self.current`), the
//!   `wal.append(...)` call must come lexically *before* the publish.
//!   A snapshot published first would be visible to readers — and its
//!   receipt returnable — before the log write, so a crash in between
//!   would acknowledge an epoch recovery cannot reproduce.
//! - **`ack-without-durability`** (`gss-server`): constructing a
//!   `Response::Mutated` envelope is only legitimate downstream of an
//!   `apply_mutation_logged` / `apply_logged` call in the same function
//!   (those return only after the WAL flush). A `Mutated` ack assembled
//!   any other way — e.g. echoing the request before applying it — is
//!   an unfounded durability claim.
//!
//! Both checks are lexical-order heuristics, so a justified exemption
//! (`// gss-lint: allow(durability-before-ack[...]) — why`) is the
//! escape hatch for code that reorders provably-equivalent steps.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Workspace;

use super::{is_method_call, Rule};

/// See the module docs.
pub struct DurabilityBeforeAck;

impl Rule for DurabilityBeforeAck {
    fn id(&self) -> &'static str {
        "durability-before-ack"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for (fi, file) in ws.files.iter().enumerate() {
            if file.path.contains("store/src/") {
                check_publish_order(fi, file, out);
            }
            if file.path.contains("server/src/") {
                check_mutated_acks(fi, file, out);
            }
        }
    }
}

/// `publish-before-append` (any `gss-store` module): every head-snapshot
/// publish in a WAL-touching function must be preceded by the `append`
/// call.
fn check_publish_order(fi: usize, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for body in fn_bodies(file) {
        let (start, end) = body;
        // Only functions that handle the WAL at all are in scope: a
        // non-durable publish has nothing to order against.
        let touches_wal = (start..end).any(|i| file.is_ident(i, "wal"));
        if !touches_wal {
            continue;
        }
        let mut appended_at: Option<usize> = None;
        for i in start..end {
            if file.in_test(file.tokens[i].start) {
                continue;
            }
            if is_method_call(file, i, "append") {
                appended_at.get_or_insert(i);
            }
            if is_head_publish(file, i) && appended_at.is_none() {
                let tok = file.tokens[i];
                out.push(Diagnostic {
                    rule: "durability-before-ack",
                    category: "publish-before-append",
                    file: fi,
                    start: tok.start,
                    end: tok.end,
                    message: "head snapshot published before the WAL append".to_owned(),
                    note: Some(
                        "readers (and the receipt) must never see an epoch that is not yet \
                         on the log; call wal.append(...) before swapping self.current"
                            .to_owned(),
                    ),
                });
            }
        }
    }
}

/// `ack-without-durability`: `Response::Mutated { ... }` construction
/// requires a prior `apply_mutation_logged` / `apply_logged` call in the
/// same function.
fn check_mutated_acks(fi: usize, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for body in fn_bodies(file) {
        let (start, end) = body;
        let mut applied_at: Option<usize> = None;
        for i in start..end {
            if file.in_test(file.tokens[i].start) {
                continue;
            }
            if (file.is_ident(i, "apply_mutation_logged") || file.is_ident(i, "apply_logged"))
                && file.is_punct(i + 1, '(')
            {
                applied_at.get_or_insert(i);
            }
            // `Response :: Mutated {` — a construction, not a pattern
            // match on an incoming response (patterns appear in tests,
            // which are excluded above, and in the client, which never
            // *builds* Mutated).
            if file.is_ident(i, "Response")
                && file.is_punct(i + 1, ':')
                && file.is_punct(i + 2, ':')
                && file.is_ident(i + 3, "Mutated")
                && file.is_punct(i + 4, '{')
                && applied_at.is_none()
            {
                let tok = file.tokens[i + 3];
                out.push(Diagnostic {
                    rule: "durability-before-ack",
                    category: "ack-without-durability",
                    file: fi,
                    start: tok.start,
                    end: tok.end,
                    message: "`Response::Mutated` built without a preceding \
                              apply_mutation_logged call"
                        .to_owned(),
                    note: Some(
                        "a Mutated ack promises the epoch is durable; build it only from \
                         the receipt of apply_mutation_logged / apply_logged, which return \
                         after the WAL flush"
                            .to_owned(),
                    ),
                });
            }
        }
    }
}

/// True at the `current` token of a head publish: the assignment
/// `*self.current.lock()... = ...;`. Distinguished from snapshot *reads*
/// (`Arc::clone(&self.current.lock()...)`) by requiring a top-level `=`
/// before the statement's `;`.
fn is_head_publish(file: &SourceFile, i: usize) -> bool {
    if !(file.is_ident(i, "current")
        && i >= 2
        && file.is_ident(i - 2, "self")
        && file.is_punct(i - 1, '.')
        && file.is_punct(i + 1, '.')
        && file.is_ident(i + 2, "lock"))
    {
        return false;
    }
    // Scan to the end of the statement for a bare assignment `=`.
    let mut depth = 0i64;
    let mut j = i + 1;
    while j < file.tokens.len() {
        if file.tokens[j].kind == TokKind::Punct {
            let c = file.text.as_bytes().get(file.tokens[j].start).copied();
            match c {
                Some(b'(') | Some(b'[') | Some(b'{') => depth += 1,
                Some(b')') | Some(b']') | Some(b'}') => depth -= 1,
                Some(b';') if depth <= 0 => return false,
                Some(b'=') if depth <= 0 => {
                    // Bare `=`: not `==`, `=>`, `<=`, `>=`, `!=`, `+=`…
                    let next_eq = file.is_punct(j + 1, '=') || file.is_punct(j + 1, '>');
                    let prev_op = j > 0
                        && file.tokens[j - 1].kind == TokKind::Punct
                        && matches!(
                            file.text.as_bytes().get(file.tokens[j - 1].start).copied(),
                            Some(b'=')
                                | Some(b'!')
                                | Some(b'<')
                                | Some(b'>')
                                | Some(b'+')
                                | Some(b'-')
                                | Some(b'*')
                                | Some(b'/')
                                | Some(b'%')
                                | Some(b'&')
                                | Some(b'|')
                                | Some(b'^')
                        );
                    if !next_eq && !prev_op {
                        return true;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    false
}

/// The token ranges of every `fn` body in the file (body-open to
/// matching close). Nested functions yield nested ranges; each range is
/// scanned independently, which is exactly the scoping the ordering
/// checks want.
fn fn_bodies(file: &SourceFile) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..file.tokens.len() {
        if !file.is_ident(i, "fn") {
            continue;
        }
        // The body is the first `{` after the signature at paren depth 0
        // (generics, argument lists and where clauses contain no braces).
        let mut depth = 0i64;
        let mut j = i + 1;
        while j < file.tokens.len() {
            if file.tokens[j].kind == TokKind::Punct {
                match file.text.as_bytes().get(file.tokens[j].start).copied() {
                    Some(b'(') | Some(b'[') => depth += 1,
                    Some(b')') | Some(b']') => depth -= 1,
                    Some(b'{') if depth <= 0 => {
                        out.push((j + 1, file.match_delim(j)));
                        break;
                    }
                    // A `;` ends a bodiless declaration (trait method).
                    Some(b';') if depth <= 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
    }
    out
}
