//! **lock-discipline** — no solver/engine call while a cache or queue
//! `MutexGuard` is live (PR 3).
//!
//! The server's shared state (the sharded result cache, the admission
//! queue) is guarded by plain mutexes sized for microsecond critical
//! sections. Holding one across a solver call turns a 50 µs lock into a
//! multi-second one: every connection thread hashing into that cache
//! shard stalls, the admission queue backs up, and backpressure fires
//! for reasons no profiler will attribute correctly. The dispatcher
//! deliberately pops jobs *out* of the queue lock before evaluating.
//!
//! In the `gss-server` crate, after any `.lock()` the rule scans the
//! guard's live range — the rest of the statement for a temporary guard,
//! the rest of the enclosing block for a `let`-bound one (an explicit
//! `drop(guard)` ends it early) — and flags calls into the evaluation
//! engine (`evaluate_batch`, `graph_similarity_*`, solver entry points).

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Workspace;

use super::Rule;

/// Engine/solver entry points that must not run under a lock.
const BANNED_CALLS: &[&str] = &[
    "evaluate_batch",
    "graph_similarity_skyline",
    "graph_similarity_skyline_batch",
    "graph_similarity_skyband",
    "try_graph_similarity_skyline",
    "try_graph_similarity_skyline_batch",
    "try_graph_similarity_skyband",
    "compute_primitives",
    "exact_ged",
    "maximum_common_subgraph",
    "max_clique",
    "find_embedding",
];

/// See the module docs.
pub struct LockDiscipline;

impl Rule for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for (fi, file) in ws.files.iter().enumerate() {
            if !file.path.contains("server/src/") {
                continue;
            }
            for i in 0..file.tokens.len() {
                if !(file.is_ident(i, "lock")
                    && i > 0
                    && file.is_punct(i - 1, '.')
                    && file.is_punct(i + 1, '('))
                {
                    continue;
                }
                if file.in_test(file.tokens[i].start) {
                    continue;
                }
                let (start, end, guard) = guard_live_range(file, i);
                for j in start..end.min(file.tokens.len()) {
                    if let Some(g) = &guard {
                        // drop(guard) releases early.
                        if file.is_ident(j, "drop")
                            && file.is_punct(j + 1, '(')
                            && file.is_ident(j + 2, g)
                            && file.is_punct(j + 3, ')')
                        {
                            break;
                        }
                    }
                    if file.tokens[j].kind == TokKind::Ident
                        && BANNED_CALLS.contains(&file.tok_str(j))
                        && (file.is_punct(j + 1, '(')
                            || (file.is_punct(j + 1, ':') && file.is_punct(j + 2, ':')))
                    {
                        let tok = file.tokens[j];
                        let (lock_line, _) = file.line_col(file.tokens[i].start);
                        out.push(Diagnostic {
                            rule: "lock-discipline",
                            category: "call-under-lock",
                            file: fi,
                            start: tok.start,
                            end: tok.end,
                            message: format!(
                                "`{}` called while the MutexGuard from line {lock_line} is live",
                                file.tok_str(j)
                            ),
                            note: Some(
                                "cache/queue critical sections are sized for microseconds; \
                                 copy what you need out of the guard (or drop(guard)) before \
                                 calling into the engine"
                                    .to_owned(),
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// The token range in which the guard produced by the `.lock()` at token
/// `i` is live, plus the guard's binding name when `let`-bound.
///
/// - `let g = x.lock()…;` → from the `;` to the end of the enclosing
///   block, guard name `g`.
/// - `x.lock()….field = v;` (temporary) → to the end of the statement.
/// - `if let Ok(g) = x.lock() { … }` / `match x.lock() { … }` → the
///   brace block that follows.
fn guard_live_range(file: &SourceFile, lock_tok: usize) -> (usize, usize, Option<String>) {
    // Find the statement start: walk back to the previous `;`, `{` or `}`.
    let mut s = lock_tok;
    let mut depth = 0i64;
    while s > 0 {
        let prev = s - 1;
        if file.tokens[prev].kind == TokKind::Punct {
            match file.text.as_bytes()[file.tokens[prev].start] {
                b')' | b']' => depth += 1,
                b'(' | b'[' => depth -= 1,
                b';' | b'{' | b'}' if depth <= 0 => break,
                _ => {}
            }
        }
        s = prev;
    }
    let is_let = file.is_ident(s, "let")
        || (file.is_ident(s, "if") || file.is_ident(s, "while")) && file.is_ident(s + 1, "let");
    let guard_name = if file.is_ident(s, "let") {
        let name_tok = if file.is_ident(s + 1, "mut") {
            s + 2
        } else {
            s + 1
        };
        (file.tokens[name_tok].kind == TokKind::Ident).then(|| file.tok_str(name_tok).to_owned())
    } else {
        None
    };
    // Find the statement end going forward: `;` at relative depth 0, or a
    // `{` (an if-let / match / while-let body).
    let mut depth = 0i64;
    let mut j = lock_tok + 1;
    while j < file.tokens.len() {
        if file.tokens[j].kind == TokKind::Punct {
            match file.text.as_bytes()[file.tokens[j].start] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b';' if depth <= 0 => {
                    return if is_let {
                        let end = file
                            .enclosing_block(lock_tok)
                            .map_or(file.tokens.len(), |(_, close)| close);
                        (j + 1, end, guard_name)
                    } else {
                        (lock_tok, j, None)
                    };
                }
                b'{' if depth <= 0 => {
                    // The guard lives inside the following block.
                    return (j, file.match_delim(j), guard_name);
                }
                b'}' if depth < 0 => break,
                _ => {}
            }
        }
        j += 1;
    }
    (lock_tok, j, guard_name)
}
