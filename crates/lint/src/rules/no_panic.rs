//! **no-panic-in-request-path** — the `gss-server` request path must
//! never panic (PR 3).
//!
//! A panic in a connection, dispatcher or cache thread kills that thread
//! and silently drops every response it owed; the protocol contract is
//! that failures flow to the wire as `{"ok":false,"error":...}`
//! envelopes. This rule bans panic-capable constructs in the server's
//! connection/dispatch/cache modules (`server.rs`, `engine.rs`,
//! `cache.rs`), the event-driven front end (`reactor.rs`, `conn.rs` —
//! a panic on a reactor thread strands every connection it multiplexes),
//! the shared wire codecs (`gss-protocol`) and the mutation path
//! (`gss-store` — a panic inside `GraphStore::apply` poisons the writer
//! lock and wedges every later mutation; the WAL append/recovery and
//! fault-injection modules sit on that same path, and a panic there can
//! additionally strand a half-written log record), test code excluded:
//!
//! - `.unwrap()` / `.expect(...)` (categories `unwrap`, `expect`) — use
//!   `unwrap_or_else(PoisonError::into_inner)` for mutex poisoning and
//!   error envelopes for everything else;
//! - `panic!` / `unreachable!` / `todo!` / `unimplemented!` (category
//!   `panic`);
//! - slice/array indexing `x[i]` (category `index`) — panics on
//!   out-of-bounds; prefer `.get()`, or justify in-bounds-by-construction
//!   indexing with `allow(no-panic-in-request-path[index])`.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::Workspace;

use super::{is_method_call, Rule};

/// The request-path modules the rule watches.
const WATCHED: &[&str] = &[
    "server/src/server.rs",
    "server/src/engine.rs",
    "server/src/cache.rs",
    "server/src/reactor.rs",
    "server/src/conn.rs",
    "protocol/src/lib.rs",
    "store/src/lib.rs",
    "store/src/wal.rs",
    "store/src/fault.rs",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can legally precede `[` without forming an indexing
/// expression (`&mut [u8]`, `if x { .. } [..]` cannot occur, but `ref`,
/// `mut`, `in`… appear before slice *patterns* and types).
const NON_EXPR_KEYWORDS: &[&str] = &[
    "mut", "ref", "in", "let", "return", "break", "as", "if", "else", "match", "move", "dyn",
    "impl", "where", "loop", "while", "for", "unsafe", "const", "static", "box", "await",
];

/// See the module docs.
pub struct NoPanicInRequestPath;

impl Rule for NoPanicInRequestPath {
    fn id(&self) -> &'static str {
        "no-panic-in-request-path"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for (fi, file) in ws.files.iter().enumerate() {
            if !WATCHED.iter().any(|w| file.path.ends_with(w)) {
                continue;
            }
            for i in 0..file.tokens.len() {
                let tok = file.tokens[i];
                if file.in_test(tok.start) {
                    continue;
                }
                let mut push = |category: &'static str, message: String, note: &str| {
                    out.push(Diagnostic {
                        rule: "no-panic-in-request-path",
                        category,
                        file: fi,
                        start: tok.start,
                        end: tok.end,
                        message,
                        note: Some(note.to_owned()),
                    });
                };
                if is_method_call(file, i, "unwrap") {
                    push(
                        "unwrap",
                        "`.unwrap()` can panic in the server request path".into(),
                        "request-path errors must flow to the wire as {\"ok\":false,...} \
                         envelopes; for mutexes use unwrap_or_else(PoisonError::into_inner)",
                    );
                } else if is_method_call(file, i, "expect") {
                    push(
                        "expect",
                        "`.expect()` can panic in the server request path".into(),
                        "request-path errors must flow to the wire as {\"ok\":false,...} \
                         envelopes; for mutexes use unwrap_or_else(PoisonError::into_inner)",
                    );
                } else if tok.kind == TokKind::Ident
                    && file.is_punct(i + 1, '!')
                    && PANIC_MACROS.contains(&file.tok_str(i))
                {
                    push(
                        "panic",
                        format!("`{}!` panics in the server request path", file.tok_str(i)),
                        "a panicking worker drops every response it owes; return an error \
                         envelope instead",
                    );
                } else if tok.kind == TokKind::Punct
                    && file.is_punct(i, '[')
                    && i > 0
                    && is_index_base(file, i - 1)
                {
                    push(
                        "index",
                        "slice indexing panics on out-of-bounds in the server request path".into(),
                        "prefer .get()/.get_mut(), or justify in-bounds-by-construction \
                         indexing with allow(no-panic-in-request-path[index])",
                    );
                }
            }
        }
    }
}

/// True when the token before a `[` makes it an indexing *expression*:
/// an identifier (not a keyword, not a macro name — `vec![` has `!`
/// before the bracket), a close paren, or a close bracket.
fn is_index_base(file: &SourceFile, prev: usize) -> bool {
    match file.tokens[prev].kind {
        TokKind::Ident => !NON_EXPR_KEYWORDS.contains(&file.tok_str(prev)),
        TokKind::Punct => file.is_punct(prev, ')') || file.is_punct(prev, ']'),
        _ => false,
    }
}
