//! **no-alloc-in-kernel** — marked solver hot regions must not allocate
//! (PR 4).
//!
//! The ~10× solver speedup of the bitset kernels came from making the
//! GED/MCS/VF2 search recursions and the `gss_graph::bitset` word
//! operations allocation-free: per-depth buffers are preallocated and
//! reused, candidate sets are word-parallel row intersections, the
//! incumbent is recorded into a reusable best-buffer. One stray `vec!`
//! or `.clone()` in a function that runs millions of times per query
//! silently gives the win back without failing any test.
//!
//! Functions marked `// gss-lint: kernel` are checked for allocating
//! constructs: `vec!`/`format!`, `.clone()`, `.to_vec()`, `.to_owned()`,
//! `.to_string()`, `.collect()`, and `Type::new`/`with_capacity`/`from`
//! on the std owning containers. `clone_from`/`copy_from_slice` into
//! reusable buffers are the sanctioned alternatives and are not flagged.

use crate::diag::Diagnostic;
use crate::source::SourceFile;
use crate::Workspace;

use super::Rule;

/// Allocating constructors: `Owner::method` pairs.
const OWNING_TYPES: &[&str] = &[
    "Vec", "String", "Box", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque", "Rc", "Arc",
];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Allocating method calls.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "to_string", "collect"];

/// See the module docs.
pub struct NoAllocInKernel;

impl Rule for NoAllocInKernel {
    fn id(&self) -> &'static str {
        "no-alloc-in-kernel"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for (fi, file) in ws.files.iter().enumerate() {
            for f in &file.functions {
                if !f.kernel {
                    continue;
                }
                let Some((open, close)) = f.body else {
                    continue;
                };
                for i in open..=close.min(file.tokens.len() - 1) {
                    if let Some((message, tok)) = allocation_at(file, i) {
                        out.push(Diagnostic {
                            rule: "no-alloc-in-kernel",
                            category: "alloc",
                            file: fi,
                            start: file.tokens[tok].start,
                            end: file.tokens[tok].end,
                            message: format!(
                                "{message} inside kernel fn `{}` (marked `gss-lint: kernel`)",
                                f.name
                            ),
                            note: Some(
                                "hot-path allocations undo the PR 4 bitset-kernel win; reuse a \
                                 caller-provided buffer (clone_from / copy_from_slice) or hoist \
                                 the allocation out of the marked region"
                                    .to_owned(),
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// If token `i` begins an allocating construct, returns the message and
/// the index of the token to report.
fn allocation_at(file: &SourceFile, i: usize) -> Option<(String, usize)> {
    // vec![...] / format!(...)
    if file.is_punct(i + 1, '!') {
        let name = file.tok_str(i);
        if file.tokens[i].kind == crate::lexer::TokKind::Ident && ALLOC_MACROS.contains(&name) {
            return Some((format!("`{name}!` allocates"), i));
        }
    }
    // .clone() / .to_vec() / .collect::<..>() …
    for m in ALLOC_METHODS {
        if file.is_ident(i, m)
            && i > 0
            && file.is_punct(i - 1, '.')
            && (file.is_punct(i + 1, '(') || file.is_punct(i + 1, ':'))
        {
            return Some((format!("`.{m}()` allocates"), i));
        }
    }
    // Vec::new / String::with_capacity / Box::from …
    if OWNING_TYPES.contains(&file.tok_str(i))
        && file.is_punct(i + 1, ':')
        && file.is_punct(i + 2, ':')
        && file
            .tokens
            .get(i + 3)
            .is_some_and(|t| t.kind == crate::lexer::TokKind::Ident)
        && ALLOC_CTORS.contains(&file.tok_str(i + 3))
    {
        return Some((
            format!("`{}::{}` allocates", file.tok_str(i), file.tok_str(i + 3)),
            i,
        ));
    }
    None
}
