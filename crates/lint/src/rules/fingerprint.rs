//! **fingerprint-completeness** — cache keys must fingerprint every
//! result-affecting field (PRs 3 and 5).
//!
//! The server's result cache serves whatever the key says is equal. A
//! `QueryOptions` field that changes the response but is missing from
//! `options_fingerprint` makes the cache serve **stale bytes** — the
//! exact hazard PR 5 dodged by hand when `plan` joined the key. The same
//! applies to `GraphDatabase::fingerprint` versus the stored state, to
//! the wire-protocol `QueryRequest` versus the key built for it, and to
//! the MVCC `Snapshot` versus the fingerprint it serves as cache-key
//! identity (PR 8).
//!
//! For each configured (struct, fingerprint-fn) pair, every field of the
//! struct must either be referenced inside the fingerprint function (or,
//! for `QueryRequest`, inside the `QueryKey::with_database` call that
//! builds the key) **or** appear on an explicit exemption list:
//!
//! ```text
//! // gss-lint: exempt(QueryOptions::threads) — thread count never changes the bytes (PR 3)
//! ```
//!
//! A justification is mandatory, and an exemption for a field that *is*
//! hashed is reported as stale — the list cannot drift in either
//! direction.

use crate::diag::Diagnostic;
use crate::source::{DirectiveKind, SourceFile};
use crate::Workspace;

use super::Rule;

/// One struct/fingerprint-fn pair to audit.
struct Target {
    /// Path suffix + struct name.
    struct_file: &'static str,
    struct_name: &'static str,
    /// Path suffix + fn name of the fingerprint function.
    fn_file: &'static str,
    fn_name: &'static str,
    /// When set, only the argument lists of calls to this `A::b` path
    /// inside the fn count as "hashed" (the key-construction call).
    call: Option<(&'static str, &'static str)>,
}

const TARGETS: &[Target] = &[
    Target {
        struct_file: "core/src/query.rs",
        struct_name: "QueryOptions",
        fn_file: "core/src/cachekey.rs",
        fn_name: "options_fingerprint",
        call: None,
    },
    Target {
        struct_file: "core/src/database.rs",
        struct_name: "GraphDatabase",
        fn_file: "core/src/database.rs",
        fn_name: "fingerprint",
        call: None,
    },
    Target {
        struct_file: "server/src/engine.rs",
        struct_name: "QueryRequest",
        fn_file: "server/src/engine.rs",
        fn_name: "parse_query",
        call: Some(("QueryKey", "with_database")),
    },
    // Snapshot::fingerprint returns the captured `fingerprint` field, so
    // every *other* snapshot field needs an exemption explaining why the
    // epoch-folded database fingerprint already covers it.
    Target {
        struct_file: "store/src/lib.rs",
        struct_name: "Snapshot",
        fn_file: "store/src/lib.rs",
        fn_name: "fingerprint",
        call: None,
    },
    // The compact-storage self-identities (PR 10): the save/load round
    // trip verifies these digests, so a column missing from its
    // fingerprint lets silent arena corruption load as "equal".
    Target {
        struct_file: "graph/src/arena.rs",
        struct_name: "LabelPool",
        fn_file: "graph/src/arena.rs",
        fn_name: "pool_fingerprint",
        call: None,
    },
    Target {
        struct_file: "graph/src/arena.rs",
        struct_name: "GraphArena",
        fn_file: "graph/src/arena.rs",
        fn_name: "content_fingerprint",
        call: None,
    },
    Target {
        struct_file: "graph/src/arena.rs",
        struct_name: "StatsColumns",
        fn_file: "graph/src/arena.rs",
        fn_name: "columns_fingerprint",
        call: None,
    },
];

/// See the module docs.
pub struct FingerprintCompleteness;

impl Rule for FingerprintCompleteness {
    fn id(&self) -> &'static str {
        "fingerprint-completeness"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for t in TARGETS {
            check_target(ws, t, out);
        }
    }
}

fn check_target(ws: &Workspace, t: &Target, out: &mut Vec<Diagnostic>) {
    // Both files must be present; a partial workspace (single-file lint,
    // fixtures for another rule) skips the target silently.
    let (Some(sfi), Some(ffi)) = (ws.file_matching(t.struct_file), ws.file_matching(t.fn_file))
    else {
        return;
    };
    let sfile = &ws.files[sfi];
    let ffile = &ws.files[ffi];
    let Some(strukt) = sfile.structs.iter().find(|s| s.name == t.struct_name) else {
        out.push(Diagnostic {
            rule: "fingerprint-completeness",
            category: "missing-target",
            file: sfi,
            start: 0,
            end: 0,
            message: format!(
                "expected struct `{}` in {} (fingerprint audit target)",
                t.struct_name, sfile.path
            ),
            note: Some("update the target table in gss-lint if the struct moved".to_owned()),
        });
        return;
    };
    let Some(func) = ffile
        .functions
        .iter()
        .find(|f| f.name == t.fn_name && f.body.is_some())
    else {
        out.push(Diagnostic {
            rule: "fingerprint-completeness",
            category: "missing-target",
            file: ffi,
            start: 0,
            end: 0,
            message: format!(
                "expected fn `{}` in {} (fingerprint of `{}`)",
                t.fn_name, ffile.path, t.struct_name
            ),
            note: Some("update the target table in gss-lint if the fn moved".to_owned()),
        });
        return;
    };
    let (open, close) = func.body.expect("filtered on body.is_some()");

    // The token ranges that count as "hashed".
    let mut regions: Vec<(usize, usize)> = Vec::new();
    match t.call {
        None => regions.push((open, close + 1)),
        Some((owner, method)) => {
            let mut i = open;
            while i + 4 < close {
                if ffile.is_ident(i, owner)
                    && ffile.is_punct(i + 1, ':')
                    && ffile.is_punct(i + 2, ':')
                    && ffile.is_ident(i + 3, method)
                    && ffile.is_punct(i + 4, '(')
                {
                    regions.push((i + 4, ffile.match_delim(i + 4) + 1));
                }
                i += 1;
            }
            if regions.is_empty() {
                out.push(Diagnostic {
                    rule: "fingerprint-completeness",
                    category: "missing-target",
                    file: ffi,
                    start: ffile.tokens[func.name_tok].start,
                    end: ffile.tokens[func.name_tok].end,
                    message: format!(
                        "`{}` never calls `{owner}::{method}` — the key construction the \
                         `{}` audit hooks into",
                        t.fn_name, t.struct_name
                    ),
                    note: Some("update the target table in gss-lint if the call moved".to_owned()),
                });
                return;
            }
        }
    }

    // Exemptions may live in either file (they belong next to the
    // fingerprint fn, but the struct file also works).
    let exemptions: Vec<(&SourceFile, &crate::source::Directive, &str)> = [ffile, sfile]
        .iter()
        .flat_map(|f| f.directives.iter().map(move |d| (*f, d)))
        .filter_map(|(f, d)| match &d.kind {
            DirectiveKind::Exempt { owner, field } if owner == t.struct_name => {
                Some((f, d, field.as_str()))
            }
            _ => None,
        })
        .collect();

    for field in &strukt.fields {
        let hashed = regions
            .iter()
            .any(|&(s, e)| (s..e.min(ffile.tokens.len())).any(|i| ffile.is_ident(i, &field.name)));
        let exempt = exemptions.iter().find(|(_, _, f)| *f == field.name);
        match (hashed, exempt) {
            (false, None) => {
                let tok = sfile.tokens[field.name_tok];
                out.push(Diagnostic {
                    rule: "fingerprint-completeness",
                    category: "unhashed-field",
                    file: sfi,
                    start: tok.start,
                    end: tok.end,
                    message: format!(
                        "field `{}` of `{}` is not covered by `{}` and not exempted",
                        field.name, t.struct_name, t.fn_name
                    ),
                    note: Some(format!(
                        "a result-affecting field missing from the fingerprint serves stale \
                         cached bytes; hash it in `{}`, or exempt it with `// gss-lint: \
                         exempt({}::{}) — <why it cannot change the response>`",
                        t.fn_name, t.struct_name, field.name
                    )),
                });
            }
            (true, Some((efile, dir, _))) => {
                let efi = ws
                    .files
                    .iter()
                    .position(|f| std::ptr::eq(f, *efile))
                    .expect("exemption file is in the workspace");
                out.push(Diagnostic {
                    rule: "fingerprint-completeness",
                    category: "stale-exemption",
                    file: efi,
                    start: dir.start,
                    end: dir.end,
                    message: format!(
                        "stale exemption: `{}::{}` is referenced by `{}`",
                        t.struct_name, field.name, t.fn_name
                    ),
                    note: Some(
                        "the field is hashed now — drop the exemption so the list stays honest"
                            .to_owned(),
                    ),
                });
            }
            _ => {}
        }
    }

    // Exemptions naming fields the struct no longer has are dead weight.
    for (efile, dir, fname) in &exemptions {
        if !strukt.fields.iter().any(|f| f.name == *fname) {
            let efi = ws
                .files
                .iter()
                .position(|f| std::ptr::eq(f, *efile))
                .expect("exemption file is in the workspace");
            out.push(Diagnostic {
                rule: "fingerprint-completeness",
                category: "stale-exemption",
                file: efi,
                start: dir.start,
                end: dir.end,
                message: format!(
                    "exemption names unknown field `{}::{}`",
                    t.struct_name, fname
                ),
                note: Some("the struct has no such field — remove the exemption".to_owned()),
            });
        }
    }
}
