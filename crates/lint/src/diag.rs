//! Diagnostics: the finding type plus `rustc`-style text rendering and
//! the machine-readable JSON report.

use crate::source::SourceFile;

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Rule id, e.g. `no-panic-in-request-path`.
    pub rule: &'static str,
    /// Sub-category within the rule (e.g. `index`, `unwrap`); empty when
    /// the rule has only one kind of finding. `allow(rule[category])`
    /// suppresses one category only.
    pub category: &'static str,
    /// Index of the file in the [`crate::Workspace`].
    pub file: usize,
    /// Byte offset of the offending token.
    pub start: usize,
    /// Byte offset one past the offending token.
    pub end: usize,
    /// What is wrong.
    pub message: String,
    /// Why the invariant matters / how to fix or exempt.
    pub note: Option<String>,
}

impl Diagnostic {
    /// Renders the diagnostic in the familiar compiler shape:
    ///
    /// ```text
    /// error[no-panic-in-request-path]: `.unwrap()` can panic in the server request path
    ///   --> crates/server/src/engine.rs:331:28
    ///     |
    /// 331 |             .map(|r| r.unwrap())
    ///     |                        ^^^^^^
    ///     = note: request-path errors must flow to the wire as {"ok":false,...}
    /// ```
    pub fn render(&self, file: &SourceFile) -> String {
        let (line, col) = file.line_col(self.start);
        let gutter = line.to_string().len().max(3);
        let mut out = String::new();
        out.push_str(&format!("error[{}]: {}\n", self.rule, self.message));
        out.push_str(&format!(
            "{:>gutter$} {}:{}:{}\n",
            "-->", file.path, line, col
        ));
        let text = file.line_text(line);
        out.push_str(&format!("{:>gutter$} |\n", ""));
        out.push_str(&format!("{line:>gutter$} | {text}\n"));
        let width = self.end.saturating_sub(self.start).max(1);
        // Clamp the caret run to the visible line.
        let width = width.min(text.len().saturating_sub(col - 1).max(1));
        out.push_str(&format!(
            "{:>gutter$} | {}{}\n",
            "",
            " ".repeat(col - 1),
            "^".repeat(width)
        ));
        if let Some(note) = &self.note {
            out.push_str(&format!("{:>gutter$} = note: {note}\n", ""));
        }
        out
    }

    /// One JSON object for the `--json` report.
    pub fn to_json(&self, file: &SourceFile) -> String {
        let (line, col) = file.line_col(self.start);
        let mut s = String::from("{");
        push_kv(&mut s, "rule", self.rule);
        s.push(',');
        push_kv(&mut s, "category", self.category);
        s.push(',');
        push_kv(&mut s, "path", &file.path);
        s.push_str(&format!(",\"line\":{line},\"col\":{col},"));
        push_kv(&mut s, "message", &self.message);
        if let Some(note) = &self.note {
            s.push(',');
            push_kv(&mut s, "note", note);
        }
        s.push('}');
        s
    }
}

fn push_kv(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_token() {
        let file = SourceFile::new("a/b.rs", "let x = v.unwrap();\n".to_owned());
        let start = file.text.find("unwrap").unwrap();
        let d = Diagnostic {
            rule: "no-panic-in-request-path",
            category: "unwrap",
            file: 0,
            start,
            end: start + "unwrap".len(),
            message: "`.unwrap()` can panic".into(),
            note: Some("return an error envelope instead".into()),
        };
        let r = d.render(&file);
        assert!(r.contains("error[no-panic-in-request-path]"));
        assert!(r.contains("a/b.rs:1:11"));
        assert!(r.contains("^^^^^^"));
        assert!(r.contains("note: return an error"));
        let j = d.to_json(&file);
        assert!(j.contains("\"line\":1") && j.contains("\"col\":11"));
    }
}
