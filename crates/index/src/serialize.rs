//! Versioned binary persistence for [`PivotIndex`].
//!
//! The on-disk format uses the shared artifact framing from
//! `gss_core::database::codec` — 8-byte magic, `u32` version, payload,
//! FNV-1a checksum — so corruption, truncation and future-version files are
//! rejected before any field is trusted. The payload stores the database
//! fingerprint; loading succeeds against any byte-identical copy of the
//! file, but planning against a *changed* database is refused (see
//! [`PivotIndex::validate`]).

use std::path::Path;

use gss_core::database::codec::{CodecError, Reader, Writer};
use gss_graph::stats::Multiset;
use gss_graph::Label;

use crate::{Partition, PivotIndex, PivotIndexConfig};

/// Magic bytes of a serialized pivot index.
pub(crate) const MAGIC: &[u8; 8] = b"GSSPIVIX";
/// Current format version. Version 2 added the per-graph upper-bound
/// distance table and the staleness counters of incremental maintenance;
/// version-1 artifacts (exact distances only) still load, with the upper
/// bounds initialized to the exact values.
pub(crate) const VERSION: u32 = 2;

/// Why a pivot index could not be loaded or used.
#[derive(Debug)]
pub enum IndexError {
    /// The bytes are not a valid pivot-index artifact.
    Codec(CodecError),
    /// The index belongs to a different database (length or structural
    /// fingerprint mismatch).
    DatabaseMismatch {
        /// Graph count recorded in the index.
        index_graphs: usize,
        /// Graph count of the database it was checked against.
        db_graphs: usize,
    },
    /// Reading or writing the index file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Codec(e) => write!(f, "invalid index data: {e}"),
            IndexError::DatabaseMismatch {
                index_graphs,
                db_graphs,
            } => write!(
                f,
                "index was built for a different database \
                 (index covers {index_graphs} graphs, database has {db_graphs}); rebuild it"
            ),
            IndexError::Io(e) => write!(f, "index file error: {e}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<CodecError> for IndexError {
    fn from(e: CodecError) -> Self {
        IndexError::Codec(e)
    }
}

impl From<std::io::Error> for IndexError {
    fn from(e: std::io::Error) -> Self {
        IndexError::Io(e)
    }
}

fn write_label_multiset(w: &mut Writer, m: &Multiset<Label>) {
    w.usize(m.distinct());
    for (l, c) in m.iter() {
        w.u32(l.0);
        w.u32(c);
    }
}

fn read_label_multiset(r: &mut Reader<'_>) -> Result<Multiset<Label>, CodecError> {
    let n = r.usize()?;
    let mut m = Multiset::new();
    for _ in 0..n {
        let l = Label(r.u32()?);
        m.insert_n(l, r.u32()?);
    }
    Ok(m)
}

impl PivotIndex {
    /// Serializes the index to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new(MAGIC, VERSION);
        w.usize(self.db_len);
        w.u64(self.db_fingerprint);
        w.usize(self.config.pivots);
        w.usize(self.config.rings);
        w.u64(self.stale_ops);
        w.u64(self.partial_rebuilds);
        w.usize(self.pivot_ids.len());
        for &p in &self.pivot_ids {
            w.u32(p);
        }
        for &d in &self.pivot_dists {
            w.f64(d);
        }
        for &d in &self.pivot_dists_hi {
            w.f64(d);
        }
        w.usize(self.partitions.len());
        for part in &self.partitions {
            w.usize(part.members.len());
            for &g in &part.members {
                w.u32(g);
            }
            // On disk the ring table stays interleaved (lo, hi) pairs —
            // the in-memory columns are zipped here so the v2 layout is
            // unchanged by the struct-of-arrays refactor.
            for (&lo, &hi) in part.ring_lo.iter().zip(&part.ring_hi) {
                w.f64(lo);
                w.f64(hi);
            }
            write_label_multiset(&mut w, &part.vertex_env);
            write_label_multiset(&mut w, &part.edge_env);
            w.usize(part.class_env.distinct());
            for (&(a, b, l), c) in part.class_env.iter() {
                w.u32(a.0);
                w.u32(b.0);
                w.u32(l.0);
                w.u32(c);
            }
            w.usize(part.order_range.0);
            w.usize(part.order_range.1);
            w.usize(part.size_range.0);
            w.usize(part.size_range.1);
        }
        w.finish()
    }

    /// Deserializes an index previously produced by [`Self::to_bytes`],
    /// verifying magic, version, checksum and structural sanity.
    pub fn from_bytes(bytes: &[u8]) -> Result<PivotIndex, IndexError> {
        let (mut r, version) = Reader::new(bytes, MAGIC, VERSION)?;
        let db_len = r.usize()?;
        let db_fingerprint = r.u64()?;
        let config = PivotIndexConfig {
            pivots: r.usize()?,
            rings: r.usize()?,
        };
        let (stale_ops, partial_rebuilds) = if version >= 2 {
            (r.u64()?, r.u64()?)
        } else {
            (0, 0)
        };
        let k = r.usize()?;
        if k > db_len {
            return Err(CodecError::Invalid(format!("{k} pivots over {db_len} graphs")).into());
        }
        // The checksum detects corruption, not hostility: never trust
        // decoded lengths for pre-allocation (a crafted header could
        // request terabytes), and multiply with overflow checks. Reads
        // past the payload fail with Truncated long before the loops
        // below become a problem.
        const CAP_LIMIT: usize = 1 << 16;
        let mut pivot_ids = Vec::with_capacity(k.min(CAP_LIMIT));
        for _ in 0..k {
            let p = r.u32()?;
            if p as usize >= db_len {
                return Err(CodecError::Invalid(format!("pivot id {p} out of range")).into());
            }
            pivot_ids.push(p);
        }
        let dists = db_len
            .checked_mul(k)
            .ok_or_else(|| CodecError::Invalid("distance table size overflows".into()))?;
        let mut pivot_dists = Vec::with_capacity(dists.min(CAP_LIMIT));
        for _ in 0..dists {
            pivot_dists.push(r.f64()?);
        }
        // Version 1 stored exact distances only: the bracket degenerates
        // to [exact, exact], which is what an exact build produces.
        let pivot_dists_hi = if version >= 2 {
            let mut hi = Vec::with_capacity(dists.min(CAP_LIMIT));
            for _ in 0..dists {
                hi.push(r.f64()?);
            }
            hi
        } else {
            pivot_dists.clone()
        };
        let partition_count = r.usize()?;
        let mut partitions = Vec::with_capacity(partition_count.min(db_len));
        let mut covered = 0usize;
        for _ in 0..partition_count {
            let m = r.usize()?;
            let mut members = Vec::with_capacity(m.min(db_len));
            for _ in 0..m {
                let g = r.u32()?;
                if g as usize >= db_len {
                    return Err(CodecError::Invalid(format!("member id {g} out of range")).into());
                }
                members.push(g);
            }
            covered += members.len();
            let mut ring_lo = Vec::with_capacity(k);
            let mut ring_hi = Vec::with_capacity(k);
            for _ in 0..k {
                ring_lo.push(r.f64()?);
                ring_hi.push(r.f64()?);
            }
            let vertex_env = read_label_multiset(&mut r)?;
            let edge_env = read_label_multiset(&mut r)?;
            let classes = r.usize()?;
            let mut class_env = Multiset::new();
            for _ in 0..classes {
                let key = (Label(r.u32()?), Label(r.u32()?), Label(r.u32()?));
                class_env.insert_n(key, r.u32()?);
            }
            let order_range = (r.usize()?, r.usize()?);
            let size_range = (r.usize()?, r.usize()?);
            partitions.push(Partition {
                members,
                ring_lo,
                ring_hi,
                vertex_env,
                edge_env,
                class_env,
                order_range,
                size_range,
            });
        }
        r.finish()?;
        if covered != db_len {
            return Err(CodecError::Invalid(format!(
                "partitions cover {covered} of {db_len} graphs"
            ))
            .into());
        }
        Ok(PivotIndex {
            db_len,
            db_fingerprint,
            config,
            pivot_ids,
            pivot_dists,
            pivot_dists_hi,
            partitions,
            stale_ops,
            partial_rebuilds,
        })
    }

    /// Writes the index to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), IndexError> {
        std::fs::write(path, self.to_bytes()).map_err(IndexError::Io)
    }

    /// Reads an index from a file written by [`Self::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<PivotIndex, IndexError> {
        PivotIndex::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::GraphDatabase;
    use gss_datasets::paper::figure3_database;

    fn index() -> PivotIndex {
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        PivotIndex::build(&db, &PivotIndexConfig::default())
    }

    #[test]
    fn byte_round_trip_is_identical() {
        let idx = index();
        let bytes = idx.to_bytes();
        let back = PivotIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back, idx);
        assert_eq!(back.to_bytes(), bytes, "re-serialization is stable");
    }

    #[test]
    fn corruption_and_truncation_are_rejected() {
        let bytes = index().to_bytes();
        for flip in [8, 20, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x40;
            assert!(
                matches!(PivotIndex::from_bytes(&bad), Err(IndexError::Codec(_))),
                "flipping byte {flip} must be caught"
            );
        }
        assert!(matches!(
            PivotIndex::from_bytes(&bytes[..bytes.len() / 2]),
            Err(IndexError::Codec(_))
        ));
        assert!(matches!(
            PivotIndex::from_bytes(b"not an index"),
            Err(IndexError::Codec(CodecError::BadMagic))
        ));
    }

    #[test]
    fn version_1_artifacts_still_load() {
        // Hand-write the version-1 layout (exact distances only, no
        // staleness counters) for a freshly built index. A fresh build has
        // `lower == upper` and zero counters, so the decoded index must be
        // identical to the in-memory one.
        let idx = index();
        let mut w = Writer::new(MAGIC, 1);
        w.usize(idx.db_len);
        w.u64(idx.db_fingerprint);
        w.usize(idx.config.pivots);
        w.usize(idx.config.rings);
        w.usize(idx.pivot_ids.len());
        for &p in &idx.pivot_ids {
            w.u32(p);
        }
        for &d in &idx.pivot_dists {
            w.f64(d);
        }
        w.usize(idx.partitions.len());
        for part in &idx.partitions {
            w.usize(part.members.len());
            for &g in &part.members {
                w.u32(g);
            }
            for (&lo, &hi) in part.ring_lo.iter().zip(&part.ring_hi) {
                w.f64(lo);
                w.f64(hi);
            }
            write_label_multiset(&mut w, &part.vertex_env);
            write_label_multiset(&mut w, &part.edge_env);
            w.usize(part.class_env.distinct());
            for (&(a, b, l), c) in part.class_env.iter() {
                w.u32(a.0);
                w.u32(b.0);
                w.u32(l.0);
                w.u32(c);
            }
            w.usize(part.order_range.0);
            w.usize(part.order_range.1);
            w.usize(part.size_range.0);
            w.usize(part.size_range.1);
        }
        let back = PivotIndex::from_bytes(&w.finish()).unwrap();
        assert_eq!(back, idx);
    }

    #[test]
    fn future_versions_are_rejected() {
        let idx = index();
        let mut w = Writer::new(MAGIC, VERSION + 1);
        w.usize(idx.db_len);
        let bytes = w.finish();
        assert!(matches!(
            PivotIndex::from_bytes(&bytes),
            Err(IndexError::Codec(CodecError::UnsupportedVersion { .. }))
        ));
    }

    #[test]
    fn save_and_load_round_trip() {
        let idx = index();
        let path = std::env::temp_dir().join(format!("gss-index-test-{}.gsi", std::process::id()));
        idx.save(&path).unwrap();
        let back = PivotIndex::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back, idx);
        assert!(matches!(
            PivotIndex::load("/no/such/dir/zzz.gsi"),
            Err(IndexError::Io(_))
        ));
    }
}
