//! # gss-index — a pivot-based metric index for similarity skyline scans
//!
//! PR 1's filter-and-verify pipeline still touches every database graph to
//! compute per-candidate lower bounds. This crate removes that linear
//! factor from the hot path, following the metric-indexing playbook of the
//! PM-tree metric skyline and MSQ-Index lines of work:
//!
//! * **Build time** ([`PivotIndex::build`]): select `k` pivot graphs with
//!   the maxmin (farthest-point) heuristic under exact uniform GED,
//!   precompute every database graph's exact GED to every pivot, and store
//!   the graphs in **distance-ring partitions** (nearest pivot × distance
//!   quantile). Each partition additionally records label-multiset and
//!   edge-class *envelopes* (per-key maxima over its members) and its
//!   member size ranges.
//! * **Query time** ([`gss_core::QueryIndex::plan`]): `k` cheap probes
//!   bracket the query's GED to each pivot (admissible lower bound +
//!   bipartite upper bound — **no exact solver runs**), and every partition
//!   gets a per-measure lower-bound vector valid for all of its members.
//!   The plan feeds the staged executor's candidate-source stage
//!   (`gss_core::exec`, `Plan::Indexed` — or `Plan::Auto`, which selects
//!   the index whenever one is attached): partitions are visited in
//!   [`gss_core::IndexPlan::most_promising_order`] and whole partitions
//!   whose vector is dominated by a verified point are skipped without
//!   touching their members — this prunes the skyline scan *and* the
//!   `k`-skyband (where "dominated" means `k` distinct verified
//!   dominators).
//!
//! # Which dimensions get triangle bounds
//!
//! Only the GED-derived measures (`DistEd`, `DistN-Ed`). Uniform GED is a
//! true metric (edit scripts compose), and `x ↦ x/(1+x)` preserves
//! metricity. The MCS-based measures do **not** satisfy the triangle
//! inequality for the *connected* MCS this workspace uses, despite the
//! classic Bunke–Shearer result for the unconstrained MCS. Counterexample
//! on a 6-cycle `C6` with distinct vertex labels: let `g2 = C6` and let
//! `g1`, `g3` be the 5-edge paths obtained by deleting opposite-ish edges
//! `e6` and `e3`. Then `DistMcs(g1, g2) = DistMcs(g2, g3) = 1/6`, but the
//! largest **connected** common subgraph of `g1` and `g3` has only 2 of
//! their 5 edges (their 4 shared edges form two separate arcs), so
//! `DistMcs(g1, g3) = 3/5 > 1/6 + 1/6`. The MCS dimensions (and the
//! non-metric label-histogram measure) therefore use **envelope bounds**
//! instead: a partition's edge-class envelope upper-bounds every member's
//! common-subgraph size against any query, which lower-bounds `DistMcs`
//! and `DistGu` for the whole partition.
//!
//! Both bound families are admissible against the *exact* distances, and
//! every approximate solver in the workspace only ever over-estimates
//! distances, so the bounds stay sound under every
//! [`gss_core::SolverConfig`] — the indexed scan is provably
//! answer-identical to the naive scan (property-tested in
//! `tests/index_pipeline.rs`).
//!
//! # Incremental maintenance (live databases)
//!
//! A built index does not have to be thrown away when the database
//! mutates. [`PivotIndex::apply_batch`] absorbs one `gss-store` mutation
//! batch **without running the exact solvers**: the per-graph distance
//! table stores an admissible `[lower, upper]` GED *bracket* per pivot
//! (exact builds have `lower == upper`), inserted/updated graphs get
//! their bracket from the same cheap probe bounds the query path uses,
//! and removals tombstone the member out of its partition while the
//! partition's rings and envelopes stay behind as valid-but-looser
//! bounds. A ring `[min, max]` is maintained as (min of member lower
//! bounds, max of member upper bounds), which keeps the triangle bound
//! `max(lo_q − ring_max, ring_min − hi_q)` admissible for every member.
//! Removing or replacing a **pivot** graph falls back to a full exact
//! rebuild — the one case incremental absorption cannot cover.
//!
//! Absorbed operations accumulate as staleness ([`PivotIndex::stale_ops`]).
//! When the caller's budget is exceeded, [`PivotIndex::partial_rebuild`]
//! re-assigns members to their nearest pivot and re-quantiles the
//! distance rings from the *stored* brackets — no exact GED — restoring
//! partition tightness at a fraction of the build cost. Because every
//! maintained bound stays admissible, queries through an incrementally
//! maintained index return skylines and witnesses **byte-identical** to a
//! from-scratch rebuild at every epoch (property-tested in
//! `tests/store_incremental.rs`).
//!
//! ```
//! use std::sync::Arc;
//! use gss_core::{graph_similarity_skyline, GraphDatabase, QueryOptions};
//! use gss_index::{PivotIndex, PivotIndexConfig};
//!
//! let mut db = GraphDatabase::new();
//! db.add("path", |b| b.vertices(&["x", "y", "z"], "C").path(&["x", "y", "z"], "-")).unwrap();
//! db.add("tri", |b| b.vertices(&["x", "y", "z"], "C").cycle(&["x", "y", "z"], "-")).unwrap();
//! let q = db.build_query("q", |b| b.vertices(&["x", "y", "z"], "C").path(&["x", "y", "z"], "-")).unwrap();
//!
//! let index = Arc::new(PivotIndex::build(&db, &PivotIndexConfig::default()));
//! let options = QueryOptions::default().with_index(index);
//! let result = graph_similarity_skyline(&db, &q, &options);
//! assert_eq!(result.skyline[0].index(), 0);
//! ```

#![warn(missing_docs)]

mod serialize;

use gss_core::database::{GraphDatabase, GraphId};
use gss_core::index::{IndexPartition, IndexPlan, QueryIndex};
use gss_core::measures::{GcsVector, MeasureKind};
use gss_ged::bipartite::bipartite_ged;
use gss_ged::CostModel;
use gss_graph::stats::{
    edge_class_multiset, edge_label_multiset, vertex_label_multiset, EdgeClass, Multiset,
};
use gss_graph::{Graph, Label};

pub use serialize::IndexError;

/// Build-time knobs for [`PivotIndex::build`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PivotIndexConfig {
    /// Number of pivot graphs (maxmin-selected). The build runs
    /// `pivots × |D|` exact GED computations; more pivots give tighter
    /// triangle bounds and finer partitions at higher build cost.
    pub pivots: usize,
    /// Distance rings per pivot cell: members of a cell are split into this
    /// many distance quantiles. More rings mean smaller partitions with
    /// tighter bounds but more partitions to test per query.
    pub rings: usize,
}

impl Default for PivotIndexConfig {
    fn default() -> Self {
        PivotIndexConfig {
            pivots: 4,
            rings: 3,
        }
    }
}

/// One distance-ring partition and its precomputed pruning data.
///
/// The ring table is column-oriented: `ring_lo[j]`/`ring_hi[j]` hold the
/// per-pivot `[min, max]` of members' GED brackets as two flat `f64`
/// columns. The query-time triangle bound streams both columns in lockstep,
/// so struct-of-arrays keeps that inner loop on contiguous memory (the
/// on-disk format still interleaves pairs; see `serialize.rs`).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Partition {
    /// Member graph ids, ascending.
    pub members: Vec<u32>,
    /// Per-pivot minimum of members' GED lower bounds to that pivot.
    pub ring_lo: Vec<f64>,
    /// Per-pivot maximum of members' GED upper bounds to that pivot.
    pub ring_hi: Vec<f64>,
    /// Per-key maximum of members' vertex-label multisets.
    pub vertex_env: Multiset<Label>,
    /// Per-key maximum of members' edge-label multisets.
    pub edge_env: Multiset<Label>,
    /// Per-key maximum of members' edge-class multisets.
    pub class_env: Multiset<EdgeClass>,
    /// Range of members' vertex counts.
    pub order_range: (usize, usize),
    /// Range of members' edge counts.
    pub size_range: (usize, usize),
}

/// The pivot-based metric index over one [`GraphDatabase`].
///
/// Built once per database ([`PivotIndex::build`]), shared across queries
/// and threads (attach with [`gss_core::QueryOptions::with_index`]), and
/// persistable through the versioned binary format
/// ([`PivotIndex::to_bytes`] / [`PivotIndex::from_bytes`]). A loaded index
/// refuses to plan against a database whose [`GraphDatabase::fingerprint`]
/// differs from the one it was built on.
#[derive(Clone, Debug, PartialEq)]
pub struct PivotIndex {
    pub(crate) db_len: usize,
    pub(crate) db_fingerprint: u64,
    pub(crate) config: PivotIndexConfig,
    /// Chosen pivot graph ids (may be fewer than `config.pivots` when the
    /// database is small or collapses onto the pivots).
    pub(crate) pivot_ids: Vec<u32>,
    /// Admissible *lower* bound on every graph's GED to every pivot,
    /// row-major (`dist[g * k + j]`). Exact for graphs present at build
    /// time; a probe lower bound for incrementally absorbed graphs.
    pub(crate) pivot_dists: Vec<f64>,
    /// Matching *upper* bounds (equal to [`PivotIndex::pivot_dists`] for
    /// exactly-built graphs; the bipartite upper bound for absorbed ones).
    pub(crate) pivot_dists_hi: Vec<f64>,
    pub(crate) partitions: Vec<Partition>,
    /// Mutation operations absorbed since the last full or partial
    /// rebuild.
    pub(crate) stale_ops: u64,
    /// Partial rebuilds performed over this index's lifetime.
    pub(crate) partial_rebuilds: u64,
}

impl PivotIndex {
    /// Builds the index: maxmin pivot selection, exact GED distance table,
    /// distance-ring partitions with envelopes. Deterministic in the
    /// database order. Cost: `pivots × |D|` exact GED computations.
    pub fn build(db: &GraphDatabase, config: &PivotIndexConfig) -> PivotIndex {
        let n = db.len();
        let k_wanted = config.pivots.max(1).min(n.max(1));
        let rings = config.rings.max(1);

        // Maxmin (farthest-point) pivot selection under exact GED. The
        // first pivot is graph 0 (any deterministic seed works); each next
        // pivot maximizes its minimum distance to the chosen set, so the
        // pivots spread across the database's metric extent. Rows computed
        // during selection *are* the final distance table.
        let mut pivot_ids: Vec<u32> = Vec::new();
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut min_dist = vec![f64::INFINITY; n];
        let mut next = 0usize;
        while pivot_ids.len() < k_wanted && n > 0 {
            pivot_ids.push(next as u32);
            let pivot = db.get(GraphId(next));
            let row: Vec<f64> = (0..n)
                .map(|g| {
                    if g == next {
                        0.0
                    } else {
                        gss_ged::ged(db.get(GraphId(g)), pivot)
                    }
                })
                .collect();
            for (g, &d) in row.iter().enumerate() {
                if d < min_dist[g] {
                    min_dist[g] = d;
                }
            }
            rows.push(row);
            // Farthest remaining graph; a maximum of zero means every graph
            // is isomorphic to some pivot — more pivots add nothing.
            let far = (0..n).max_by(|&a, &b| {
                min_dist[a]
                    .partial_cmp(&min_dist[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a)) // prefer the smaller id on ties
            });
            match far {
                Some(g) if min_dist[g] > 0.0 => next = g,
                _ => break,
            }
        }
        let k = pivot_ids.len();

        // Row-major per-graph distance vectors.
        let mut pivot_dists = vec![0.0f64; n * k];
        for (j, row) in rows.iter().enumerate() {
            for g in 0..n {
                pivot_dists[g * k + j] = row[g];
            }
        }

        // Assign each graph to its nearest pivot (ties to the lower pivot
        // index), then split each cell into `rings` distance quantiles.
        let mut cells: Vec<Vec<usize>> = vec![Vec::new(); k.max(1)];
        for g in 0..n {
            let mut best = 0usize;
            for j in 1..k {
                if pivot_dists[g * k + j] < pivot_dists[g * k + best] {
                    best = j;
                }
            }
            cells[best].push(g);
        }
        let mut partitions = Vec::new();
        for (j, mut cell) in cells.into_iter().enumerate() {
            cell.sort_by(|&a, &b| {
                pivot_dists[a * k + j]
                    .partial_cmp(&pivot_dists[b * k + j])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            let buckets = rings.min(cell.len().max(1));
            for r in 0..buckets {
                let lo = r * cell.len() / buckets;
                let hi = (r + 1) * cell.len() / buckets;
                if lo < hi {
                    partitions.push(Self::summarize_partition(
                        db,
                        &cell[lo..hi],
                        k,
                        &pivot_dists,
                        &pivot_dists,
                    ));
                }
            }
        }

        PivotIndex {
            db_len: n,
            db_fingerprint: db.fingerprint(),
            config: PivotIndexConfig {
                pivots: config.pivots,
                rings,
            },
            pivot_ids,
            pivot_dists_hi: pivot_dists.clone(),
            pivot_dists,
            partitions,
            stale_ops: 0,
            partial_rebuilds: 0,
        }
    }

    fn summarize_partition(
        db: &GraphDatabase,
        members: &[usize],
        k: usize,
        dists_lo: &[f64],
        dists_hi: &[f64],
    ) -> Partition {
        let mut ids: Vec<u32> = members.iter().map(|&g| g as u32).collect();
        ids.sort_unstable();
        let mut ring_lo = vec![f64::INFINITY; k];
        let mut ring_hi = vec![f64::NEG_INFINITY; k];
        let mut vertex_env = Multiset::new();
        let mut edge_env = Multiset::new();
        let mut class_env = Multiset::new();
        let mut order_range = (usize::MAX, 0usize);
        let mut size_range = (usize::MAX, 0usize);
        for &g in members {
            for j in 0..k {
                ring_lo[j] = ring_lo[j].min(dists_lo[g * k + j]);
                ring_hi[j] = ring_hi[j].max(dists_hi[g * k + j]);
            }
            let graph = db.get(GraphId(g));
            vertex_env.max_union(&vertex_label_multiset(graph));
            edge_env.max_union(&edge_label_multiset(graph));
            class_env.max_union(&edge_class_multiset(graph));
            order_range.0 = order_range.0.min(graph.order());
            order_range.1 = order_range.1.max(graph.order());
            size_range.0 = size_range.0.min(graph.size());
            size_range.1 = size_range.1.max(graph.size());
        }
        Partition {
            members: ids,
            ring_lo,
            ring_hi,
            vertex_env,
            edge_env,
            class_env,
            order_range,
            size_range,
        }
    }

    /// Checks that this index belongs to `db` (length and structural
    /// fingerprint). [`QueryIndex::plan`] panics on mismatch; callers that
    /// load indexes from disk should surface this error instead.
    pub fn validate(&self, db: &GraphDatabase) -> Result<(), IndexError> {
        if db.len() != self.db_len || db.fingerprint() != self.db_fingerprint {
            return Err(IndexError::DatabaseMismatch {
                index_graphs: self.db_len,
                db_graphs: db.len(),
            });
        }
        Ok(())
    }

    /// Number of database graphs the index was built over.
    pub fn len(&self) -> usize {
        self.db_len
    }

    /// True when the index covers an empty database.
    pub fn is_empty(&self) -> bool {
        self.db_len == 0
    }

    /// The chosen pivot graphs.
    pub fn pivots(&self) -> Vec<GraphId> {
        self.pivot_ids
            .iter()
            .map(|&p| GraphId(p as usize))
            .collect()
    }

    /// Number of distance-ring partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The fingerprint of the database the index was built on.
    pub fn database_fingerprint(&self) -> u64 {
        self.db_fingerprint
    }

    /// The build configuration.
    pub fn config(&self) -> PivotIndexConfig {
        self.config
    }
}

/// How [`PivotIndex::apply_batch`] absorbed a mutation batch.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MaintenanceOutcome {
    /// Every operation was absorbed in place via cheap probe bounds.
    Incremental,
    /// A pivot graph was removed or replaced (or the index had no pivots
    /// yet), so the index ran a full exact rebuild.
    Rebuilt,
}

impl PivotIndex {
    /// Admissible GED bracket of `graph` against a pivot from probe bounds
    /// alone — the same bounds the query path uses, no exact solver.
    fn bracket(graph: &Graph, pivot: &Graph) -> (f64, f64) {
        let size_diff = graph.size().abs_diff(pivot.size()) as f64;
        let lo = gss_ged::combined_lower_bound(graph, pivot).max(size_diff);
        let hi = bipartite_ged(graph, pivot, &CostModel::uniform()).cost;
        (lo, hi)
    }

    /// Mutation operations absorbed since the last full or partial
    /// rebuild — the staleness a maintenance budget is tracked against.
    /// Absorbed operations loosen bounds (probe brackets instead of exact
    /// distances, tombstoned rings) but never break admissibility.
    pub fn stale_ops(&self) -> u64 {
        self.stale_ops
    }

    /// Number of [`PivotIndex::partial_rebuild`] passes run over this
    /// index's lifetime (surviving full rebuilds, for observability).
    pub fn partial_rebuilds(&self) -> u64 {
        self.partial_rebuilds
    }

    /// Absorbs one mutation batch, transforming an index valid for the
    /// pre-batch database into one valid for `db` (the **post-batch**
    /// database) without running the exact solvers.
    ///
    /// The batch follows the `gss-store` apply order — removals first,
    /// then in-place updates, then appends:
    ///
    /// * `removed` — pre-batch ids taken out (any order; ids above each
    ///   removal shift down by one, matching the dense-id compaction of
    ///   `GraphDatabase`),
    /// * `updated` — **post-removal** ids whose graph content was replaced
    ///   in place,
    /// * `inserted` — how many graphs were appended at the tail of `db`.
    ///
    /// Inserted and updated graphs get probe-bound brackets and join the
    /// existing partition that needs the least ring expansion; removed
    /// graphs are tombstoned out (their partition's rings and envelopes
    /// stay behind as valid-but-looser bounds). Removing or replacing a
    /// pivot falls back to [`PivotIndex::build`] and reports
    /// [`MaintenanceOutcome::Rebuilt`].
    pub fn apply_batch(
        &mut self,
        db: &GraphDatabase,
        removed: &[usize],
        updated: &[usize],
        inserted: usize,
    ) -> MaintenanceOutcome {
        // Removals, descending so earlier shifts cannot disturb later ids.
        let mut removals: Vec<usize> = removed.to_vec();
        removals.sort_unstable_by(|a, b| b.cmp(a));
        removals.dedup();

        // A removed pivot invalidates a whole distance-table column; an
        // updated pivot invalidates it too (updates keep their id, and
        // removals shift later ids down — map each surviving pivot through
        // the removals before comparing).
        let removed_pivot = removals
            .iter()
            .any(|&g| self.pivot_ids.iter().any(|&p| p as usize == g));
        let shifted_pivot = |p: u32| {
            let below = removals.iter().filter(|&&r| r < p as usize).count();
            p as usize - below
        };
        let updated_pivot = updated
            .iter()
            .any(|&g| self.pivot_ids.iter().any(|&p| shifted_pivot(p) == g));
        if removed_pivot || updated_pivot || (self.pivot_ids.is_empty() && !db.is_empty()) {
            let keep = self.partial_rebuilds;
            *self = PivotIndex::build(db, &self.config);
            self.partial_rebuilds = keep;
            return MaintenanceOutcome::Rebuilt;
        }

        let k = self.pivot_ids.len();

        for &g in &removals {
            self.detach(g);
            self.pivot_dists.drain(g * k..(g + 1) * k);
            self.pivot_dists_hi.drain(g * k..(g + 1) * k);
            for part in &mut self.partitions {
                for m in &mut part.members {
                    if *m as usize > g {
                        *m -= 1;
                    }
                }
            }
            for p in &mut self.pivot_ids {
                if *p as usize > g {
                    *p -= 1;
                }
            }
        }

        // In-place updates: re-bracket, then migrate to the best partition
        // (the old partition keeps its looser summary).
        for &g in updated {
            self.detach(g);
            let bracket = self.bracket_row(db, g);
            for (j, &(lo, hi)) in bracket.iter().enumerate() {
                self.pivot_dists[g * k + j] = lo;
                self.pivot_dists_hi[g * k + j] = hi;
            }
            self.attach(db, g, &bracket);
        }

        // Appends.
        for g in db.len().saturating_sub(inserted)..db.len() {
            let bracket = self.bracket_row(db, g);
            for &(lo, hi) in &bracket {
                self.pivot_dists.push(lo);
                self.pivot_dists_hi.push(hi);
            }
            self.attach(db, g, &bracket);
        }

        self.db_len = db.len();
        self.db_fingerprint = db.fingerprint();
        self.stale_ops += (removals.len() + updated.len() + inserted) as u64;
        MaintenanceOutcome::Incremental
    }

    /// Re-partitions from the stored distance brackets — no exact GED:
    /// members are re-assigned to their nearest pivot (by upper bound) and
    /// each cell is re-quantiled into distance rings with envelopes
    /// re-summarized from the live graphs. This undoes the bound slack
    /// tombstones and migrations accumulate; call it when
    /// [`PivotIndex::stale_ops`] exceeds the maintenance budget. Resets
    /// the staleness counter and bumps [`PivotIndex::partial_rebuilds`].
    pub fn partial_rebuild(&mut self, db: &GraphDatabase) {
        let n = self.db_len;
        let k = self.pivot_ids.len();
        debug_assert_eq!(n, db.len(), "partial rebuild against a foreign database");
        let mut cells: Vec<Vec<usize>> = vec![Vec::new(); k.max(1)];
        for g in 0..n {
            let mut best = 0usize;
            for j in 1..k {
                if self.pivot_dists_hi[g * k + j] < self.pivot_dists_hi[g * k + best] {
                    best = j;
                }
            }
            cells[best].push(g);
        }
        let rings = self.config.rings.max(1);
        let mut partitions = Vec::new();
        for (j, mut cell) in cells.into_iter().enumerate() {
            if k > 0 {
                cell.sort_by(|&a, &b| {
                    self.pivot_dists[a * k + j]
                        .partial_cmp(&self.pivot_dists[b * k + j])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
            }
            let buckets = rings.min(cell.len().max(1));
            for r in 0..buckets {
                let lo = r * cell.len() / buckets;
                let hi = (r + 1) * cell.len() / buckets;
                if lo < hi {
                    partitions.push(Self::summarize_partition(
                        db,
                        &cell[lo..hi],
                        k,
                        &self.pivot_dists,
                        &self.pivot_dists_hi,
                    ));
                }
            }
        }
        self.partitions = partitions;
        self.stale_ops = 0;
        self.partial_rebuilds += 1;
    }

    /// The probe-bound bracket of graph `g` against every pivot.
    fn bracket_row(&self, db: &GraphDatabase, g: usize) -> Vec<(f64, f64)> {
        let graph = db.get(GraphId(g));
        self.pivot_ids
            .iter()
            .map(|&p| Self::bracket(graph, db.get(GraphId(p as usize))))
            .collect()
    }

    /// Removes graph `g` from its partition, dropping the partition when
    /// it empties. Returns whether the member was found.
    fn detach(&mut self, g: usize) -> bool {
        let id = g as u32;
        let mut hit = None;
        for (pi, part) in self.partitions.iter_mut().enumerate() {
            if let Ok(pos) = part.members.binary_search(&id) {
                part.members.remove(pos);
                hit = Some(pi);
                break;
            }
        }
        match hit {
            Some(pi) => {
                if self.partitions[pi].members.is_empty() {
                    self.partitions.remove(pi);
                }
                true
            }
            None => false,
        }
    }

    /// Adds graph `g` (with its per-pivot bracket) to the partition whose
    /// ring at `g`'s nearest pivot needs the least expansion, widening
    /// that partition's rings, envelopes and ranges to cover it. Creates
    /// the first partition when none exist.
    fn attach(&mut self, db: &GraphDatabase, g: usize, bracket: &[(f64, f64)]) {
        let graph = db.get(GraphId(g));
        if self.partitions.is_empty() {
            self.partitions.push(Partition {
                members: vec![g as u32],
                ring_lo: bracket.iter().map(|&(lo, _)| lo).collect(),
                ring_hi: bracket.iter().map(|&(_, hi)| hi).collect(),
                vertex_env: vertex_label_multiset(graph),
                edge_env: edge_label_multiset(graph),
                class_env: edge_class_multiset(graph),
                order_range: (graph.order(), graph.order()),
                size_range: (graph.size(), graph.size()),
            });
            return;
        }
        let k = bracket.len();
        let near = (0..k)
            .min_by(|&a, &b| {
                bracket[a]
                    .1
                    .partial_cmp(&bracket[b].1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            })
            .unwrap_or(0);
        let expansion = |part: &Partition| -> f64 {
            if k == 0 {
                return 0.0;
            }
            let (ring_min, ring_max) = (part.ring_lo[near], part.ring_hi[near]);
            let (lo, hi) = bracket[near];
            (ring_min - lo).max(0.0) + (hi - ring_max).max(0.0)
        };
        let best = self
            .partitions
            .iter()
            .enumerate()
            .min_by(|(ia, a), (ib, b)| {
                expansion(a)
                    .partial_cmp(&expansion(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ia.cmp(ib))
            })
            .map(|(i, _)| i)
            .expect("partitions checked nonempty");
        let part = &mut self.partitions[best];
        let id = g as u32;
        if let Err(pos) = part.members.binary_search(&id) {
            part.members.insert(pos, id);
        }
        for (j, &(lo, hi)) in bracket.iter().enumerate() {
            part.ring_lo[j] = part.ring_lo[j].min(lo);
            part.ring_hi[j] = part.ring_hi[j].max(hi);
        }
        part.vertex_env.max_union(&vertex_label_multiset(graph));
        part.edge_env.max_union(&edge_label_multiset(graph));
        part.class_env.max_union(&edge_class_multiset(graph));
        part.order_range.0 = part.order_range.0.min(graph.order());
        part.order_range.1 = part.order_range.1.max(graph.order());
        part.size_range.0 = part.size_range.0.min(graph.size());
        part.size_range.1 = part.size_range.1.max(graph.size());
    }
}

/// The query-side view of one plan: probe results and query invariants.
struct Probe {
    /// Per pivot: admissible lower and (bipartite) upper bound on the
    /// query's exact GED to that pivot.
    ged_bracket: Vec<(f64, f64)>,
    vertex_labels: Multiset<Label>,
    edge_labels: Multiset<Label>,
    edge_classes: Multiset<EdgeClass>,
    order: usize,
    size: usize,
    label_total: u32,
}

impl PivotIndex {
    fn probe(&self, db: &GraphDatabase, query: &Graph) -> Probe {
        let cost = CostModel::uniform();
        let ged_bracket = self
            .pivot_ids
            .iter()
            .map(|&p| {
                let pivot = db.get(GraphId(p as usize));
                let size_diff = query.size().abs_diff(pivot.size()) as f64;
                let lo = gss_ged::combined_lower_bound(query, pivot).max(size_diff);
                let hi = bipartite_ged(query, pivot, &cost).cost;
                (lo, hi)
            })
            .collect();
        let vertex_labels = vertex_label_multiset(query);
        let edge_labels = edge_label_multiset(query);
        let label_total = vertex_labels.total() + edge_labels.total();
        Probe {
            ged_bracket,
            vertex_labels,
            edge_labels,
            edge_classes: edge_class_multiset(query),
            order: query.order(),
            size: query.size(),
            label_total,
        }
    }

    /// The admissible per-measure lower-bound vector of one partition.
    fn partition_bound(
        &self,
        part: &Partition,
        probe: &Probe,
        measures: &[MeasureKind],
    ) -> GcsVector {
        // Triangle bound on exact GED, per pivot: for every member g,
        //   ged(g, q) ≥ ged(q, p) − ged(g, p) ≥ lo_p − ring_max, and
        //   ged(g, q) ≥ ged(g, p) − ged(q, p) ≥ ring_min − hi_p.
        let mut tri: f64 = 0.0;
        for (j, &(lo, hi)) in probe.ged_bracket.iter().enumerate() {
            tri = tri.max(lo - part.ring_hi[j]).max(part.ring_lo[j] - hi);
        }
        // Envelope bound on GED: every member must align the query's
        // vertex and edge label multisets, and it can match at most what
        // the partition envelope matches.
        let v_align = (part.order_range.0.max(probe.order) as u32)
            .saturating_sub(part.vertex_env.intersection_size(&probe.vertex_labels));
        let e_align = (part.size_range.0.max(probe.size) as u32)
            .saturating_sub(part.edge_env.intersection_size(&probe.edge_labels));
        let ged_bound = tri.max(f64::from(v_align + e_align)).max(0.0);

        // Envelope bound on the common-subgraph size: any member's common
        // subgraph with the query has at most `env ∩ q` edges.
        let env_mcs = f64::from(part.class_env.intersection_size(&probe.edge_classes));
        let min_size = part.size_range.0;
        let mcs_denom = min_size.max(probe.size) as f64;
        let mcs_bound = if mcs_denom == 0.0 {
            0.0
        } else {
            (1.0 - env_mcs / mcs_denom).max(0.0)
        };
        let gu_denom = (min_size + probe.size) as f64 - env_mcs;
        let gu_bound = if gu_denom <= 0.0 {
            mcs_bound
        } else {
            // DistGu ≥ DistMcs always (Section IV-C of the paper), so the
            // Gu dimension keeps at least the Mcs bound.
            ((1.0 - env_mcs / gu_denom).max(0.0)).max(mcs_bound)
        };

        // Label-histogram deficit: occurrences the query demands that no
        // member can supply, over an upper bound on the pair label total.
        let deficit = multiset_deficit(&probe.vertex_labels, &part.vertex_env)
            + multiset_deficit(&probe.edge_labels, &part.edge_env);
        let lh_total =
            f64::from(probe.label_total) + (part.order_range.1 + part.size_range.1) as f64;
        let lh_bound = if lh_total == 0.0 {
            0.0
        } else {
            f64::from(deficit) / lh_total
        };

        GcsVector {
            values: measures
                .iter()
                .map(|m| match m {
                    MeasureKind::EditDistance => ged_bound,
                    MeasureKind::NormalizedEditDistance => ged_bound / (1.0 + ged_bound),
                    MeasureKind::Mcs => mcs_bound,
                    MeasureKind::Gu => gu_bound,
                    MeasureKind::LabelHistogram => lh_bound,
                })
                .collect(),
        }
    }
}

/// `Σ_key max(0, a[key] − b[key])`: the occurrences of `a` that `b` cannot
/// match.
fn multiset_deficit<K: Ord + Copy>(a: &Multiset<K>, b: &Multiset<K>) -> u32 {
    a.iter().map(|(k, c)| c.saturating_sub(b.count(k))).sum()
}

impl QueryIndex for PivotIndex {
    fn plan(&self, db: &GraphDatabase, query: &Graph, measures: &[MeasureKind]) -> IndexPlan {
        if let Err(e) = self.validate(db) {
            panic!("pivot index does not match the database: {e}");
        }
        let probe = self.probe(db, query);
        let partitions = self
            .partitions
            .iter()
            .map(|p| IndexPartition {
                members: p.members.iter().map(|&g| GraphId(g as usize)).collect(),
                bound: self.partition_bound(p, &probe, measures),
            })
            .collect();
        IndexPlan {
            partitions,
            pivot_probes: self.pivot_ids.len(),
        }
    }

    fn describe(&self) -> String {
        format!(
            "pivot index: {} pivots, {} partitions over {} graphs (rings {})",
            self.pivot_ids.len(),
            self.partitions.len(),
            self.db_len,
            self.config.rings
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::measures::{compute_primitives, SolverConfig};
    use gss_core::{graph_similarity_skyline, QueryOptions};
    use gss_datasets::paper::figure3_database;
    use std::sync::Arc;

    fn paper_db() -> (GraphDatabase, Graph) {
        let data = figure3_database();
        (
            GraphDatabase::from_parts(data.vocab, data.graphs),
            data.query,
        )
    }

    #[test]
    fn build_is_deterministic_and_covers_the_database() {
        let (db, _) = paper_db();
        let a = PivotIndex::build(&db, &PivotIndexConfig::default());
        let b = PivotIndex::build(&db, &PivotIndexConfig::default());
        assert_eq!(a, b);
        let mut seen: Vec<u32> = a
            .partitions
            .iter()
            .flat_map(|p| p.members.clone())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..db.len() as u32).collect::<Vec<_>>());
        assert!(!a.pivot_ids.is_empty());
        assert!(a.pivot_ids.len() <= 4);
    }

    #[test]
    fn maxmin_pivots_are_distinct_and_spread() {
        let (db, _) = paper_db();
        let idx = PivotIndex::build(
            &db,
            &PivotIndexConfig {
                pivots: 3,
                rings: 2,
            },
        );
        let mut ids = idx.pivot_ids.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), idx.pivot_ids.len(), "pivots must be distinct");
        // Every later pivot is at nonzero GED from every earlier pivot.
        let k = idx.pivot_ids.len();
        for a_pos in 0..k {
            for &b in &idx.pivot_ids[a_pos + 1..] {
                assert!(idx.pivot_dists[(b as usize) * k + a_pos] > 0.0);
            }
        }
    }

    #[test]
    fn partition_bounds_are_admissible_on_paper_data() {
        let (db, q) = paper_db();
        let idx = PivotIndex::build(
            &db,
            &PivotIndexConfig {
                pivots: 3,
                rings: 3,
            },
        );
        let measures = [
            MeasureKind::EditDistance,
            MeasureKind::NormalizedEditDistance,
            MeasureKind::Mcs,
            MeasureKind::Gu,
            MeasureKind::LabelHistogram,
        ];
        let plan = idx.plan(&db, &q, &measures);
        assert_eq!(plan.pivot_probes, idx.pivot_ids.len());
        for part in &plan.partitions {
            for id in &part.members {
                let p = compute_primitives(db.get(*id), &q, &SolverConfig::default());
                for (d, m) in measures.iter().enumerate() {
                    let exact = m.from_primitives(&p);
                    assert!(
                        part.bound.values[d] <= exact + 1e-9,
                        "partition bound {} > exact {} for {} of g{}",
                        part.bound.values[d],
                        exact,
                        m.name(),
                        id.index() + 1
                    );
                }
            }
        }
    }

    #[test]
    fn indexed_query_matches_naive_on_paper_data() {
        let (db, q) = paper_db();
        let naive = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        let idx = Arc::new(PivotIndex::build(&db, &PivotIndexConfig::default()));
        let indexed = graph_similarity_skyline(&db, &q, &QueryOptions::default().with_index(idx));
        assert_eq!(indexed.skyline, naive.skyline);
        assert_eq!(indexed.dominated, naive.dominated);
        let stats = indexed.pruning.expect("indexed stats");
        assert_eq!(stats.candidates, db.len());
        assert_eq!(
            stats.verified + stats.pruned + stats.short_circuited + stats.index_skipped,
            db.len()
        );
        assert!(stats.index_partitions > 0);
    }

    #[test]
    fn mismatched_database_is_rejected() {
        let (db, _) = paper_db();
        let idx = PivotIndex::build(&db, &PivotIndexConfig::default());
        let mut other = db.clone();
        other.add("extra", |b| b.vertex("x", "C")).unwrap();
        assert!(matches!(
            idx.validate(&other),
            Err(IndexError::DatabaseMismatch { .. })
        ));
        assert!(idx.validate(&db).is_ok());
    }

    #[test]
    #[should_panic(expected = "does not match the database")]
    fn planning_against_a_mismatched_database_panics() {
        let (db, q) = paper_db();
        let idx = PivotIndex::build(&db, &PivotIndexConfig::default());
        let mut other = db.clone();
        other.add("extra", |b| b.vertex("x", "C")).unwrap();
        let _ = idx.plan(&other, &q, &MeasureKind::paper_query_measures());
    }

    /// Every partition member must be covered exactly once and every
    /// stored bound must stay admissible against the database.
    fn assert_well_formed(idx: &PivotIndex, db: &GraphDatabase) {
        assert!(idx.validate(db).is_ok());
        let mut seen: Vec<u32> = idx
            .partitions
            .iter()
            .flat_map(|p| p.members.clone())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..db.len() as u32).collect::<Vec<_>>());
        let k = idx.pivot_ids.len();
        for g in 0..db.len() {
            for (j, &p) in idx.pivot_ids.iter().enumerate() {
                let exact = gss_ged::ged(db.get(GraphId(g)), db.get(GraphId(p as usize)));
                assert!(
                    idx.pivot_dists[g * k + j] <= exact + 1e-9,
                    "lower bound of g{g} vs pivot {p} exceeds exact GED"
                );
                assert!(
                    idx.pivot_dists_hi[g * k + j] >= exact - 1e-9,
                    "upper bound of g{g} vs pivot {p} below exact GED"
                );
            }
        }
    }

    fn indexed_matches_rebuild(idx: &PivotIndex, db: &GraphDatabase, q: &Graph) {
        let fresh = PivotIndex::build(db, &idx.config());
        let a = graph_similarity_skyline(
            db,
            q,
            &QueryOptions::default().with_index(Arc::new(idx.clone())),
        );
        let b =
            graph_similarity_skyline(db, q, &QueryOptions::default().with_index(Arc::new(fresh)));
        assert_eq!(a.skyline, b.skyline);
        assert_eq!(a.dominated, b.dominated);
    }

    #[test]
    fn incremental_insert_remove_update_stays_admissible() {
        let (db, q) = paper_db();
        let mut idx = PivotIndex::build(&db, &PivotIndexConfig::default());
        let non_pivot = (0..db.len())
            .rev()
            .find(|g| !idx.pivot_ids.contains(&(*g as u32)))
            .expect("paper database has non-pivot graphs");

        // Insert two graphs.
        let mut live = db.clone();
        live.add("extra1", |b| {
            b.vertices(&["a", "b", "c"], "C")
                .path(&["a", "b", "c"], "-")
        })
        .unwrap();
        live.add("extra2", |b| {
            b.vertices(&["a", "b"], "N").edge("a", "b", "=")
        })
        .unwrap();
        live.set_epoch(1);
        assert_eq!(
            idx.apply_batch(&live, &[], &[], 2),
            MaintenanceOutcome::Incremental
        );
        assert_eq!(idx.stale_ops(), 2);
        assert_well_formed(&idx, &live);
        indexed_matches_rebuild(&idx, &live, &q);

        // Remove a non-pivot graph (ids above it shift down).
        let mut next = live.clone();
        next.remove(GraphId(non_pivot));
        next.set_epoch(2);
        assert_eq!(
            idx.apply_batch(&next, &[non_pivot], &[], 0),
            MaintenanceOutcome::Incremental
        );
        assert_eq!(idx.stale_ops(), 3);
        assert_well_formed(&idx, &next);
        indexed_matches_rebuild(&idx, &next, &q);

        // Update the last graph in place.
        let mut updated = next.clone();
        let target = updated.len() - 1;
        let replacement = updated
            .build_query("swap", |b| {
                b.vertices(&["x", "y", "z", "w"], "C")
                    .cycle(&["x", "y", "z", "w"], "-")
            })
            .unwrap();
        updated.replace(GraphId(target), replacement);
        updated.set_epoch(3);
        assert_eq!(
            idx.apply_batch(&updated, &[], &[target], 0),
            MaintenanceOutcome::Incremental
        );
        assert_eq!(idx.stale_ops(), 4);
        assert_well_formed(&idx, &updated);
        indexed_matches_rebuild(&idx, &updated, &q);

        // A partial rebuild re-tightens without exact GED and resets
        // staleness.
        idx.partial_rebuild(&updated);
        assert_eq!(idx.stale_ops(), 0);
        assert_eq!(idx.partial_rebuilds(), 1);
        assert_well_formed(&idx, &updated);
        indexed_matches_rebuild(&idx, &updated, &q);
    }

    #[test]
    fn touching_a_pivot_forces_a_full_rebuild() {
        let (db, _) = paper_db();
        let mut idx = PivotIndex::build(&db, &PivotIndexConfig::default());
        let pivot = idx.pivot_ids[0] as usize;
        let mut live = db.clone();
        live.remove(GraphId(pivot));
        live.set_epoch(1);
        assert_eq!(
            idx.apply_batch(&live, &[pivot], &[], 0),
            MaintenanceOutcome::Rebuilt
        );
        assert_eq!(idx.stale_ops(), 0, "a rebuild starts fresh");
        assert_well_formed(&idx, &live);
    }

    #[test]
    fn tiny_and_empty_databases_build() {
        let empty = GraphDatabase::new();
        let idx = PivotIndex::build(&empty, &PivotIndexConfig::default());
        assert!(idx.is_empty());
        assert_eq!(idx.partition_count(), 0);

        let mut one = GraphDatabase::new();
        one.add("g", |b| b.vertex("x", "C")).unwrap();
        let idx = PivotIndex::build(&one, &PivotIndexConfig::default());
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.pivots(), vec![GraphId(0)]);
        assert_eq!(idx.partition_count(), 1);
    }
}
