//! Engine behaviour under every solver configuration, on the paper dataset
//! (where ground truth is known exactly).

use gss_core::{
    graph_similarity_skyline, GedMode, GraphDatabase, McsMode, QueryOptions, SolverConfig,
};
use gss_datasets::paper::{expected, figure3_database};

fn paper() -> (GraphDatabase, gss_graph::Graph) {
    let data = figure3_database();
    (
        GraphDatabase::from_parts(data.vocab, data.graphs),
        data.query,
    )
}

#[test]
fn huge_budget_equals_exact() {
    let (db, q) = paper();
    let exact = graph_similarity_skyline(&db, &q, &QueryOptions::default());
    let budgeted = graph_similarity_skyline(
        &db,
        &q,
        &QueryOptions {
            solvers: SolverConfig {
                ged: GedMode::ExactBudget(u64::MAX / 2),
                mcs: McsMode::Exact,
            },
            ..Default::default()
        },
    );
    assert_eq!(exact.skyline, budgeted.skyline);
    assert_eq!(exact.gcs, budgeted.gcs);
}

#[test]
fn approximate_ged_never_underestimates_on_paper_data() {
    let (db, q) = paper();
    let exact = graph_similarity_skyline(&db, &q, &QueryOptions::default());
    for mode in [
        GedMode::Bipartite,
        GedMode::Beam(1),
        GedMode::Beam(16),
        GedMode::ExactBudget(2),
    ] {
        let approx = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                solvers: SolverConfig {
                    ged: mode,
                    mcs: McsMode::Exact,
                },
                ..Default::default()
            },
        );
        for i in 0..db.len() {
            assert!(
                approx.gcs[i].values[0] >= exact.gcs[i].values[0] - 1e-9,
                "{mode:?} underestimated DistEd for g{}",
                i + 1
            );
        }
    }
}

#[test]
fn greedy_mcs_never_overestimates_on_paper_data() {
    let (db, q) = paper();
    let exact = graph_similarity_skyline(&db, &q, &QueryOptions::default());
    let approx = graph_similarity_skyline(
        &db,
        &q,
        &QueryOptions {
            solvers: SolverConfig {
                ged: GedMode::Exact,
                mcs: McsMode::Greedy,
            },
            ..Default::default()
        },
    );
    // Greedy |mcs| ≤ exact ⟹ DistMcs/DistGu ≥ exact.
    for i in 0..db.len() {
        assert!(approx.gcs[i].values[1] >= exact.gcs[i].values[1] - 1e-12);
        assert!(approx.gcs[i].values[2] >= exact.gcs[i].values[2] - 1e-12);
    }
}

#[test]
fn exhaustive_beam_reproduces_the_paper_skyline() {
    // With width ≥ the total number of complete mappings
    // (Σ_k C(6,k)·C(10,k)·k! < 20 000 for the largest pair here), beam
    // search degenerates to exhaustive search, so the skyline must be exact.
    let (db, q) = paper();
    let approx = graph_similarity_skyline(
        &db,
        &q,
        &QueryOptions {
            solvers: SolverConfig {
                ged: GedMode::Beam(20_000),
                mcs: McsMode::Exact,
            },
            ..Default::default()
        },
    );
    let got: Vec<usize> = approx.skyline.iter().map(|g| g.index()).collect();
    assert_eq!(got, expected::SKYLINE.to_vec());
}

#[test]
fn greedy_mcs_still_reproduces_the_paper_skyline() {
    // The paper's graphs are easy instances for greedy MCS (their common
    // subgraphs grow monotonically), so even the approximate configuration
    // reproduces the headline result — worth pinning as a regression check.
    let (db, q) = paper();
    let approx = graph_similarity_skyline(
        &db,
        &q,
        &QueryOptions {
            solvers: SolverConfig {
                ged: GedMode::Exact,
                mcs: McsMode::Greedy,
            },
            ..Default::default()
        },
    );
    let got: Vec<usize> = approx.skyline.iter().map(|g| g.index()).collect();
    assert_eq!(got, expected::SKYLINE.to_vec());
}
