//! Property-based parity suite for the compact storage layer.
//!
//! The arena representation (`GraphDatabase::compact`) and the
//! checksummed binary codec (`save_bytes`/`load_bytes`) carry a hard
//! contract: **representation never changes answers**. These properties
//! drive randomly generated databases through the pointer-rich ↔ arena ↔
//! on-disk round trip and demand
//!
//! * identical database fingerprints and text serializations,
//! * byte-for-byte identical skyline / skyband / witness output across
//!   every plan × shard count × thread count × solver config, with the
//!   pointer-rich database as the oracle, and
//! * rejection of any single corrupted byte in the saved image.

use gss_core::{
    graph_similarity_skyband, graph_similarity_skyline, GedMode, GraphDatabase, McsMode, Plan,
    QueryOptions, SolverConfig,
};
use gss_graph::{Graph, Rng, VertexId, Vocabulary};
use proptest::prelude::*;

const VERTEX_LABELS: [&str; 3] = ["C", "N", "O"];
const EDGE_LABELS: [&str; 3] = ["-", "=", "#"];

/// Deterministic random labeled graph over the shared vocabulary.
fn random_graph(rng: &mut Rng, vocab: &mut Vocabulary, name: &str, max_vertices: usize) -> Graph {
    let n = 2 + rng.gen_index(max_vertices - 1);
    let mut g = Graph::new(name);
    for _ in 0..n {
        g.add_vertex(vocab.intern(VERTEX_LABELS[rng.gen_index(VERTEX_LABELS.len())]));
    }
    // A spanning path keeps most graphs connected, then a few extras.
    for i in 1..n {
        let label = vocab.intern(EDGE_LABELS[rng.gen_index(EDGE_LABELS.len())]);
        g.add_edge(VertexId::new(i - 1), VertexId::new(i), label)
            .unwrap();
    }
    for _ in 0..rng.gen_index(n) {
        let u = VertexId::new(rng.gen_index(n));
        let v = VertexId::new(rng.gen_index(n));
        if u != v && !g.has_edge(u, v) {
            let label = vocab.intern(EDGE_LABELS[rng.gen_index(EDGE_LABELS.len())]);
            g.add_edge(u, v, label).unwrap();
        }
    }
    g
}

/// Deterministic random database plus a query graph over its vocabulary.
fn random_db(seed: u64, graphs: usize, max_vertices: usize) -> (GraphDatabase, Graph) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut vocab = Vocabulary::new();
    let query = random_graph(&mut rng, &mut vocab, "query", max_vertices);
    let members = (0..graphs)
        .map(|i| random_graph(&mut rng, &mut vocab, &format!("g{i}"), max_vertices))
        .collect();
    (GraphDatabase::from_parts(vocab, members), query)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// compact → save → load preserves the representation-independent
    /// database fingerprint, the text serialization, and re-saves to the
    /// identical byte stream (the zero-parse load adopts, not rebuilds).
    #[test]
    fn round_trip_is_fingerprint_and_byte_stable(seed in any::<u64>(), graphs in 1usize..10) {
        let (db, _) = random_db(seed, graphs, 7);
        let mut packed = db.clone();
        packed.compact();
        prop_assert_eq!(packed.fingerprint(), db.fingerprint());

        let bytes = packed.save_bytes();
        prop_assert!(GraphDatabase::is_binary(&bytes));
        let loaded = GraphDatabase::load_bytes(&bytes).expect("saved image loads");
        prop_assert!(loaded.is_compact(), "load must adopt the arena, not re-parse");
        prop_assert_eq!(loaded.fingerprint(), db.fingerprint());
        prop_assert_eq!(loaded.to_text(), db.to_text());
        prop_assert_eq!(loaded.save_bytes(), bytes, "re-save must be deterministic");
    }

    /// The arena-backed database answers every plan × shard × thread ×
    /// solver combination with output byte-identical (`Debug` formatting,
    /// witnesses included) to the pointer-rich oracle.
    #[test]
    fn answers_are_byte_identical_across_representations(
        seed in any::<u64>(),
        graphs in 2usize..8,
        shards in 1usize..4,
    ) {
        let (db, query) = random_db(seed, graphs, 6);
        let mut packed = db.clone();
        packed.compact();
        let loaded = GraphDatabase::load_bytes(&packed.save_bytes()).expect("round trip");

        for plan in [Plan::Naive, Plan::Prefilter, Plan::Sharded, Plan::Auto] {
            for threads in [1usize, 2] {
                for approx in [false, true] {
                    let opts = QueryOptions {
                        plan,
                        threads,
                        shards,
                        solvers: if approx {
                            SolverConfig { ged: GedMode::Bipartite, mcs: McsMode::Greedy }
                        } else {
                            SolverConfig::default()
                        },
                        ..QueryOptions::default()
                    };
                    let oracle = graph_similarity_skyline(&db, &query, &opts);
                    let arena = graph_similarity_skyline(&loaded, &query, &opts);
                    prop_assert_eq!(
                        format!("{oracle:?}"),
                        format!("{arena:?}"),
                        "skyline diverged: {:?} threads={} shards={} approx={}",
                        plan, threads, shards, approx
                    );
                    let oracle_band = graph_similarity_skyband(&db, &query, 2, &opts);
                    let arena_band = graph_similarity_skyband(&loaded, &query, 2, &opts);
                    prop_assert_eq!(
                        format!("{oracle_band:?}"),
                        format!("{arena_band:?}"),
                        "skyband diverged: {:?} threads={} shards={} approx={}",
                        plan, threads, shards, approx
                    );
                }
            }
        }
    }

    /// Any single corrupted byte anywhere in the saved image — header,
    /// section payload, or alignment padding — fails the load.
    #[test]
    fn any_single_byte_corruption_is_rejected(
        seed in any::<u64>(),
        graphs in 1usize..6,
        pos in any::<u64>(),
        bit in 0u32..8,
    ) {
        let (db, _) = random_db(seed, graphs, 6);
        let mut packed = db.clone();
        packed.compact();
        let bytes = packed.save_bytes();
        let mut corrupt = bytes.clone();
        let at = (pos % corrupt.len() as u64) as usize;
        corrupt[at] ^= 1 << bit;
        prop_assert!(
            GraphDatabase::load_bytes(&corrupt).is_err(),
            "flipping bit {} of byte {} (of {}) must be rejected",
            bit, at, bytes.len()
        );
    }
}
