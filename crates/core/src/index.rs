//! The query-engine ↔ index contract.
//!
//! A database index (e.g. the pivot-based metric index in the `gss-index`
//! crate) partitions the database ahead of time; at query time it turns one
//! query graph into an [`IndexPlan`]: a set of disjoint candidate
//! partitions, each carrying an **admissible per-measure lower-bound
//! vector** that holds for *every* member of the partition. The engine
//! ([`crate::query`]) then skips whole partitions whose bound vector is
//! similarity-dominated by an already-verified exact vector — without
//! touching their members at all — and runs the ordinary per-candidate
//! filter-and-verify pipeline inside the partitions that survive.
//!
//! The trait lives in `gss-core` (not in the index crate) so the engine
//! stays index-agnostic and index implementations can depend on the engine
//! for measure math without a dependency cycle.
//!
//! # Soundness contract
//!
//! For every partition `P` returned by [`QueryIndex::plan`] and every
//! member `g ∈ P`, the bound vector must satisfy
//! `bound[j] ≤ value_j(g, q)` for each measure `j`, where `value_j` is what
//! the **configured solvers** report — not just the exact distance. All
//! solver approximations in this workspace only ever over-estimate
//! distances (bipartite/beam/budgeted GED are upper bounds; greedy MCS
//! under-estimates `|mcs|`, which over-estimates `DistMcs`/`DistGu`), so
//! any bound that is admissible against the exact distances is admissible
//! against every solver configuration.
//!
//! The partitions must form an exact partition of the database: every
//! [`GraphId`] appears in exactly one partition. The engine validates this
//! and panics otherwise, because a missing candidate would silently drop
//! answers.

use gss_graph::Graph;

use crate::database::{GraphDatabase, GraphId};
use crate::measures::{GcsVector, MeasureKind};

/// One candidate partition of an [`IndexPlan`].
#[derive(Clone, Debug)]
pub struct IndexPartition {
    /// The database graphs in this partition.
    pub members: Vec<GraphId>,
    /// A per-measure lower bound valid for **every** member, in the query's
    /// measure order.
    pub bound: GcsVector,
}

/// A query-specific partitioning of the database produced by an index.
#[derive(Clone, Debug, Default)]
pub struct IndexPlan {
    /// Disjoint partitions covering the whole database.
    pub partitions: Vec<IndexPartition>,
    /// How many pivot probes (cheap query-to-pivot bound computations, not
    /// exact solver calls) the plan cost. Reported in [`crate::PruneStats`].
    pub pivot_probes: usize,
}

impl IndexPlan {
    /// The partition visit order of the executor's candidate source stage
    /// ([`crate::exec`]): most promising first — smallest bound-vector sum,
    /// ties broken by member ids — so the query's neighbourhood verifies
    /// early and by the time the far partitions come up the dominance
    /// frontier usually covers them wholesale.
    pub fn most_promising_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.partitions.len()).collect();
        order.sort_by(|&a, &b| {
            let sum = |p: usize| -> f64 { self.partitions[p].bound.values.iter().sum() };
            sum(a)
                .partial_cmp(&sum(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| self.partitions[a].members.cmp(&self.partitions[b].members))
        });
        order
    }
}

/// A database index the query engine can consult to skip whole candidate
/// partitions before any per-candidate work.
///
/// Implementations are shared across queries (and threads) through
/// [`crate::QueryOptions::index`], so planning must not mutate the index.
pub trait QueryIndex: std::fmt::Debug + Send + Sync {
    /// Builds the partition plan for one query.
    ///
    /// `db` must be the database the index was built on (implementations
    /// should verify a fingerprint and panic with a clear message rather
    /// than return unsound partitions).
    fn plan(&self, db: &GraphDatabase, query: &Graph, measures: &[MeasureKind]) -> IndexPlan;

    /// One human-readable line describing the index (for explain output).
    fn describe(&self) -> String;
}

/// Validates that `plan` covers `0..n` exactly once; panics otherwise.
/// Called by the engine before trusting a plan.
pub(crate) fn validate_plan(plan: &IndexPlan, n: usize) {
    let mut seen = vec![false; n];
    for p in &plan.partitions {
        for id in &p.members {
            assert!(
                id.index() < n,
                "index plan names graph {:?} outside the database (len {})",
                id,
                n
            );
            assert!(!seen[id.index()], "index plan lists graph {:?} twice", id);
            seen[id.index()] = true;
        }
    }
    let covered = seen.iter().filter(|&&s| s).count();
    assert!(
        covered == n,
        "index plan covers {covered} of {n} database graphs"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_of(members: Vec<Vec<usize>>) -> IndexPlan {
        IndexPlan {
            partitions: members
                .into_iter()
                .map(|m| IndexPartition {
                    members: m.into_iter().map(GraphId).collect(),
                    bound: GcsVector { values: vec![0.0] },
                })
                .collect(),
            pivot_probes: 0,
        }
    }

    #[test]
    fn valid_plan_passes() {
        validate_plan(&plan_of(vec![vec![0, 2], vec![1]]), 3);
        validate_plan(&plan_of(vec![]), 0);
    }

    #[test]
    #[should_panic(expected = "covers 2 of 3")]
    fn missing_member_panics() {
        validate_plan(&plan_of(vec![vec![0, 2]]), 3);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_member_panics() {
        validate_plan(&plan_of(vec![vec![0, 1], vec![1]]), 2);
    }

    #[test]
    #[should_panic(expected = "outside the database")]
    fn out_of_range_member_panics() {
        validate_plan(&plan_of(vec![vec![5]]), 2);
    }
}
