//! The graph similarity skyline query engine (Section V of the paper).
//!
//! Given a database `D`, a query graph `q` and `d` local distance measures,
//! the engine computes the compound similarity vector `GCS(g, q)` for every
//! `g ∈ D` and returns the graphs that are **not similarity-dominated**
//! (Definition 12 / Equation 4) — together with, for every excluded graph, a
//! witness dominator (the explanations the paper walks through in
//! Section VI: "g2 is dominated by g7", …).
//!
//! # Filter-and-verify pipeline
//!
//! With [`QueryOptions::prefilter`] enabled the scan becomes a two-phase
//! **filter-and-verify** pipeline:
//!
//! 1. **Filter** — a cheap [`crate::prefilter`] summary (per-measure lower
//!    bounds plus a WL/isomorphism distance-zero short-circuit) is computed
//!    for every candidate in `O(|V| log |V| + |E| log |E|)`.
//! 2. **Verify** — candidates are visited most-promising-first (smallest
//!    lower-bound sum). A candidate whose lower-bound vector is already
//!    similarity-dominated by a *verified* exact vector is **pruned**: its
//!    exact vector cannot make the skyline, because lower bounds only move
//!    up (`exact ≥ lower` per dimension, so `dominates(e, lower)` implies
//!    `dominates(e, exact)`). Everything else runs the exact solvers.
//!
//! The pruned scan returns the **identical** skyline and witness list as
//! the naive scan — only [`GssResult::evaluated`] and
//! [`GssResult::pruning`] reveal that less work was done. To keep witnesses
//! identical in both modes, the witness for an excluded graph is defined as
//! the first skyline member (ascending id) whose exact vector dominates the
//! graph's *lower-bound* vector, falling back to its exact vector; for a
//! pruned graph the first rule always fires (its pruner, or a skyline
//! member dominating the pruner, dominates the lower bound transitively).

use std::cmp::Ordering;
use std::sync::Arc;

use gss_graph::Graph;
use gss_skyline::{dominance, Algorithm};

use crate::database::{GraphDatabase, GraphId};
use crate::index::QueryIndex;
use crate::measures::{GcsVector, MeasureKind, SolverConfig};
use crate::parallel::parallel_map_indexed;
use crate::prefilter::{self, PrefilterContext, PrefilterSummary, PruneStats};

/// Options for [`graph_similarity_skyline`].
#[derive(Clone, Debug)]
pub struct QueryOptions {
    /// The local distance measures forming the GCS vector, in order.
    /// Default: the paper's `(DistEd, DistMcs, DistGu)`.
    pub measures: Vec<MeasureKind>,
    /// Which skyline algorithm filters the GCS matrix.
    pub skyline_algorithm: Algorithm,
    /// Exact/approximate solver selection for the primitives.
    pub solvers: SolverConfig,
    /// Worker threads for the per-graph GCS scan (1 = sequential).
    pub threads: usize,
    /// Enables the filter-and-verify pruned scan: candidates whose
    /// lower-bound GCS vector is dominated by a verified exact vector skip
    /// the exact solvers. The skyline and witnesses are identical to the
    /// naive scan. Ignored by [`graph_similarity_skyband`] (a `k`-skyband
    /// needs every candidate's dominator count, so nothing can be skipped).
    pub prefilter: bool,
    /// Optional database index (e.g. `gss-index`'s pivot index) consulted
    /// *before* the per-candidate prefilter: whole partitions whose bound
    /// vector is dominated by a verified exact vector are skipped without
    /// touching their members. Implies the filter-and-verify pipeline for
    /// the partitions that survive, composing with [`Self::prefilter`] as a
    /// second-stage filter. Results stay identical to the naive scan.
    /// Ignored by [`graph_similarity_skyband`].
    pub index: Option<Arc<dyn QueryIndex>>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            measures: MeasureKind::paper_query_measures(),
            skyline_algorithm: Algorithm::default(),
            solvers: SolverConfig::default(),
            threads: 1,
            prefilter: false,
            index: None,
        }
    }
}

impl QueryOptions {
    /// Returns the options with the given index attached (the indexed scan
    /// also enables the per-candidate prefilter for surviving partitions).
    pub fn with_index(self, index: Arc<dyn QueryIndex>) -> Self {
        QueryOptions {
            index: Some(index),
            ..self
        }
    }
}

/// Why a graph is not in the skyline.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DominationWitness {
    /// The excluded graph.
    pub graph: GraphId,
    /// A database graph whose GCS vector similarity-dominates it.
    pub dominator: GraphId,
}

/// The result of a graph similarity skyline query.
#[derive(Clone, Debug)]
pub struct GssResult {
    /// The measures used, in GCS-vector order.
    pub measures: Vec<MeasureKind>,
    /// Per-graph vectors in database order: the exact `GCS(gi, q)` for
    /// verified graphs, the prefilter *lower-bound* vector for pruned ones
    /// (see [`GssResult::evaluated`]). Without pruning every entry is exact.
    pub gcs: Vec<GcsVector>,
    /// `evaluated[i]` is true when `gcs[i]` is the exact vector (computed by
    /// the solvers or proven all-zero by the isomorphism short-circuit).
    pub evaluated: Vec<bool>,
    /// Ids of the Pareto-optimal graphs (`GSS(D, q)`), ascending.
    pub skyline: Vec<GraphId>,
    /// One witness per excluded graph (ascending by excluded id).
    pub dominated: Vec<DominationWitness>,
    /// Pruning counters when the filter-and-verify pipeline ran, `None` for
    /// the naive scan.
    pub pruning: Option<PruneStats>,
}

impl GssResult {
    /// True when `id` made the skyline.
    pub fn contains(&self, id: GraphId) -> bool {
        self.skyline.binary_search(&id).is_ok()
    }

    /// The witness dominator for an excluded graph, if any.
    pub fn witness_for(&self, id: GraphId) -> Option<GraphId> {
        self.dominated
            .iter()
            .find(|w| w.graph == id)
            .map(|w| w.dominator)
    }

    /// True when `gcs[id]` holds the exact GCS vector (always true for
    /// skyline members; false only for graphs pruned by the prefilter).
    pub fn is_exact(&self, id: GraphId) -> bool {
        self.evaluated[id.index()]
    }
}

/// Computes `GSS(D, q)` (Equation 4 of the paper), optionally through the
/// filter-and-verify pruned pipeline ([`QueryOptions::prefilter`]).
pub fn graph_similarity_skyline(
    db: &GraphDatabase,
    query: &Graph,
    options: &QueryOptions,
) -> GssResult {
    assert!(
        !options.measures.is_empty(),
        "at least one measure is required"
    );
    let n = db.len();
    let pipeline = options.prefilter || options.index.is_some();

    // 1. Filter contexts: the query-side invariants are hoisted once per
    //    scan; the isomorphism short-circuit stays off for naive scans and
    //    approximate solvers.
    let ctx = PrefilterContext::for_query(query, &options.solvers, pipeline);

    // 2. Filter + verify. Three strategies, all returning the same answer:
    //    * naive — exact vectors for everyone;
    //    * prefilter — per-candidate summaries for everyone, exact solving
    //      only for candidates whose lower-bound vector survives dominance;
    //    * indexed — whole partitions whose index bound vector is dominated
    //      are skipped without even summarizing their members; survivors go
    //      through the per-candidate prefilter as a second stage (skipped
    //      members get their summaries backfilled for reporting).
    let (exact, summaries, pruning) = if let Some(index) = &options.index {
        let (exact, summaries, stats) = indexed_verify(db, query, options, index.as_ref(), &ctx);
        (exact, summaries, Some(stats))
    } else {
        let summaries: Vec<Option<PrefilterSummary>> =
            parallel_map_indexed(n, options.threads, |i| {
                let id = GraphId(i);
                Some(prefilter::summarize_with_stats(
                    db.get(id),
                    db.stats(id),
                    query,
                    &options.measures,
                    &ctx,
                ))
            });
        if options.prefilter {
            let (exact, stats) = pruned_verify(db, query, options, &summaries);
            (exact, summaries, Some(stats))
        } else {
            let gcs: Vec<GcsVector> = parallel_map_indexed(n, options.threads, |i| {
                GcsVector::compute(
                    db.get(GraphId(i)),
                    query,
                    &options.measures,
                    &options.solvers,
                )
            });
            (gcs.into_iter().map(Some).collect(), summaries, None)
        }
    };

    // 3. Skyline over the verified GCS matrix. Pruned candidates are
    //    provably dominated, and removing dominated points never changes a
    //    skyline, so running the algorithm on the verified subset yields
    //    exactly `GSS(D, q)`.
    let verified: Vec<usize> = (0..n).filter(|&i| exact[i].is_some()).collect();
    let points: Vec<Vec<f64>> = verified
        .iter()
        .map(|&i| exact[i].as_ref().expect("verified").values.clone())
        .collect();
    let skyline: Vec<GraphId> = gss_skyline::skyline(&points, options.skyline_algorithm)
        .into_iter()
        .map(|k| GraphId(verified[k]))
        .collect();

    // 4. Witnesses for the excluded graphs — the identical rule in every
    //    mode consumes per-candidate lower bounds. Every strategy returns
    //    fully-materialized summaries (the indexed scan fills in skipped
    //    partitions itself, after the verify loop), so this is a plain
    //    unwrap.
    let summaries: Vec<PrefilterSummary> = summaries
        .into_iter()
        .map(|s| s.expect("every scan strategy materializes all summaries"))
        .collect();
    let dominated = compute_witnesses(n, &skyline, &exact, &summaries);

    // 5. Assemble: exact vectors where verified, lower bounds elsewhere.
    let mut evaluated = Vec::with_capacity(n);
    let mut gcs = Vec::with_capacity(n);
    for (i, e) in exact.into_iter().enumerate() {
        match e {
            Some(v) => {
                evaluated.push(true);
                gcs.push(v);
            }
            None => {
                evaluated.push(false);
                gcs.push(summaries[i].lower.clone());
            }
        }
    }

    GssResult {
        measures: options.measures.clone(),
        gcs,
        evaluated,
        skyline,
        dominated,
        pruning,
    }
}

/// Shared state of the filter-and-verify pipeline: the verified vectors so
/// far, the non-dominated frontier over them, and the running counters.
/// Both the prefilter-only scan and the indexed scan drive one `Verifier`;
/// candidates and partitions can be fed in any order without changing the
/// final skyline (only the stats depend on order).
struct Verifier<'a> {
    db: &'a GraphDatabase,
    query: &'a Graph,
    options: &'a QueryOptions,
    exact: Vec<Option<GcsVector>>,
    /// BNL-style frontier: the non-dominated subset of verified vectors.
    /// Dominance is transitive, so testing candidates against the frontier
    /// is as strong as testing against every verified vector.
    frontier: Vec<usize>,
    stats: PruneStats,
}

impl<'a> Verifier<'a> {
    fn new(db: &'a GraphDatabase, query: &'a Graph, options: &'a QueryOptions) -> Self {
        Verifier {
            db,
            query,
            options,
            exact: vec![None; db.len()],
            frontier: Vec::new(),
            stats: PruneStats {
                candidates: db.len(),
                ..PruneStats::default()
            },
        }
    }

    /// True when a verified vector already dominates `bound` — the one
    /// pruning decision of the pipeline, shared by partitions (index
    /// bounds) and candidates (prefilter lower bounds).
    fn frontier_dominates(&self, bound: &[f64]) -> bool {
        self.frontier.iter().any(|&f| {
            dominance::dominates(
                &self.exact[f].as_ref().expect("frontier is verified").values,
                bound,
            )
        })
    }

    /// Inserts a verified vector into the non-dominated frontier.
    fn frontier_insert(&mut self, i: usize) {
        let v = &self.exact[i]
            .as_ref()
            .expect("inserting a verified vector")
            .values;
        if self
            .frontier
            .iter()
            .any(|&f| dominance::dominates(&self.exact[f].as_ref().expect("frontier").values, v))
        {
            return;
        }
        let exact = &self.exact;
        self.frontier
            .retain(|&f| !dominance::dominates(v, &exact[f].as_ref().expect("frontier").values));
        self.frontier.push(i);
    }

    /// Resolves `i` through the distance-zero short-circuit when its
    /// summary proved isomorphism: exact all-zero vector, no solver runs.
    fn try_short_circuit(&mut self, i: usize, summary: &PrefilterSummary) {
        if summary.isomorphic && self.exact[i].is_none() {
            self.exact[i] = summary.known_exact(&self.options.measures);
            self.stats.short_circuited += 1;
            self.frontier_insert(i);
        }
    }

    /// Runs the per-candidate filter-and-verify loop over `candidates`
    /// (already-resolved entries are skipped).
    ///
    /// Verification order is most promising first (smallest lower-bound
    /// sum, ties by id): near-answers verify early and build a strong
    /// pruning frontier for the long tail. Exact solving proceeds in waves
    /// of up to `threads` candidates so it still parallelizes; each wave
    /// refreshes the frontier before the next pruning decision.
    /// `threads == 1` is the classic sequential filter-and-verify loop.
    fn run(&mut self, candidates: &[usize], summaries: &[Option<PrefilterSummary>]) {
        let lower = |i: usize| {
            &summaries[i]
                .as_ref()
                .expect("candidates fed to run() are summarized")
                .lower
                .values
        };
        let mut order: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| self.exact[i].is_none())
            .collect();
        order.sort_by(|&a, &b| {
            let sa: f64 = lower(a).iter().sum();
            let sb: f64 = lower(b).iter().sum();
            sa.partial_cmp(&sb)
                .unwrap_or(Ordering::Equal)
                .then(a.cmp(&b))
        });

        let threads = self.options.threads.max(1);
        let mut cursor = 0usize;
        while cursor < order.len() {
            let mut batch: Vec<usize> = Vec::with_capacity(threads);
            while cursor < order.len() && batch.len() < threads {
                let i = order[cursor];
                cursor += 1;
                if self.frontier_dominates(lower(i)) {
                    self.stats.pruned += 1;
                } else {
                    batch.push(i);
                }
            }
            if batch.is_empty() {
                continue;
            }
            let results: Vec<GcsVector> = parallel_map_indexed(batch.len(), threads, |k| {
                GcsVector::compute(
                    self.db.get(GraphId(batch[k])),
                    self.query,
                    &self.options.measures,
                    &self.options.solvers,
                )
            });
            for (k, v) in results.into_iter().enumerate() {
                let i = batch[k];
                self.exact[i] = Some(v);
                self.stats.verified += 1;
                self.frontier_insert(i);
            }
        }
    }
}

/// The verify phase of the pruned pipeline: exact vectors for every
/// candidate that survives lower-bound domination, `None` for the pruned.
fn pruned_verify(
    db: &GraphDatabase,
    query: &Graph,
    options: &QueryOptions,
    summaries: &[Option<PrefilterSummary>],
) -> (Vec<Option<GcsVector>>, PruneStats) {
    let n = db.len();
    let mut v = Verifier::new(db, query, options);
    for (i, summary) in summaries.iter().enumerate() {
        v.try_short_circuit(i, summary.as_ref().expect("all summarized"));
    }
    let all: Vec<usize> = (0..n).collect();
    v.run(&all, summaries);
    (v.exact, v.stats)
}

/// The indexed scan: the index's partition plan is processed most
/// promising first; a partition whose bound vector is dominated by a
/// verified exact vector is skipped **wholesale** — its members get
/// neither a prefilter summary nor a solver call during the scan
/// (`summaries` stays `None` for them). Members of surviving partitions
/// are summarized and run through the ordinary per-candidate
/// filter-and-verify second stage.
fn indexed_verify(
    db: &GraphDatabase,
    query: &Graph,
    options: &QueryOptions,
    index: &dyn QueryIndex,
    ctx: &PrefilterContext,
) -> (
    Vec<Option<GcsVector>>,
    Vec<Option<PrefilterSummary>>,
    PruneStats,
) {
    let n = db.len();
    let plan = index.plan(db, query, &options.measures);
    crate::index::validate_plan(&plan, n);
    for p in &plan.partitions {
        assert_eq!(
            p.bound.values.len(),
            options.measures.len(),
            "index partition bound must match the measure count"
        );
    }

    let mut v = Verifier::new(db, query, options);
    v.stats.index_partitions = plan.partitions.len();
    v.stats.pivot_probes = plan.pivot_probes;
    let mut summaries: Vec<Option<PrefilterSummary>> = vec![None; n];

    // Most promising partitions first (smallest bound sum, ties by first
    // member id): the query's neighbourhood verifies early, so by the time
    // the far partitions come up the frontier usually dominates them.
    let mut order: Vec<usize> = (0..plan.partitions.len()).collect();
    order.sort_by(|&a, &b| {
        let sum = |p: usize| -> f64 { plan.partitions[p].bound.values.iter().sum() };
        sum(a)
            .partial_cmp(&sum(b))
            .unwrap_or(Ordering::Equal)
            .then_with(|| plan.partitions[a].members.cmp(&plan.partitions[b].members))
    });

    let mut partition_of: Vec<usize> = vec![usize::MAX; n];
    for pi in order {
        let part = &plan.partitions[pi];
        if part.members.is_empty() {
            continue;
        }
        if v.frontier_dominates(&part.bound.values) {
            v.stats.index_skipped += part.members.len();
            v.stats.index_partitions_skipped += 1;
            for id in &part.members {
                partition_of[id.index()] = pi;
            }
            continue;
        }
        let members: Vec<usize> = part.members.iter().map(|g| g.index()).collect();
        let batch: Vec<PrefilterSummary> =
            parallel_map_indexed(members.len(), options.threads, |k| {
                let id = GraphId(members[k]);
                prefilter::summarize_with_stats(
                    db.get(id),
                    db.stats(id),
                    query,
                    &options.measures,
                    ctx,
                )
            });
        for (k, s) in batch.into_iter().enumerate() {
            summaries[members[k]] = Some(s);
        }
        for &i in &members {
            let summary = summaries[i].as_ref().expect("just summarized").clone();
            v.try_short_circuit(i, &summary);
        }
        v.run(&members, &summaries);
    }

    // Materialize summaries for the members of skipped partitions: the
    // witness rule and the reported GCS matrix consume per-candidate lower
    // bounds for every excluded graph. This is the reporting half of the
    // bargain — linear-time per candidate, no solver involved — and runs
    // only after the scan decided what to verify.
    let skipped: Vec<usize> = (0..n).filter(|&i| summaries[i].is_none()).collect();
    let batch: Vec<PrefilterSummary> = parallel_map_indexed(skipped.len(), options.threads, |k| {
        let id = GraphId(skipped[k]);
        prefilter::summarize_with_stats(db.get(id), db.stats(id), query, &options.measures, ctx)
    });
    for (k, s) in batch.into_iter().enumerate() {
        summaries[skipped[k]] = Some(s);
    }

    // Witness parity: the canonical witness rule resolves an excluded graph
    // through the first skyline member dominating its *own* lower bound,
    // falling back to its exact vector. A skipped candidate's own bound can
    // be looser than its partition's (the pivot triangle bound sees
    // structure the label-alignment bounds cannot), so the frontier may
    // dominate the partition while missing the candidate's bound — verify
    // those rare stragglers so they resolve exactly as the naive scan
    // would. Their exact vectors are provably dominated (the skip was
    // justified by an admissible partition bound), so the skyline cannot
    // change; and a prefilter-only scan verifies the same candidates (a
    // candidate whose bound no verified vector dominates is never pruned),
    // so this never costs more solver calls than the prefilter path.
    let stragglers: Vec<usize> = skipped
        .iter()
        .copied()
        .filter(|&i| {
            !v.frontier_dominates(
                &summaries[i]
                    .as_ref()
                    .expect("skipped candidates were just summarized")
                    .lower
                    .values,
            )
        })
        .collect();
    v.stats.index_skipped -= stragglers.len();
    // A partition that produced a straggler was not skipped *wholesale*
    // after all — keep the partition counter consistent with the
    // candidate counter in explain output and the benchmark artifact.
    let mut demoted: Vec<usize> = stragglers.iter().map(|&i| partition_of[i]).collect();
    demoted.sort_unstable();
    demoted.dedup();
    v.stats.index_partitions_skipped -= demoted.len();
    v.run(&stragglers, &summaries);

    (v.exact, summaries, v.stats)
}

/// One witness per excluded graph: the first skyline member (ascending)
/// whose exact vector dominates the graph's lower-bound vector, else the
/// first dominating its exact vector. Lower bounds never exceed exact
/// values, so a lower-bound dominator is always a true dominator; the
/// two-step rule exists so pruned graphs (whose exact vector is unknown)
/// and verified graphs resolve through the same deterministic procedure.
fn compute_witnesses(
    n: usize,
    skyline: &[GraphId],
    exact: &[Option<GcsVector>],
    summaries: &[PrefilterSummary],
) -> Vec<DominationWitness> {
    let sky_point = |s: &GraphId| {
        &exact[s.index()]
            .as_ref()
            .expect("skyline members are verified")
            .values
    };
    let mut dominated = Vec::new();
    for i in 0..n {
        let id = GraphId(i);
        if skyline.binary_search(&id).is_ok() {
            continue;
        }
        let lower = &summaries[i].lower.values;
        let dominator = skyline
            .iter()
            .find(|s| dominance::dominates(sky_point(s), lower))
            .or_else(|| {
                let ev = &exact[i]
                    .as_ref()
                    .expect(
                        "an excluded graph is either pruned (lower-bound dominated) or verified",
                    )
                    .values;
                skyline
                    .iter()
                    .find(|s| dominance::dominates(sky_point(s), ev))
            })
            .copied()
            .expect("every excluded point has a skyline dominator");
        dominated.push(DominationWitness {
            graph: id,
            dominator,
        });
    }
    dominated
}

/// Aggregated observability counters for a batch of query results — the
/// batch-level view of [`PruneStats`]. Totals are summed over every result;
/// results from naive scans (no [`GssResult::pruning`]) count each
/// candidate as one exact solver call, which is exactly what the naive
/// scan performs.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of query results aggregated.
    pub queries: usize,
    /// Total candidates considered (database size summed over queries).
    pub candidates: usize,
    /// Total candidates whose exact GCS vector is known (solver-verified or
    /// short-circuited) — the per-result `evaluated` counts summed.
    pub evaluated: usize,
    /// Total exact solver calls (candidates that ran the GED/MCS solvers).
    pub verified: usize,
    /// Total candidates pruned by lower-bound dominance.
    pub pruned: usize,
    /// Total candidates resolved by the isomorphism short-circuit.
    pub short_circuited: usize,
    /// Total candidates skipped wholesale by a metric index.
    pub index_skipped: usize,
}

impl BatchStats {
    /// Sums the counters of every result in the batch.
    pub fn aggregate(results: &[GssResult]) -> BatchStats {
        let mut total = BatchStats::default();
        for r in results {
            total.absorb(r);
        }
        total
    }

    /// Adds one result's counters to the running totals.
    pub fn absorb(&mut self, result: &GssResult) {
        self.queries += 1;
        self.candidates += result.gcs.len();
        self.evaluated += result.evaluated.iter().filter(|&&e| e).count();
        match &result.pruning {
            Some(p) => {
                self.verified += p.verified;
                self.pruned += p.pruned;
                self.short_circuited += p.short_circuited;
                self.index_skipped += p.index_skipped;
            }
            // A naive scan runs the exact solvers for every candidate.
            None => self.verified += result.gcs.len(),
        }
    }

    /// Merges another aggregate into this one (for long-lived accumulators
    /// like the `gss-server` stats counters).
    pub fn merge(&mut self, other: &BatchStats) {
        self.queries += other.queries;
        self.candidates += other.candidates;
        self.evaluated += other.evaluated;
        self.verified += other.verified;
        self.pruned += other.pruned;
        self.short_circuited += other.short_circuited;
        self.index_skipped += other.index_skipped;
    }

    /// Fraction of candidates that skipped exact solving, in `[0, 1]`.
    pub fn pruning_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            (self.pruned + self.short_circuited + self.index_skipped) as f64
                / self.candidates as f64
        }
    }
}

/// Runs one skyline query per input over a shared database, spreading the
/// queries across [`QueryOptions::threads`] workers (each query then scans
/// sequentially — for multi-query workloads, cross-query parallelism beats
/// nested per-candidate parallelism because it needs no synchronization).
///
/// Results are in query order and identical to calling
/// [`graph_similarity_skyline`] per query with `threads = 1`. Aggregate the
/// per-query [`GssResult::pruning`] counters with [`BatchStats::aggregate`].
pub fn graph_similarity_skyline_batch(
    db: &GraphDatabase,
    queries: &[Graph],
    options: &QueryOptions,
) -> Vec<GssResult> {
    let per_query = QueryOptions {
        threads: 1,
        ..options.clone()
    };
    parallel_map_indexed(queries.len(), options.threads, |i| {
        graph_similarity_skyline(db, &queries[i], &per_query)
    })
}

/// **Extension** (related work \[20\] of the paper): the *k-skyband* of a
/// similarity query — every database graph similarity-dominated by fewer
/// than `k` others. `k = 1` is exactly [`graph_similarity_skyline`]; larger
/// `k` relaxes the answer set gracefully (useful when the strict skyline is
/// too small), while staying order-consistent: the skyband is monotone in
/// `k` and always contains the skyline.
pub fn graph_similarity_skyband(
    db: &GraphDatabase,
    query: &Graph,
    k: usize,
    options: &QueryOptions,
) -> Vec<GraphId> {
    assert!(
        !options.measures.is_empty(),
        "at least one measure is required"
    );
    let gcs: Vec<GcsVector> = parallel_map_indexed(db.len(), options.threads, |i| {
        GcsVector::compute(
            db.get(GraphId(i)),
            query,
            &options.measures,
            &options.solvers,
        )
    });
    let points: Vec<Vec<f64>> = gcs.into_iter().map(|g| g.values).collect();
    gss_skyline::k_skyband(&points, k)
        .into_iter()
        .map(GraphId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_datasets::paper::{expected, figure3_database};

    fn paper_db() -> (GraphDatabase, Graph) {
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        (db, data.query)
    }

    fn prefilter_options() -> QueryOptions {
        QueryOptions {
            prefilter: true,
            ..QueryOptions::default()
        }
    }

    #[test]
    fn paper_skyline_is_g1_g4_g5_g7() {
        let (db, q) = paper_db();
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        let got: Vec<usize> = r.skyline.iter().map(|g| g.index()).collect();
        assert_eq!(got, expected::SKYLINE.to_vec());
    }

    #[test]
    fn paper_dominance_witnesses() {
        let (db, q) = paper_db();
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        // Paper: g2 dominated by g7, g3 by g5, g6 by g1.
        for (loser, winner) in expected::DOMINANCE_WITNESSES {
            let w = r
                .witness_for(GraphId(loser))
                .expect("dominated graph has witness");
            // The specific witness the paper names must indeed dominate;
            // our engine may legitimately report another dominator, so check
            // dominance directly.
            let paper_winner = &r.gcs[winner].values;
            let lose = &r.gcs[loser].values;
            assert!(
                gss_skyline::dominates(paper_winner, lose),
                "paper witness g{} ≻ g{}",
                winner + 1,
                loser + 1
            );
            assert!(r.contains(w), "engine witness must be a skyline member");
        }
    }

    #[test]
    fn gcs_matrix_matches_table3() {
        let (db, q) = paper_db();
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        // Column 0: DistEd (Table III, exact integers).
        let ed: Vec<f64> = r.gcs.iter().map(|g| g.values[0]).collect();
        assert_eq!(ed, expected::TABLE3_ED.to_vec());
        // Columns 1–2 derive from Table II mcs sizes.
        for (i, g) in db.graphs().iter().enumerate() {
            let mcs = expected::TABLE2_MCS[i] as f64;
            let dist_mcs = 1.0 - mcs / (g.size().max(q.size()) as f64);
            let dist_gu = 1.0 - mcs / ((g.size() + q.size()) as f64 - mcs);
            assert!(
                (r.gcs[i].values[1] - dist_mcs).abs() < 1e-12,
                "g{} DistMcs",
                i + 1
            );
            assert!(
                (r.gcs[i].values[2] - dist_gu).abs() < 1e-12,
                "g{} DistGu",
                i + 1
            );
        }
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let (db, q) = paper_db();
        let seq = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        let par = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                threads: 4,
                ..QueryOptions::default()
            },
        );
        assert_eq!(seq.skyline, par.skyline);
        assert_eq!(seq.gcs, par.gcs);
    }

    #[test]
    fn all_skyline_algorithms_agree() {
        let (db, q) = paper_db();
        let mut results = Vec::new();
        for algo in [Algorithm::Naive, Algorithm::Bnl, Algorithm::Sfs] {
            let r = graph_similarity_skyline(
                &db,
                &q,
                &QueryOptions {
                    skyline_algorithm: algo,
                    ..QueryOptions::default()
                },
            );
            results.push(r.skyline);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn single_measure_query_degenerates_to_minimum() {
        let (db, q) = paper_db();
        let r = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                measures: vec![MeasureKind::EditDistance],
                ..Default::default()
            },
        );
        // With one dimension, the skyline is the set of minimum-GED graphs:
        // Table III says g4 (DistEd 2) is the unique minimum.
        assert_eq!(r.skyline, vec![GraphId(3)]);
    }

    #[test]
    fn skyband_1_is_the_skyline_and_grows_with_k() {
        let (db, q) = paper_db();
        let opts = QueryOptions::default();
        let sky = graph_similarity_skyline(&db, &q, &opts).skyline;
        let band1 = graph_similarity_skyband(&db, &q, 1, &opts);
        assert_eq!(band1, sky);
        let band2 = graph_similarity_skyband(&db, &q, 2, &opts);
        for id in &band1 {
            assert!(band2.contains(id), "skyband must be monotone in k");
        }
        // On the paper's data: g2 has 2 dominators (g1, g7), g3 has 1 (g5),
        // g6 has 2 (g1, g5?) — verify counts directly instead of guessing.
        let big = graph_similarity_skyband(&db, &q, db.len(), &opts);
        assert_eq!(big.len(), db.len(), "huge k keeps everything");
    }

    #[test]
    fn extended_measure_vector_still_yields_valid_skyline() {
        let (db, q) = paper_db();
        let opts = QueryOptions {
            measures: vec![
                MeasureKind::EditDistance,
                MeasureKind::Mcs,
                MeasureKind::Gu,
                MeasureKind::LabelHistogram,
            ],
            ..Default::default()
        };
        let r = graph_similarity_skyline(&db, &q, &opts);
        // Adding a dimension never invalidates the core invariant:
        for (i, gcs) in r.gcs.iter().enumerate() {
            assert_eq!(gcs.values.len(), 4);
            let dominated = r
                .gcs
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && gss_skyline::dominates(&other.values, &gcs.values));
            assert_eq!(r.contains(GraphId(i)), !dominated);
        }
        // The paper's 3-measure skyline members remain Pareto-optimal here:
        // a dominator in 4 dimensions must tie-or-beat all 3 original ones,
        // and no two GCS vectors tie on all three in this dataset.
        let base = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        for id in &base.skyline {
            assert!(
                r.contains(*id),
                "g{} must survive when a dimension is added",
                id.index() + 1
            );
        }
    }

    #[test]
    fn empty_database_yields_empty_result() {
        let mut db = GraphDatabase::new();
        let q = db.build_query("q", |b| b.vertex("x", "A")).unwrap();
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        assert!(r.skyline.is_empty());
        assert!(r.gcs.is_empty());
        assert!(r.dominated.is_empty());
        let pruned = graph_similarity_skyline(&db, &q, &prefilter_options());
        assert!(pruned.skyline.is_empty());
        assert_eq!(pruned.pruning.expect("stats present").candidates, 0);
    }

    #[test]
    #[should_panic(expected = "at least one measure")]
    fn rejects_empty_measure_list() {
        let mut db = GraphDatabase::new();
        let q = db.build_query("q", |b| b.vertex("x", "A")).unwrap();
        graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                measures: vec![],
                ..Default::default()
            },
        );
    }

    #[test]
    fn pruned_scan_matches_naive_on_paper_data() {
        let (db, q) = paper_db();
        let naive = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        let pruned = graph_similarity_skyline(&db, &q, &prefilter_options());
        assert_eq!(pruned.skyline, naive.skyline);
        assert_eq!(pruned.dominated, naive.dominated);
        let stats = pruned.pruning.expect("prefilter stats");
        assert_eq!(stats.candidates, db.len());
        assert_eq!(
            stats.verified + stats.pruned + stats.short_circuited,
            db.len()
        );
        // Every verified vector is byte-identical to the naive one.
        for i in 0..db.len() {
            if pruned.is_exact(GraphId(i)) {
                assert_eq!(pruned.gcs[i], naive.gcs[i], "g{}", i + 1);
            } else {
                // A pruned graph's lower bound never exceeds the exact value.
                for (lb, ex) in pruned.gcs[i].values.iter().zip(&naive.gcs[i].values) {
                    assert!(lb <= &(ex + 1e-12));
                }
            }
        }
        // Naive results report every vector as exact, no stats.
        assert!(naive.evaluated.iter().all(|&e| e));
        assert!(naive.pruning.is_none());
    }

    #[test]
    fn pruned_scan_is_thread_count_invariant() {
        let (db, q) = paper_db();
        let seq = graph_similarity_skyline(&db, &q, &prefilter_options());
        let par = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                threads: 4,
                prefilter: true,
                ..QueryOptions::default()
            },
        );
        assert_eq!(seq.skyline, par.skyline);
        assert_eq!(seq.dominated, par.dominated);
    }

    #[test]
    fn identical_graph_short_circuits() {
        let (mut db, q) = paper_db();
        let copy = db.push(q.clone());
        let r = graph_similarity_skyline(&db, &q, &prefilter_options());
        assert!(r.contains(copy));
        assert_eq!(r.gcs[copy.index()].values, vec![0.0, 0.0, 0.0]);
        let stats = r.pruning.expect("stats");
        assert!(
            stats.short_circuited >= 1,
            "the planted copy must short-circuit"
        );
        // An all-zero frontier member prunes everything it strictly
        // dominates; only ties (other zero vectors) still verify.
        let naive = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        assert_eq!(r.skyline, naive.skyline);
        assert_eq!(r.dominated, naive.dominated);
        assert!(stats.pruned > 0, "a perfect match should prune the rest");
    }

    #[test]
    fn batch_matches_individual_queries() {
        let (db, q) = paper_db();
        let queries: Vec<Graph> = vec![
            q.clone(),
            db.get(GraphId(1)).clone(),
            db.get(GraphId(6)).clone(),
        ];
        for prefilter in [false, true] {
            let opts = QueryOptions {
                prefilter,
                threads: 3,
                ..QueryOptions::default()
            };
            let batch = graph_similarity_skyline_batch(&db, &queries, &opts);
            assert_eq!(batch.len(), queries.len());
            let single_opts = QueryOptions {
                prefilter,
                ..QueryOptions::default()
            };
            for (i, query) in queries.iter().enumerate() {
                let single = graph_similarity_skyline(&db, query, &single_opts);
                assert_eq!(batch[i].skyline, single.skyline, "query {i}");
                assert_eq!(batch[i].dominated, single.dominated, "query {i}");
            }
        }
    }

    #[test]
    fn prefilter_works_with_approximate_solvers() {
        use crate::measures::{GedMode, McsMode};
        let (db, q) = paper_db();
        let solvers = SolverConfig {
            ged: GedMode::Bipartite,
            mcs: McsMode::Greedy,
        };
        let naive = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                solvers,
                ..QueryOptions::default()
            },
        );
        let pruned = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                solvers,
                prefilter: true,
                ..QueryOptions::default()
            },
        );
        assert_eq!(pruned.skyline, naive.skyline);
        assert_eq!(pruned.dominated, naive.dominated);
    }
}
