//! The graph similarity skyline query engine (Section V of the paper).
//!
//! Given a database `D`, a query graph `q` and `d` local distance measures,
//! the engine computes the compound similarity vector `GCS(g, q)` for every
//! `g ∈ D` and returns the graphs that are **not similarity-dominated**
//! (Definition 12 / Equation 4) — together with, for every excluded graph, a
//! witness dominator (the explanations the paper walks through in
//! Section VI: "g2 is dominated by g7", …).
//!
//! # Plans and the staged executor
//!
//! Every entry point here — [`graph_similarity_skyline`], the batch API and
//! [`graph_similarity_skyband`] — is a thin wrapper over the staged
//! executor in [`crate::exec`]: candidate source → per-candidate bound
//! stage → dominance-driven verifier → assembly. Which source and bound
//! stage run is chosen by [`QueryOptions::plan`]:
//!
//! * [`Plan::Naive`] — exact solvers for every candidate;
//! * [`Plan::Prefilter`] — the filter-and-verify pipeline: cheap
//!   [`crate::prefilter`] lower bounds are computed for every candidate,
//!   candidates are verified most-promising-first, and a candidate whose
//!   lower-bound vector is already similarity-dominated by a *verified*
//!   exact vector is **pruned** (its exact vector cannot make the skyline,
//!   because lower bounds only move up: `exact ≥ lower` per dimension, so
//!   `dominates(e, lower)` implies `dominates(e, exact)`);
//! * [`Plan::Indexed`] — a [`crate::QueryIndex`] partitions the database
//!   first and dominated partitions are skipped wholesale;
//! * [`Plan::Auto`] (default) — resolves to one of the above from the
//!   database size and index availability ([`crate::exec::resolve_plan`]).
//!
//! All plans return the **identical** skyline and witness list — only
//! [`GssResult::evaluated`] and [`GssResult::pruning`] reveal that less
//! work was done. To keep witnesses identical in every plan, the witness
//! for an excluded graph is defined as the first skyline member (ascending
//! id) whose exact vector dominates the graph's *lower-bound* vector,
//! falling back to its exact vector; for a pruned graph the first rule
//! always fires (its pruner, or a skyline member dominating the pruner,
//! dominates the lower bound transitively).
//!
//! The legacy [`QueryOptions::prefilter`] / [`QueryOptions::index`] fields
//! keep working: under `Plan::Auto` they steer resolution exactly as
//! before. The `try_`-prefixed variants additionally accept a
//! [`CancelToken`] and abort mid-scan at wave boundaries.

use std::sync::Arc;

use gss_graph::Graph;
use gss_skyline::Algorithm;

use crate::database::{GraphDatabase, GraphId};
use crate::exec::{self, CancelToken, Cancelled, Plan, ResolvedPlan, SkybandResult};
use crate::index::QueryIndex;
use crate::measures::{GcsVector, MeasureKind, SolverConfig};
use crate::prefilter::PruneStats;

/// Options for [`graph_similarity_skyline`].
#[derive(Clone, Debug)]
pub struct QueryOptions {
    /// The local distance measures forming the GCS vector, in order.
    /// Default: the paper's `(DistEd, DistMcs, DistGu)`.
    pub measures: Vec<MeasureKind>,
    /// Which skyline algorithm filters the GCS matrix.
    pub skyline_algorithm: Algorithm,
    /// Exact/approximate solver selection for the primitives.
    pub solvers: SolverConfig,
    /// Worker threads for the per-graph GCS scan (1 = sequential).
    // gss-lint: exempt(QueryOptions::threads) — thread count never changes the result bytes: the server normalizes every evaluation to wave-parallel batches with per-query threads=1 (PR 3), and the wave schedule is deterministic
    pub threads: usize,
    /// Static candidate partitions for [`Plan::Sharded`]: the database is
    /// split into this many contiguous ranges, each verified by its own
    /// sequential filter-and-verify pipeline, and the per-shard frontiers
    /// are merged into one skyline (see [`crate::exec`]). Ignored by every
    /// other plan; values `<= 1` run the sharded pipeline as one shard.
    // gss-lint: exempt(QueryOptions::shards) — the shard count never changes the result bytes: the sharded assembly reports exactly the skyline ∪ straggler set with derived pruning counters, which is invariant in how the candidate space was partitioned (PR 7)
    pub shards: usize,
    /// The evaluation strategy (see [`crate::exec`]). `Plan::Auto` (the
    /// default) picks from the database size, this option set and index
    /// availability; the explicit plans force one strategy. Every plan
    /// returns identical answers.
    pub plan: Plan,
    /// Under [`Plan::Auto`], requests the filter-and-verify pruned scan:
    /// candidates whose lower-bound GCS vector is dominated by a verified
    /// exact vector skip the exact solvers. The skyline, witnesses and
    /// skyband memberships are identical to the naive scan. An explicit
    /// [`QueryOptions::plan`] overrides this flag.
    pub prefilter: bool,
    /// Optional database index (e.g. `gss-index`'s pivot index) consulted
    /// *before* the per-candidate prefilter: whole partitions whose bound
    /// vector is dominated by a verified exact vector are skipped without
    /// touching their members. Under [`Plan::Auto`] an attached index
    /// selects the indexed strategy (which runs the per-candidate
    /// prefilter inside surviving partitions); [`Plan::Indexed`] requires
    /// it. Results stay identical to the naive scan.
    pub index: Option<Arc<dyn QueryIndex>>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            measures: MeasureKind::paper_query_measures(),
            skyline_algorithm: Algorithm::default(),
            solvers: SolverConfig::default(),
            threads: 1,
            shards: 1,
            plan: Plan::Auto,
            prefilter: false,
            index: None,
        }
    }
}

impl QueryOptions {
    /// Returns the options with the given index attached (under
    /// `Plan::Auto` the indexed strategy — including the per-candidate
    /// prefilter for surviving partitions — is then selected).
    pub fn with_index(self, index: Arc<dyn QueryIndex>) -> Self {
        QueryOptions {
            index: Some(index),
            ..self
        }
    }

    /// Returns the options with an explicit evaluation plan.
    pub fn with_plan(self, plan: Plan) -> Self {
        QueryOptions { plan, ..self }
    }

    /// Returns the options with the given shard count and
    /// [`Plan::Sharded`] selected.
    pub fn with_shards(self, shards: usize) -> Self {
        QueryOptions {
            shards,
            plan: Plan::Sharded,
            ..self
        }
    }
}

/// Why a graph is not in the skyline.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DominationWitness {
    /// The excluded graph.
    pub graph: GraphId,
    /// A database graph whose GCS vector similarity-dominates it.
    pub dominator: GraphId,
}

/// The result of a graph similarity skyline query.
#[derive(Clone, Debug)]
pub struct GssResult {
    /// The measures used, in GCS-vector order.
    pub measures: Vec<MeasureKind>,
    /// The strategy the query actually ran under (an `Auto` request
    /// resolves to one of the concrete plans).
    pub plan: ResolvedPlan,
    /// Per-graph vectors in database order: the exact `GCS(gi, q)` for
    /// verified graphs, the prefilter *lower-bound* vector for pruned ones
    /// (see [`GssResult::evaluated`]). Without pruning every entry is exact.
    pub gcs: Vec<GcsVector>,
    /// `evaluated[i]` is true when `gcs[i]` is the exact vector (computed by
    /// the solvers or proven all-zero by the isomorphism short-circuit).
    pub evaluated: Vec<bool>,
    /// Ids of the Pareto-optimal graphs (`GSS(D, q)`), ascending.
    pub skyline: Vec<GraphId>,
    /// One witness per excluded graph (ascending by excluded id).
    pub dominated: Vec<DominationWitness>,
    /// Pruning counters when the filter-and-verify pipeline ran, `None` for
    /// the naive scan.
    pub pruning: Option<PruneStats>,
}

impl GssResult {
    /// True when `id` made the skyline.
    pub fn contains(&self, id: GraphId) -> bool {
        self.skyline.binary_search(&id).is_ok()
    }

    /// The witness dominator for an excluded graph, if any.
    pub fn witness_for(&self, id: GraphId) -> Option<GraphId> {
        self.dominated
            .iter()
            .find(|w| w.graph == id)
            .map(|w| w.dominator)
    }

    /// True when `gcs[id]` holds the exact GCS vector (always true for
    /// skyline members; false only for graphs pruned by the prefilter).
    pub fn is_exact(&self, id: GraphId) -> bool {
        self.evaluated[id.index()]
    }
}

/// Computes `GSS(D, q)` (Equation 4 of the paper) through the staged
/// executor under [`QueryOptions::plan`].
pub fn graph_similarity_skyline(
    db: &GraphDatabase,
    query: &Graph,
    options: &QueryOptions,
) -> GssResult {
    exec::skyline(db, query, options, &CancelToken::new()).expect("a fresh CancelToken never fires")
}

/// [`graph_similarity_skyline`] with cooperative cancellation: returns
/// [`Cancelled`] as soon as a wave checkpoint observes the fired token,
/// abandoning the rest of the scan.
pub fn try_graph_similarity_skyline(
    db: &GraphDatabase,
    query: &Graph,
    options: &QueryOptions,
    cancel: &CancelToken,
) -> Result<GssResult, Cancelled> {
    exec::skyline(db, query, options, cancel)
}

/// Aggregated observability counters for a batch of query results — the
/// batch-level view of [`PruneStats`]. Totals are summed over every result;
/// results from naive scans (no [`GssResult::pruning`]) count each
/// candidate as one exact solver call, which is exactly what the naive
/// scan performs.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Number of query results aggregated.
    pub queries: usize,
    /// Total candidates considered (database size summed over queries).
    pub candidates: usize,
    /// Total candidates whose exact GCS vector is known (solver-verified or
    /// short-circuited) — the per-result `evaluated` counts summed.
    pub evaluated: usize,
    /// Total exact solver calls (candidates that ran the GED/MCS solvers).
    pub verified: usize,
    /// Total candidates pruned by lower-bound dominance.
    pub pruned: usize,
    /// Total candidates resolved by the isomorphism short-circuit.
    pub short_circuited: usize,
    /// Total candidates skipped wholesale by a metric index.
    pub index_skipped: usize,
}

impl BatchStats {
    /// Sums the counters of every result in the batch.
    pub fn aggregate(results: &[GssResult]) -> BatchStats {
        let mut total = BatchStats::default();
        for r in results {
            total.absorb(r);
        }
        total
    }

    /// Adds one result's counters to the running totals.
    pub fn absorb(&mut self, result: &GssResult) {
        self.queries += 1;
        self.candidates += result.gcs.len();
        self.evaluated += result.evaluated.iter().filter(|&&e| e).count();
        match &result.pruning {
            Some(p) => {
                self.verified += p.verified;
                self.pruned += p.pruned;
                self.short_circuited += p.short_circuited;
                self.index_skipped += p.index_skipped;
            }
            // A naive scan runs the exact solvers for every candidate.
            None => self.verified += result.gcs.len(),
        }
    }

    /// Merges another aggregate into this one (for long-lived accumulators
    /// like the `gss-server` stats counters).
    pub fn merge(&mut self, other: &BatchStats) {
        self.queries += other.queries;
        self.candidates += other.candidates;
        self.evaluated += other.evaluated;
        self.verified += other.verified;
        self.pruned += other.pruned;
        self.short_circuited += other.short_circuited;
        self.index_skipped += other.index_skipped;
    }

    /// Fraction of candidates that skipped exact solving, in `[0, 1]`.
    pub fn pruning_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            (self.pruned + self.short_circuited + self.index_skipped) as f64
                / self.candidates as f64
        }
    }
}

/// Runs one skyline query per input over a shared database, spreading the
/// queries across [`QueryOptions::threads`] workers (each query then scans
/// sequentially — for multi-query workloads, cross-query parallelism beats
/// nested per-candidate parallelism because it needs no synchronization).
///
/// Results are in query order and identical to calling
/// [`graph_similarity_skyline`] per query with `threads = 1`. Aggregate the
/// per-query [`GssResult::pruning`] counters with [`BatchStats::aggregate`].
pub fn graph_similarity_skyline_batch(
    db: &GraphDatabase,
    queries: &[Graph],
    options: &QueryOptions,
) -> Vec<GssResult> {
    let cancels = vec![CancelToken::new(); queries.len()];
    exec::skyline_batch(db, queries, options, &cancels)
        .into_iter()
        .map(|r| r.expect("a fresh CancelToken never fires"))
        .collect()
}

/// [`graph_similarity_skyline_batch`] with one [`CancelToken`] per query
/// (`cancels.len()` must equal `queries.len()`): queries abort
/// independently, so one expired deadline never takes down its batch
/// neighbours.
pub fn try_graph_similarity_skyline_batch(
    db: &GraphDatabase,
    queries: &[Graph],
    options: &QueryOptions,
    cancels: &[CancelToken],
) -> Vec<Result<GssResult, Cancelled>> {
    exec::skyline_batch(db, queries, options, cancels)
}

/// **Extension** (related work \[20\] of the paper): the *k-skyband* of a
/// similarity query — every database graph similarity-dominated by fewer
/// than `k` others. `k = 1` is exactly the [`graph_similarity_skyline`]
/// member set; larger `k` relaxes the answer set gracefully (useful when
/// the strict skyline is too small), while staying order-consistent: the
/// skyband is monotone in `k` and always contains the skyline.
///
/// Runs through the same staged executor as the skyline: under the pruned
/// plans the frontier tracks **dominance counts** against lower bounds — a
/// candidate whose lower-bound vector is dominated by `k` verified exact
/// vectors is excluded without ever running the solvers
/// ([`SkybandResult::pruning`] reports how many were). Membership is
/// byte-identical across plans.
pub fn graph_similarity_skyband(
    db: &GraphDatabase,
    query: &Graph,
    k: usize,
    options: &QueryOptions,
) -> SkybandResult {
    exec::skyband(db, query, k, options, &CancelToken::new())
        .expect("a fresh CancelToken never fires")
}

/// [`graph_similarity_skyband`] with cooperative cancellation.
pub fn try_graph_similarity_skyband(
    db: &GraphDatabase,
    query: &Graph,
    k: usize,
    options: &QueryOptions,
    cancel: &CancelToken,
) -> Result<SkybandResult, Cancelled> {
    exec::skyband(db, query, k, options, cancel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_datasets::paper::{expected, figure3_database};

    fn paper_db() -> (GraphDatabase, Graph) {
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        (db, data.query)
    }

    fn prefilter_options() -> QueryOptions {
        QueryOptions {
            prefilter: true,
            ..QueryOptions::default()
        }
    }

    #[test]
    fn paper_skyline_is_g1_g4_g5_g7() {
        let (db, q) = paper_db();
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        let got: Vec<usize> = r.skyline.iter().map(|g| g.index()).collect();
        assert_eq!(got, expected::SKYLINE.to_vec());
    }

    #[test]
    fn paper_dominance_witnesses() {
        let (db, q) = paper_db();
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        // Paper: g2 dominated by g7, g3 by g5, g6 by g1.
        for (loser, winner) in expected::DOMINANCE_WITNESSES {
            let w = r
                .witness_for(GraphId(loser))
                .expect("dominated graph has witness");
            // The specific witness the paper names must indeed dominate;
            // our engine may legitimately report another dominator, so check
            // dominance directly.
            let paper_winner = &r.gcs[winner].values;
            let lose = &r.gcs[loser].values;
            assert!(
                gss_skyline::dominates(paper_winner, lose),
                "paper witness g{} ≻ g{}",
                winner + 1,
                loser + 1
            );
            assert!(r.contains(w), "engine witness must be a skyline member");
        }
    }

    #[test]
    fn gcs_matrix_matches_table3() {
        let (db, q) = paper_db();
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        // Column 0: DistEd (Table III, exact integers).
        let ed: Vec<f64> = r.gcs.iter().map(|g| g.values[0]).collect();
        assert_eq!(ed, expected::TABLE3_ED.to_vec());
        // Columns 1–2 derive from Table II mcs sizes.
        for (i, (_, g)) in db.iter().enumerate() {
            let mcs = expected::TABLE2_MCS[i] as f64;
            let dist_mcs = 1.0 - mcs / (g.size().max(q.size()) as f64);
            let dist_gu = 1.0 - mcs / ((g.size() + q.size()) as f64 - mcs);
            assert!(
                (r.gcs[i].values[1] - dist_mcs).abs() < 1e-12,
                "g{} DistMcs",
                i + 1
            );
            assert!(
                (r.gcs[i].values[2] - dist_gu).abs() < 1e-12,
                "g{} DistGu",
                i + 1
            );
        }
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let (db, q) = paper_db();
        let seq = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        let par = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                threads: 4,
                ..QueryOptions::default()
            },
        );
        assert_eq!(seq.skyline, par.skyline);
        assert_eq!(seq.gcs, par.gcs);
    }

    #[test]
    fn all_skyline_algorithms_agree() {
        let (db, q) = paper_db();
        let mut results = Vec::new();
        for algo in [Algorithm::Naive, Algorithm::Bnl, Algorithm::Sfs] {
            let r = graph_similarity_skyline(
                &db,
                &q,
                &QueryOptions {
                    skyline_algorithm: algo,
                    ..QueryOptions::default()
                },
            );
            results.push(r.skyline);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn single_measure_query_degenerates_to_minimum() {
        let (db, q) = paper_db();
        let r = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                measures: vec![MeasureKind::EditDistance],
                ..Default::default()
            },
        );
        // With one dimension, the skyline is the set of minimum-GED graphs:
        // Table III says g4 (DistEd 2) is the unique minimum.
        assert_eq!(r.skyline, vec![GraphId(3)]);
    }

    #[test]
    fn skyband_1_is_the_skyline_and_grows_with_k() {
        let (db, q) = paper_db();
        let opts = QueryOptions::default();
        let sky = graph_similarity_skyline(&db, &q, &opts).skyline;
        let band1 = graph_similarity_skyband(&db, &q, 1, &opts);
        assert_eq!(band1.members, sky);
        assert!(band1.contains(sky[0]));
        let band2 = graph_similarity_skyband(&db, &q, 2, &opts);
        for id in &band1.members {
            assert!(band2.members.contains(id), "skyband must be monotone in k");
        }
        // On the paper's data: g2 has 2 dominators (g1, g7), g3 has 1 (g5),
        // g6 has 2 (g1, g5?) — verify counts directly instead of guessing.
        let big = graph_similarity_skyband(&db, &q, db.len(), &opts);
        assert_eq!(big.members.len(), db.len(), "huge k keeps everything");
    }

    #[test]
    fn pruned_skyband_matches_naive_across_plans_and_k() {
        let (db, q) = paper_db();
        for k in 0..=3 {
            let naive = graph_similarity_skyband(
                &db,
                &q,
                k,
                &QueryOptions {
                    plan: Plan::Naive,
                    ..QueryOptions::default()
                },
            );
            assert!(naive.pruning.is_none());
            let pruned = graph_similarity_skyband(&db, &q, k, &prefilter_options());
            assert_eq!(pruned.members, naive.members, "k={k}");
            let stats = pruned.pruning.expect("prefilter skyband stats");
            assert_eq!(
                stats.verified + stats.pruned + stats.short_circuited,
                db.len(),
                "k={k}"
            );
            if k == 0 {
                assert!(pruned.members.is_empty());
            }
        }
        // With k = 1 the pruned skyband actually prunes on this dataset
        // (the skyline pipeline does, and the band frontier is at least as
        // strong there).
        let band1 = graph_similarity_skyband(&db, &q, 1, &prefilter_options());
        assert!(band1.pruning.expect("stats").pruned > 0);
    }

    #[test]
    fn extended_measure_vector_still_yields_valid_skyline() {
        let (db, q) = paper_db();
        let opts = QueryOptions {
            measures: vec![
                MeasureKind::EditDistance,
                MeasureKind::Mcs,
                MeasureKind::Gu,
                MeasureKind::LabelHistogram,
            ],
            ..Default::default()
        };
        let r = graph_similarity_skyline(&db, &q, &opts);
        // Adding a dimension never invalidates the core invariant:
        for (i, gcs) in r.gcs.iter().enumerate() {
            assert_eq!(gcs.values.len(), 4);
            let dominated = r
                .gcs
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && gss_skyline::dominates(&other.values, &gcs.values));
            assert_eq!(r.contains(GraphId(i)), !dominated);
        }
        // The paper's 3-measure skyline members remain Pareto-optimal here:
        // a dominator in 4 dimensions must tie-or-beat all 3 original ones,
        // and no two GCS vectors tie on all three in this dataset.
        let base = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        for id in &base.skyline {
            assert!(
                r.contains(*id),
                "g{} must survive when a dimension is added",
                id.index() + 1
            );
        }
    }

    #[test]
    fn empty_database_yields_empty_result() {
        let mut db = GraphDatabase::new();
        let q = db.build_query("q", |b| b.vertex("x", "A")).unwrap();
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        assert!(r.skyline.is_empty());
        assert!(r.gcs.is_empty());
        assert!(r.dominated.is_empty());
        let pruned = graph_similarity_skyline(&db, &q, &prefilter_options());
        assert!(pruned.skyline.is_empty());
        assert_eq!(pruned.pruning.expect("stats present").candidates, 0);
    }

    #[test]
    #[should_panic(expected = "at least one measure")]
    fn rejects_empty_measure_list() {
        let mut db = GraphDatabase::new();
        let q = db.build_query("q", |b| b.vertex("x", "A")).unwrap();
        graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                measures: vec![],
                ..Default::default()
            },
        );
    }

    #[test]
    fn pruned_scan_matches_naive_on_paper_data() {
        let (db, q) = paper_db();
        let naive = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        let pruned = graph_similarity_skyline(&db, &q, &prefilter_options());
        assert_eq!(pruned.skyline, naive.skyline);
        assert_eq!(pruned.dominated, naive.dominated);
        assert_eq!(naive.plan, ResolvedPlan::Naive);
        assert_eq!(pruned.plan, ResolvedPlan::Prefilter);
        let stats = pruned.pruning.expect("prefilter stats");
        assert_eq!(stats.candidates, db.len());
        assert_eq!(
            stats.verified + stats.pruned + stats.short_circuited,
            db.len()
        );
        // Every verified vector is byte-identical to the naive one.
        for i in 0..db.len() {
            if pruned.is_exact(GraphId(i)) {
                assert_eq!(pruned.gcs[i], naive.gcs[i], "g{}", i + 1);
            } else {
                // A pruned graph's lower bound never exceeds the exact value.
                for (lb, ex) in pruned.gcs[i].values.iter().zip(&naive.gcs[i].values) {
                    assert!(lb <= &(ex + 1e-12));
                }
            }
        }
        // Naive results report every vector as exact, no stats.
        assert!(naive.evaluated.iter().all(|&e| e));
        assert!(naive.pruning.is_none());
    }

    #[test]
    fn pruned_scan_is_thread_count_invariant() {
        let (db, q) = paper_db();
        let seq = graph_similarity_skyline(&db, &q, &prefilter_options());
        let par = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                threads: 4,
                prefilter: true,
                ..QueryOptions::default()
            },
        );
        assert_eq!(seq.skyline, par.skyline);
        assert_eq!(seq.dominated, par.dominated);
    }

    #[test]
    fn identical_graph_short_circuits() {
        let (mut db, q) = paper_db();
        let copy = db.push(q.clone());
        let r = graph_similarity_skyline(&db, &q, &prefilter_options());
        assert!(r.contains(copy));
        assert_eq!(r.gcs[copy.index()].values, vec![0.0, 0.0, 0.0]);
        let stats = r.pruning.expect("stats");
        assert!(
            stats.short_circuited >= 1,
            "the planted copy must short-circuit"
        );
        // An all-zero frontier member prunes everything it strictly
        // dominates; only ties (other zero vectors) still verify.
        let naive = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                plan: Plan::Naive,
                ..QueryOptions::default()
            },
        );
        assert_eq!(r.skyline, naive.skyline);
        assert_eq!(r.dominated, naive.dominated);
        assert!(stats.pruned > 0, "a perfect match should prune the rest");
    }

    #[test]
    fn batch_matches_individual_queries() {
        let (db, q) = paper_db();
        let queries: Vec<Graph> = vec![
            q.clone(),
            db.get(GraphId(1)).clone(),
            db.get(GraphId(6)).clone(),
        ];
        for prefilter in [false, true] {
            let opts = QueryOptions {
                prefilter,
                threads: 3,
                ..QueryOptions::default()
            };
            let batch = graph_similarity_skyline_batch(&db, &queries, &opts);
            assert_eq!(batch.len(), queries.len());
            let single_opts = QueryOptions {
                prefilter,
                ..QueryOptions::default()
            };
            for (i, query) in queries.iter().enumerate() {
                let single = graph_similarity_skyline(&db, query, &single_opts);
                assert_eq!(batch[i].skyline, single.skyline, "query {i}");
                assert_eq!(batch[i].dominated, single.dominated, "query {i}");
            }
        }
    }

    #[test]
    fn prefilter_works_with_approximate_solvers() {
        use crate::measures::{GedMode, McsMode};
        let (db, q) = paper_db();
        let solvers = SolverConfig {
            ged: GedMode::Bipartite,
            mcs: McsMode::Greedy,
        };
        let naive = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                solvers,
                ..QueryOptions::default()
            },
        );
        let pruned = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                solvers,
                prefilter: true,
                ..QueryOptions::default()
            },
        );
        assert_eq!(pruned.skyline, naive.skyline);
        assert_eq!(pruned.dominated, naive.dominated);
    }
}
