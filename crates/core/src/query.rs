//! The graph similarity skyline query engine (Section V of the paper).
//!
//! Given a database `D`, a query graph `q` and `d` local distance measures,
//! the engine computes the compound similarity vector `GCS(g, q)` for every
//! `g ∈ D` and returns the graphs that are **not similarity-dominated**
//! (Definition 12 / Equation 4) — together with, for every excluded graph, a
//! witness dominator (the explanations the paper walks through in
//! Section VI: "g2 is dominated by g7", …).

use gss_graph::Graph;
use gss_skyline::{dominance, Algorithm};

use crate::database::{GraphDatabase, GraphId};
use crate::measures::{GcsVector, MeasureKind, SolverConfig};
use crate::parallel::parallel_map_indexed;

/// Options for [`graph_similarity_skyline`].
#[derive(Clone, Debug)]
pub struct QueryOptions {
    /// The local distance measures forming the GCS vector, in order.
    /// Default: the paper's `(DistEd, DistMcs, DistGu)`.
    pub measures: Vec<MeasureKind>,
    /// Which skyline algorithm filters the GCS matrix.
    pub skyline_algorithm: Algorithm,
    /// Exact/approximate solver selection for the primitives.
    pub solvers: SolverConfig,
    /// Worker threads for the per-graph GCS scan (1 = sequential).
    pub threads: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            measures: MeasureKind::paper_query_measures(),
            skyline_algorithm: Algorithm::default(),
            solvers: SolverConfig::default(),
            threads: 1,
        }
    }
}

/// Why a graph is not in the skyline.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DominationWitness {
    /// The excluded graph.
    pub graph: GraphId,
    /// A database graph whose GCS vector similarity-dominates it.
    pub dominator: GraphId,
}

/// The result of a graph similarity skyline query.
#[derive(Clone, Debug)]
pub struct GssResult {
    /// The measures used, in GCS-vector order.
    pub measures: Vec<MeasureKind>,
    /// `GCS(gi, q)` for every database graph, in database order.
    pub gcs: Vec<GcsVector>,
    /// Ids of the Pareto-optimal graphs (`GSS(D, q)`), ascending.
    pub skyline: Vec<GraphId>,
    /// One witness per excluded graph (ascending by excluded id).
    pub dominated: Vec<DominationWitness>,
}

impl GssResult {
    /// True when `id` made the skyline.
    pub fn contains(&self, id: GraphId) -> bool {
        self.skyline.binary_search(&id).is_ok()
    }

    /// The witness dominator for an excluded graph, if any.
    pub fn witness_for(&self, id: GraphId) -> Option<GraphId> {
        self.dominated
            .iter()
            .find(|w| w.graph == id)
            .map(|w| w.dominator)
    }
}

/// Computes `GSS(D, q)` (Equation 4 of the paper).
pub fn graph_similarity_skyline(
    db: &GraphDatabase,
    query: &Graph,
    options: &QueryOptions,
) -> GssResult {
    assert!(!options.measures.is_empty(), "at least one measure is required");
    // 1. GCS scan — the expensive part; parallel over database graphs.
    let gcs: Vec<GcsVector> = parallel_map_indexed(db.len(), options.threads, |i| {
        GcsVector::compute(db.get(GraphId(i)), query, &options.measures, &options.solvers)
    });

    // 2. Skyline over the GCS matrix.
    let points: Vec<Vec<f64>> = gcs.iter().map(|g| g.values.clone()).collect();
    let skyline: Vec<GraphId> = gss_skyline::skyline(&points, options.skyline_algorithm)
        .into_iter()
        .map(GraphId)
        .collect();

    // 3. Witnesses for the excluded graphs. Prefer a *skyline* dominator
    //    (one always exists: dominance is a strict partial order, so
    //    following dominators from any dominated point reaches a maximal,
    //    i.e. skyline, point).
    let mut dominated = Vec::new();
    for i in 0..db.len() {
        let id = GraphId(i);
        if skyline.binary_search(&id).is_ok() {
            continue;
        }
        let dominator = skyline
            .iter()
            .copied()
            .find(|s| dominance::dominates(&points[s.index()], &points[i]))
            .expect("every excluded point has a skyline dominator");
        dominated.push(DominationWitness { graph: id, dominator });
    }

    GssResult { measures: options.measures.clone(), gcs, skyline, dominated }
}

/// **Extension** (related work \[20\] of the paper): the *k-skyband* of a
/// similarity query — every database graph similarity-dominated by fewer
/// than `k` others. `k = 1` is exactly [`graph_similarity_skyline`]; larger
/// `k` relaxes the answer set gracefully (useful when the strict skyline is
/// too small), while staying order-consistent: the skyband is monotone in
/// `k` and always contains the skyline.
pub fn graph_similarity_skyband(
    db: &GraphDatabase,
    query: &Graph,
    k: usize,
    options: &QueryOptions,
) -> Vec<GraphId> {
    assert!(!options.measures.is_empty(), "at least one measure is required");
    let gcs: Vec<GcsVector> = parallel_map_indexed(db.len(), options.threads, |i| {
        GcsVector::compute(db.get(GraphId(i)), query, &options.measures, &options.solvers)
    });
    let points: Vec<Vec<f64>> = gcs.into_iter().map(|g| g.values).collect();
    gss_skyline::k_skyband(&points, k).into_iter().map(GraphId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_datasets::paper::{expected, figure3_database};

    fn paper_db() -> (GraphDatabase, Graph) {
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        (db, data.query)
    }

    #[test]
    fn paper_skyline_is_g1_g4_g5_g7() {
        let (db, q) = paper_db();
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        let got: Vec<usize> = r.skyline.iter().map(|g| g.index()).collect();
        assert_eq!(got, expected::SKYLINE.to_vec());
    }

    #[test]
    fn paper_dominance_witnesses() {
        let (db, q) = paper_db();
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        // Paper: g2 dominated by g7, g3 by g5, g6 by g1.
        for (loser, winner) in expected::DOMINANCE_WITNESSES {
            let w = r.witness_for(GraphId(loser)).expect("dominated graph has witness");
            // The specific witness the paper names must indeed dominate;
            // our engine may legitimately report another dominator, so check
            // dominance directly.
            let paper_winner = &r.gcs[winner].values;
            let lose = &r.gcs[loser].values;
            assert!(gss_skyline::dominates(paper_winner, lose), "paper witness g{} ≻ g{}", winner + 1, loser + 1);
            assert!(r.contains(w), "engine witness must be a skyline member");
        }
    }

    #[test]
    fn gcs_matrix_matches_table3() {
        let (db, q) = paper_db();
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        // Column 0: DistEd (Table III, exact integers).
        let ed: Vec<f64> = r.gcs.iter().map(|g| g.values[0]).collect();
        assert_eq!(ed, expected::TABLE3_ED.to_vec());
        // Columns 1–2 derive from Table II mcs sizes.
        for (i, g) in db.graphs().iter().enumerate() {
            let mcs = expected::TABLE2_MCS[i] as f64;
            let dist_mcs = 1.0 - mcs / (g.size().max(q.size()) as f64);
            let dist_gu = 1.0 - mcs / ((g.size() + q.size()) as f64 - mcs);
            assert!((r.gcs[i].values[1] - dist_mcs).abs() < 1e-12, "g{} DistMcs", i + 1);
            assert!((r.gcs[i].values[2] - dist_gu).abs() < 1e-12, "g{} DistGu", i + 1);
        }
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let (db, q) = paper_db();
        let seq = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        let par = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions { threads: 4, ..QueryOptions::default() },
        );
        assert_eq!(seq.skyline, par.skyline);
        assert_eq!(seq.gcs, par.gcs);
    }

    #[test]
    fn all_skyline_algorithms_agree() {
        let (db, q) = paper_db();
        let mut results = Vec::new();
        for algo in [Algorithm::Naive, Algorithm::Bnl, Algorithm::Sfs] {
            let r = graph_similarity_skyline(
                &db,
                &q,
                &QueryOptions { skyline_algorithm: algo, ..QueryOptions::default() },
            );
            results.push(r.skyline);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn single_measure_query_degenerates_to_minimum() {
        let (db, q) = paper_db();
        let r = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions { measures: vec![MeasureKind::EditDistance], ..Default::default() },
        );
        // With one dimension, the skyline is the set of minimum-GED graphs:
        // Table III says g4 (DistEd 2) is the unique minimum.
        assert_eq!(r.skyline, vec![GraphId(3)]);
    }

    #[test]
    fn skyband_1_is_the_skyline_and_grows_with_k() {
        let (db, q) = paper_db();
        let opts = QueryOptions::default();
        let sky = graph_similarity_skyline(&db, &q, &opts).skyline;
        let band1 = graph_similarity_skyband(&db, &q, 1, &opts);
        assert_eq!(band1, sky);
        let band2 = graph_similarity_skyband(&db, &q, 2, &opts);
        for id in &band1 {
            assert!(band2.contains(id), "skyband must be monotone in k");
        }
        // On the paper's data: g2 has 2 dominators (g1, g7), g3 has 1 (g5),
        // g6 has 2 (g1, g5?) — verify counts directly instead of guessing.
        let big = graph_similarity_skyband(&db, &q, db.len(), &opts);
        assert_eq!(big.len(), db.len(), "huge k keeps everything");
    }

    #[test]
    fn extended_measure_vector_still_yields_valid_skyline() {
        let (db, q) = paper_db();
        let opts = QueryOptions {
            measures: vec![
                MeasureKind::EditDistance,
                MeasureKind::Mcs,
                MeasureKind::Gu,
                MeasureKind::LabelHistogram,
            ],
            ..Default::default()
        };
        let r = graph_similarity_skyline(&db, &q, &opts);
        // Adding a dimension never invalidates the core invariant:
        for (i, gcs) in r.gcs.iter().enumerate() {
            assert_eq!(gcs.values.len(), 4);
            let dominated = r
                .gcs
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && gss_skyline::dominates(&other.values, &gcs.values));
            assert_eq!(r.contains(GraphId(i)), !dominated);
        }
        // The paper's 3-measure skyline members remain Pareto-optimal here:
        // a dominator in 4 dimensions must tie-or-beat all 3 original ones,
        // and no two GCS vectors tie on all three in this dataset.
        let base = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        for id in &base.skyline {
            assert!(
                r.contains(*id),
                "g{} must survive when a dimension is added",
                id.index() + 1
            );
        }
    }

    #[test]
    fn empty_database_yields_empty_result() {
        let mut db = GraphDatabase::new();
        let q = db.build_query("q", |b| b.vertex("x", "A")).unwrap();
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        assert!(r.skyline.is_empty());
        assert!(r.gcs.is_empty());
        assert!(r.dominated.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one measure")]
    fn rejects_empty_measure_list() {
        let mut db = GraphDatabase::new();
        let q = db.build_query("q", |b| b.vertex("x", "A")).unwrap();
        graph_similarity_skyline(&db, &q, &QueryOptions { measures: vec![], ..Default::default() });
    }
}
