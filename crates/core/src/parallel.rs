//! Minimal scoped-thread parallel map.
//!
//! The GCS scan evaluates one expensive, independent computation per
//! database graph; `std::thread::scope` covers that without an external
//! thread-pool dependency. Order of results matches input order.

/// Applies `f` to `0..n` across up to `threads` worker threads, preserving
/// index order in the output. `threads <= 1` runs inline.
pub fn parallel_map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        // Split the result buffer into disjoint chunks, one per worker.
        let mut rest: &mut [Option<R>] = &mut results;
        let mut start = 0usize;
        let mut handles = Vec::new();
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let f = &f;
            handles.push(scope.spawn(move || {
                for (offset, slot) in head.iter_mut().enumerate() {
                    *slot = Some(f(start + offset));
                }
            }));
            rest = tail;
            start += take;
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Like [`parallel_map_indexed`], but processes `0..n` in contiguous waves
/// of up to `wave` items, invoking `checkpoint` before each wave and
/// aborting with its error as soon as it fails. The staged executor
/// ([`crate::exec`]) uses this for cooperative cancellation of otherwise
/// embarrassingly-parallel scans: results are per-index pure, so the wave
/// structure never changes them — only how soon a cancellation is noticed.
pub fn parallel_map_waves<R, F, C, E>(
    n: usize,
    threads: usize,
    wave: usize,
    mut checkpoint: C,
    f: F,
) -> Result<Vec<R>, E>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    C: FnMut() -> Result<(), E>,
{
    let wave = wave.max(1);
    let mut out: Vec<R> = Vec::with_capacity(n);
    let mut start = 0usize;
    while start < n {
        checkpoint()?;
        let take = wave.min(n - start);
        out.extend(parallel_map_indexed(take, threads, |k| f(start + k)));
        start += take;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        for threads in [1usize, 2, 3, 8, 100] {
            let out = parallel_map_indexed(17, threads, |i| i * i);
            assert_eq!(
                out,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map_indexed(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn waves_match_the_plain_map_and_stop_on_checkpoint_failure() {
        for (threads, wave) in [(1usize, 1usize), (1, 5), (3, 2), (4, 100)] {
            let out = parallel_map_waves(17, threads, wave, || Ok::<(), ()>(()), |i| i * 3)
                .expect("no cancellation");
            assert_eq!(
                out,
                (0..17).map(|i| i * 3).collect::<Vec<_>>(),
                "threads={threads} wave={wave}"
            );
        }
        // The checkpoint runs before each wave; failing on the third wave
        // (waves of 2 over 10 items) stops after exactly 4 items.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let waves = AtomicUsize::new(0);
        let produced = AtomicUsize::new(0);
        let r: Result<Vec<usize>, &str> = parallel_map_waves(
            10,
            1,
            2,
            || {
                if waves.fetch_add(1, Ordering::SeqCst) == 2 {
                    Err("stop")
                } else {
                    Ok(())
                }
            },
            |i| {
                produced.fetch_add(1, Ordering::SeqCst);
                i
            },
        );
        assert_eq!(r, Err("stop"));
        assert_eq!(produced.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn actually_runs_in_parallel_when_asked() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        parallel_map_indexed(8, 4, |i| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            concurrent.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert!(peak.load(Ordering::SeqCst) >= 2, "expected some overlap");
    }
}
