//! Minimal scoped-thread parallel map.
//!
//! The GCS scan evaluates one expensive, independent computation per
//! database graph; `std::thread::scope` covers that without an external
//! thread-pool dependency. Order of results matches input order.

/// Applies `f` to `0..n` across up to `threads` worker threads, preserving
/// index order in the output. `threads <= 1` runs inline.
pub fn parallel_map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        // Split the result buffer into disjoint chunks, one per worker.
        let mut rest: &mut [Option<R>] = &mut results;
        let mut start = 0usize;
        let mut handles = Vec::new();
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let f = &f;
            handles.push(scope.spawn(move || {
                for (offset, slot) in head.iter_mut().enumerate() {
                    *slot = Some(f(start + offset));
                }
            }));
            rest = tail;
            start += take;
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        for threads in [1usize, 2, 3, 8, 100] {
            let out = parallel_map_indexed(17, threads, |i| i * i);
            assert_eq!(
                out,
                (0..17).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map_indexed(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn actually_runs_in_parallel_when_asked() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        parallel_map_indexed(8, 4, |i| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            concurrent.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert!(peak.load(Ordering::SeqCst) >= 2, "expected some overlap");
    }
}
