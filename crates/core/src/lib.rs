//! # gss-core — the graph similarity skyline engine
//!
//! The primary contribution of Abbaci et al. (GDM/ICDE 2011), *"A Similarity
//! Skyline Approach for Handling Graph Queries"*, as a reusable library:
//!
//! 1. **Compound similarity** ([`measures`]): a query is evaluated under a
//!    *vector* of local distance measures — `DistEd` (graph edit distance),
//!    `DistMcs` (Bunke–Shearer), `DistGu` (Wallis graph-union) and the
//!    normalized edit distance — sharing one set of expensive primitives
//!    per pair.
//! 2. **Similarity dominance & skyline** ([`query`]): `GSS(D, q)` returns
//!    every database graph not similarity-dominated (Definition 12,
//!    Equation 4), with dominance witnesses for the excluded graphs.
//! 3. **Filter-and-verify pruning** ([`prefilter`]): cheap admissible
//!    lower bounds on every measure let [`QueryOptions::prefilter`] skip
//!    the exact solvers for provably-dominated candidates, with
//!    bit-identical results.
//! 4. **Diversity refinement** ([`refine`]): extract the most diverse
//!    `k`-subset of the skyline by the paper's rank-sum procedure.
//! 5. **Baselines** ([`baseline`]): classical single-measure top-k
//!    retrieval, for the comparison the paper draws in Section VI.
//!
//! ```
//! use gss_core::{graph_similarity_skyline, GraphDatabase, QueryOptions};
//!
//! let mut db = GraphDatabase::new();
//! db.add("path", |b| b.vertices(&["x", "y", "z"], "C").path(&["x", "y", "z"], "-")).unwrap();
//! db.add("triangle", |b| b.vertices(&["x", "y", "z"], "C").cycle(&["x", "y", "z"], "-")).unwrap();
//! let q = db.build_query("q", |b| b.vertices(&["x", "y", "z"], "C").path(&["x", "y", "z"], "-")).unwrap();
//!
//! let result = graph_similarity_skyline(&db, &q, &QueryOptions::default());
//! // The path graph is identical to the query: it dominates the triangle.
//! assert_eq!(result.skyline.len(), 1);
//! assert_eq!(result.skyline[0].index(), 0);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod cachekey;
pub mod database;
pub mod exec;
pub mod explain;
pub mod index;
pub mod jsonio;
pub mod measures;
pub mod parallel;
pub mod prefilter;
pub mod query;
pub mod refine;

pub use baseline::{top_k_by_measure, ScoredGraph};
pub use cachekey::{options_fingerprint, query_fingerprint, QueryKey};
pub use database::{GraphDatabase, GraphId};
pub use exec::{resolve_plan, CancelToken, Cancelled, Plan, ResolvedPlan, SkybandResult};
pub use explain::{batch_stats_to_json, explain_all, to_json, to_json_batch, Explanation};
pub use index::{IndexPartition, IndexPlan, QueryIndex};
pub use measures::{
    compute_primitives, GcsVector, GedMode, McsMode, MeasureKind, PairPrimitives, SolverConfig,
};
pub use prefilter::{PrefilterContext, PrefilterSummary, PruneStats};
pub use query::{
    graph_similarity_skyband, graph_similarity_skyline, graph_similarity_skyline_batch,
    try_graph_similarity_skyband, try_graph_similarity_skyline, try_graph_similarity_skyline_batch,
    BatchStats, DominationWitness, GssResult, QueryOptions,
};
pub use refine::{
    pairwise_matrices, refine_skyline, refine_skyline_greedy, RefineOptions, RefinedSkyline,
};
