//! Hand-rolled JSON input/output shared across the workspace.
//!
//! The workspace is dependency-free, so every component that speaks JSON —
//! the `gss` CLI's explain output ([`crate::explain::to_json`]), the
//! benchmark artifacts, and the `gss-server` wire protocol — goes through
//! this module instead of growing its own ad-hoc serializer.
//!
//! Two halves:
//!
//! * **Output** — [`escape`] (string escaping) and the compact writer
//!   [`Value::to_compact`]. Numbers are written with Rust's shortest
//!   round-trip `Display` for `f64`, so parsing a document and re-writing
//!   it compactly is byte-stable for every number this workspace produces
//!   (`4` stays `4`, `0.9167` stays `0.9167`).
//! * **Input** — [`Value::parse`], the minimal recursive-descent parser
//!   the `gss-server` newline-delimited protocol needs: the full JSON
//!   value grammar (objects, arrays, strings with `\uXXXX` escapes and
//!   surrogate pairs, numbers, booleans, null) with precise error
//!   offsets, a nesting-depth limit, and a trailing-garbage check.
//!
//! Object member order is preserved (a `Vec` of pairs, not a map): the
//! writer re-emits members in parse order, and duplicate keys are kept
//! verbatim ([`Value::get`] returns the first).

use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes). Control characters become `\u00XX`; `"` and `\` are escaped;
/// everything else passes through verbatim (JSON strings are UTF-8).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in member order. Duplicate keys are preserved.
    Object(Vec<(String, Value)>),
}

/// A parse failure: the byte offset it was detected at and a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts. Protocol documents are a
/// handful of levels deep; the cap exists so adversarial input cannot
/// overflow the stack of a long-lived server.
const MAX_DEPTH: usize = 128;

impl Value {
    /// Parses one JSON document; the entire input must be consumed
    /// (surrounding whitespace allowed).
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Serializes compactly (no whitespace), suitable for one-line wire
    /// protocols. Non-finite numbers serialize as `null` (JSON has no
    /// representation for them).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// First member with the given key, for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key string"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(self.err("truncated \\u escape"));
        };
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let code = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid hex in \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one slice.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so byte runs are valid UTF-8 as long
                // as they end on a boundary — '"' and '\\' are ASCII, so
                // they always do.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos]).expect("UTF-8 input"),
                );
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let n = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(n)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(u32::from(hi)).expect("BMP scalar")
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the escape
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        token
            .parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Value::Number)
            .ok_or_else(|| JsonError {
                offset: start,
                message: format!("invalid number {token:?}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("héllo✓"), "héllo✓", "non-ASCII passes through");
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newline\nand\ttab\rand\u{1}control",
            "unicode: héllo ✓ 🦀",
            "",
            "trailing backslash \\",
        ] {
            let doc = format!("\"{}\"", escape(s));
            let v = Value::parse(&doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
            assert_eq!(v, Value::String(s.to_owned()), "{s:?}");
            // And the writer agrees with the escaper.
            assert_eq!(Value::String(s.to_owned()).to_compact(), doc);
        }
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(Value::parse("-0.5").unwrap(), Value::Number(-0.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Number(1000.0));
        assert_eq!(Value::parse("2.5E-2").unwrap(), Value::Number(0.025));
        assert_eq!(
            Value::parse("\"hi\"").unwrap(),
            Value::String("hi".to_owned())
        );
    }

    #[test]
    fn parses_containers_preserving_order() {
        let v = Value::parse(r#"{"b": [1, {"x": null}], "a": "s", "b": 2}"#).unwrap();
        let members = v.as_object().unwrap();
        assert_eq!(members.len(), 3);
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(members[2].0, "b");
        // get() returns the first duplicate.
        assert!(matches!(v.get("b"), Some(Value::Array(_))));
        assert_eq!(v.get("a").and_then(Value::as_str), Some("s"));
        assert_eq!(v.get("missing"), None);
        let arr = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("x"), Some(&Value::Null));
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        assert_eq!(
            Value::parse(r#""Aé""#).unwrap(),
            Value::String("Aé".to_owned())
        );
        assert_eq!(
            Value::parse(r#""🦀""#).unwrap(),
            Value::String("🦀".to_owned())
        );
        for bad in [r#""\ud83e""#, r#""\ud83ex""#, r#""\udd80""#, r#""\uZZZZ""#] {
            assert!(Value::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn malformed_inputs_fail_with_offsets() {
        for (doc, what) in [
            ("", "empty"),
            ("{", "unterminated object"),
            ("[1, 2", "unterminated array"),
            ("[1 2]", "missing comma"),
            (r#"{"a" 1}"#, "missing colon"),
            (r#"{"a": 1,}"#, "trailing comma"),
            (r#"{a: 1}"#, "unquoted key"),
            ("\"abc", "unterminated string"),
            ("\"a\u{1}b\"", "raw control char"),
            (r#""\q""#, "bad escape"),
            ("truthy", "trailing after literal"),
            ("1.2.3", "double dot"),
            ("nul", "truncated literal"),
            ("[] []", "two documents"),
            ("1e999", "overflowing number"),
        ] {
            let err = Value::parse(doc).expect_err(what);
            assert!(err.offset <= doc.len(), "{what}: offset in range");
            assert!(!err.message.is_empty(), "{what}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_crashed() {
        let deep = "[".repeat(4000) + &"]".repeat(4000);
        let err = Value::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
        // …while reasonable nesting parses fine.
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn compact_write_parse_round_trip_is_byte_stable() {
        // The formats this workspace emits: integers, short decimals,
        // fixed-precision rates, strings with escapes, nested containers.
        for doc in [
            r#"{"a":1,"b":[1.5,0.9167,"x\ny"],"c":{"d":null,"e":true},"f":-0.125}"#,
            r#"[0,4,0.3333333333333333,1e-7]"#,
            r#""just a string""#,
        ] {
            let v = Value::parse(doc).unwrap();
            let written = v.to_compact();
            assert_eq!(Value::parse(&written).unwrap(), v);
            // Byte stability after one normalization pass.
            assert_eq!(Value::parse(&written).unwrap().to_compact(), written);
        }
    }

    #[test]
    fn pretty_documents_compact_losslessly() {
        // A pretty document in the explain style compacts without changing
        // any token.
        let pretty = "{\n  \"measures\": [\"DistEd\"],\n  \"rate\": 0.9167,\n  \"n\": 120\n}\n";
        let v = Value::parse(pretty).unwrap();
        assert_eq!(
            v.to_compact(),
            r#"{"measures":["DistEd"],"rate":0.9167,"n":120}"#
        );
    }

    #[test]
    fn non_finite_numbers_write_as_null() {
        assert_eq!(Value::Number(f64::NAN).to_compact(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_compact(), "null");
    }
}
