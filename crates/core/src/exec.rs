//! The unified query planner and staged execution engine.
//!
//! Every GSS entry point — [`crate::graph_similarity_skyline`], the batch
//! API and [`crate::graph_similarity_skyband`] — runs through the one
//! executor in this module. A query evaluation is four explicit stages:
//!
//! ```text
//!  candidate source ──► bound stage ──► dominance verifier ──► assembly
//!  (full scan, or       (PrefilterSummary  (waves of exact      (skyline +
//!   QueryIndex           lower bounds       solver calls;        witnesses,
//!   partitions,          per candidate)     frontier prunes      or k-skyband
//!   dominated ones                          dominated bounds;    membership)
//!   skipped wholesale)                      CancelToken
//!                                           checkpoints)
//! ```
//!
//! # Plans
//!
//! Which candidate source and bound stage run is decided by a [`Plan`]:
//!
//! * [`Plan::Naive`] — every candidate goes straight to the solvers; no
//!   bounds, no pruning (the reference strategy).
//! * [`Plan::Prefilter`] — the filter-and-verify pipeline: per-candidate
//!   lower bounds, most-promising-first verification, dominance pruning.
//! * [`Plan::Indexed`] — a [`QueryIndex`] partitions the database first;
//!   partitions whose bound vector is dominated are skipped wholesale and
//!   the survivors run through the prefilter stage. Requires
//!   [`QueryOptions::index`].
//! * [`Plan::Sharded`] — the candidate space is split into
//!   [`QueryOptions::shards`] contiguous ranges; each shard runs its own
//!   *sequential* filter-and-verify pipeline (shards, not candidates, are
//!   what [`QueryOptions::threads`] parallelizes), and the per-shard
//!   dominance frontiers are merged into one skyline. This is the fan-out
//!   strategy for one huge query spread across a worker pool; the
//!   reported document is invariant in the shard count by construction
//!   (see [`skyline`]'s sharded assembly).
//! * [`Plan::Auto`] (the default) — picks one of the above from what is
//!   available: an attached index wins, otherwise the prefilter pipeline
//!   for databases of at least [`AUTO_PREFILTER_MIN`] graphs (or when
//!   [`QueryOptions::prefilter`] asks for it), otherwise the naive scan
//!   (for tiny databases the bound bookkeeping buys nothing).
//!
//! Every plan returns **byte-identical** answers: the same skyline, the
//! same witnesses, the same exact GCS vectors, the same skyband
//! membership, across solver configurations and thread counts. Plans only
//! change how much work is spent getting there, which the
//! [`PruneStats`]/[`GssResult::pruning`] counters expose.
//!
//! # Cooperative cancellation
//!
//! The executor threads a [`CancelToken`] through every stage and checks
//! it at **wave boundaries**: before each wave of exact solver calls,
//! before each index partition, and between pipeline stages. A fired
//! token (explicit [`CancelToken::cancel`] or an expired
//! [`CancelToken::with_deadline`] deadline) makes the executor return
//! [`Cancelled`] instead of a result, abandoning the remaining scan. This
//! is what lets `gss-server` abort deadline-expired queries *mid-scan*
//! rather than only dropping them while they wait in the queue.
//! Granularity is one wave — an individual solver call is never
//! interrupted, so cancellation latency is bounded by the most expensive
//! single candidate.

use std::cmp::Ordering;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Instant;

use gss_graph::Graph;
use gss_skyline::dominance;

use crate::database::{GraphDatabase, GraphId};
use crate::index::QueryIndex;
use crate::measures::GcsVector;
use crate::parallel::{parallel_map_indexed, parallel_map_waves};
use crate::prefilter::{self, PrefilterContext, PrefilterSummary, PruneStats};
use crate::query::{DominationWitness, GssResult, QueryOptions};

/// Smallest database for which [`Plan::Auto`] picks the filter-and-verify
/// pipeline over the naive scan when no index is attached. Below this the
/// frontier bookkeeping cannot amortize; at or above it the pruned scan
/// never runs more solver calls and usually runs far fewer.
pub const AUTO_PREFILTER_MIN: usize = 16;

/// How a query should be evaluated. The executor turns a `Plan` into a
/// [`ResolvedPlan`] per query via [`resolve_plan`]; `Auto` is the only
/// variant whose resolution depends on the database and options.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Plan {
    /// Choose the cheapest sound strategy from the database size and the
    /// attached index (see [`resolve_plan`]). The default.
    #[default]
    Auto,
    /// Full scan, exact solvers for every candidate, no pruning.
    Naive,
    /// Filter-and-verify: per-candidate lower bounds + dominance pruning.
    Prefilter,
    /// Index partitions first, prefilter inside surviving partitions.
    /// Requires [`QueryOptions::index`].
    Indexed,
    /// Static `N`-way partition of the candidate space
    /// ([`QueryOptions::shards`]): each shard runs its own sequential
    /// filter-and-verify pipeline and the per-shard frontiers are merged
    /// into one skyline. Made for huge single queries fanning out across a
    /// worker pool; the answer is byte-identical for every shard count.
    Sharded,
}

impl Plan {
    /// Parses a plan token as used by the CLI and the server protocol.
    pub fn parse(token: &str) -> Option<Plan> {
        match token {
            "auto" => Some(Plan::Auto),
            "naive" => Some(Plan::Naive),
            "prefilter" => Some(Plan::Prefilter),
            "indexed" => Some(Plan::Indexed),
            "sharded" => Some(Plan::Sharded),
            _ => None,
        }
    }

    /// The lowercase token naming this plan (`"auto"`, `"naive"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Plan::Auto => "auto",
            Plan::Naive => "naive",
            Plan::Prefilter => "prefilter",
            Plan::Indexed => "indexed",
            Plan::Sharded => "sharded",
        }
    }
}

/// The concrete strategy a query ran under, reported in
/// [`GssResult::plan`] (an `Auto` request resolves to one of these).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ResolvedPlan {
    /// Full scan without pruning.
    Naive,
    /// Filter-and-verify pipeline.
    Prefilter,
    /// Index partition skipping + filter-and-verify.
    Indexed,
    /// Per-shard filter-and-verify with a merged frontier.
    Sharded,
}

impl ResolvedPlan {
    /// The lowercase token naming this strategy.
    pub fn name(self) -> &'static str {
        match self {
            ResolvedPlan::Naive => "naive",
            ResolvedPlan::Prefilter => "prefilter",
            ResolvedPlan::Indexed => "indexed",
            ResolvedPlan::Sharded => "sharded",
        }
    }
}

/// Resolves the strategy for one query.
///
/// Explicit plans win: `Naive` and `Prefilter` ignore any attached index,
/// and `Indexed` **panics** without one (callers that accept user input
/// should validate first). `Auto` picks the cheapest available strategy:
/// the index when attached, the prefilter pipeline when requested via
/// [`QueryOptions::prefilter`] or when the database has at least
/// [`AUTO_PREFILTER_MIN`] graphs, and the naive scan otherwise.
pub fn resolve_plan(db: &GraphDatabase, options: &QueryOptions) -> ResolvedPlan {
    match options.plan {
        Plan::Naive => ResolvedPlan::Naive,
        Plan::Prefilter => ResolvedPlan::Prefilter,
        Plan::Sharded => ResolvedPlan::Sharded,
        Plan::Indexed => {
            assert!(
                options.index.is_some(),
                "Plan::Indexed requires QueryOptions::index"
            );
            ResolvedPlan::Indexed
        }
        Plan::Auto => {
            if options.index.is_some() {
                ResolvedPlan::Indexed
            } else if options.prefilter || db.len() >= AUTO_PREFILTER_MIN {
                ResolvedPlan::Prefilter
            } else {
                ResolvedPlan::Naive
            }
        }
    }
}

/// The error returned by the cancellable entry points when their
/// [`CancelToken`] fired before the scan finished.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("query evaluation cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug, Default)]
struct TokenState {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cooperative cancellation handle shared between a query evaluation and
/// whoever may want to abort it.
///
/// Clones share state. The executor polls the token at wave boundaries
/// (see the module docs); it never interrupts an individual solver call.
/// A token fires either explicitly ([`CancelToken::cancel`], e.g. from a
/// watchdog or a shutdown path) or implicitly once the deadline passed for
/// tokens built with [`CancelToken::with_deadline`] — the latter is how
/// `gss-server` turns a request's `deadline_ms` into a mid-scan abort
/// without a timer thread.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<TokenState>,
}

impl CancelToken {
    /// A token that only fires when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that fires once `deadline` passes (or when cancelled
    /// explicitly, whichever comes first).
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation; every clone observes it at its next check.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, AtomicOrdering::Relaxed);
    }

    /// True once the token fired (explicitly or by deadline). A deadline
    /// expiry latches, so later calls stay cheap.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(AtomicOrdering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.inner.cancelled.store(true, AtomicOrdering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The wave-boundary check the executor calls: `Err(Cancelled)` once
    /// the token fired.
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

/// The result of a `k`-skyband query (see
/// [`crate::graph_similarity_skyband`]): every database graph
/// similarity-dominated by fewer than `k` others.
#[derive(Clone, Debug, PartialEq)]
pub struct SkybandResult {
    /// The dominance threshold the query ran with (`k = 1` is the skyline).
    pub k: usize,
    /// Member ids, ascending. Identical across every [`Plan`].
    pub members: Vec<GraphId>,
    /// The strategy the skyband ran under.
    pub plan: ResolvedPlan,
    /// Pruning counters when the filter-and-verify pipeline ran, `None`
    /// for the naive and sharded scans. Candidates counted
    /// `pruned`/`index_skipped` were proven out of the band by lower
    /// bounds alone — no solver ran.
    pub pruning: Option<PruneStats>,
}

impl SkybandResult {
    /// True when `id` is in the skyband.
    pub fn contains(&self, id: GraphId) -> bool {
        self.members.binary_search(&id).is_ok()
    }
}

/// Candidates per worker thread in one wave of the naive scan — large
/// enough to amortize wave bookkeeping, small enough that a cancellation
/// checkpoint runs every few solver calls.
const NAIVE_WAVE_PER_THREAD: usize = 8;

/// How the dominance frontier prunes: against the non-dominated verified
/// set (skyline queries) or by counting `k` distinct verified dominators
/// (skyband queries).
enum Frontier {
    /// The non-dominated subset of verified vectors. Dominance is
    /// transitive, so testing a bound against this subset is as strong as
    /// testing against every verified vector.
    Skyline(Vec<usize>),
    /// Every verified vector. A bound is only "covered" once `k` distinct
    /// verified vectors dominate it — a candidate excluded this way is
    /// dominated by at least `k` graphs, so it cannot be in the band, and
    /// (by transitivity) anything its exact vector would dominate already
    /// has `k` verified dominators, so skipping it never under-counts.
    Band {
        /// The dominance threshold.
        k: usize,
        /// Indices of every verified vector, in verification order.
        verified: Vec<usize>,
    },
}

/// Shared state of the filter-and-verify pipeline: the verified vectors so
/// far, the pruning frontier over them, and the running counters. Both the
/// prefilter-only source and the indexed source drive one `Verifier`;
/// candidates and partitions can be fed in any order without changing the
/// final answer (only the stats depend on order).
struct Verifier<'a> {
    db: &'a GraphDatabase,
    query: &'a Graph,
    options: &'a QueryOptions,
    cancel: &'a CancelToken,
    exact: Vec<Option<GcsVector>>,
    frontier: Frontier,
    stats: PruneStats,
}

impl<'a> Verifier<'a> {
    fn new(
        db: &'a GraphDatabase,
        query: &'a Graph,
        options: &'a QueryOptions,
        cancel: &'a CancelToken,
        frontier: Frontier,
    ) -> Self {
        Verifier {
            db,
            query,
            options,
            cancel,
            exact: vec![None; db.len()],
            frontier,
            stats: PruneStats {
                candidates: db.len(),
                ..PruneStats::default()
            },
        }
    }

    fn values(&self, i: usize) -> &[f64] {
        &self.exact[i].as_ref().expect("vector is verified").values
    }

    /// True when the verified set already covers `bound` — the one pruning
    /// decision of the pipeline, shared by partitions (index bounds) and
    /// candidates (prefilter lower bounds). For skyline queries this means
    /// one frontier member dominates the bound; for skyband queries it
    /// means `k` distinct verified vectors do.
    fn frontier_dominates(&self, bound: &[f64]) -> bool {
        match &self.frontier {
            Frontier::Skyline(frontier) => frontier
                .iter()
                .any(|&f| dominance::dominates(self.values(f), bound)),
            Frontier::Band { k, verified } => {
                let mut dominators = 0usize;
                for &v in verified {
                    if dominance::dominates(self.values(v), bound) {
                        dominators += 1;
                        if dominators >= *k {
                            return true;
                        }
                    }
                }
                dominators >= *k
            }
        }
    }

    /// Registers a freshly verified vector with the frontier.
    fn frontier_insert(&mut self, i: usize) {
        let exact = &self.exact;
        let point =
            |f: usize| -> &[f64] { &exact[f].as_ref().expect("frontier is verified").values };
        match &mut self.frontier {
            Frontier::Band { verified, .. } => verified.push(i),
            Frontier::Skyline(frontier) => {
                let v = point(i);
                if frontier.iter().any(|&f| dominance::dominates(point(f), v)) {
                    return;
                }
                frontier.retain(|&f| !dominance::dominates(v, point(f)));
                frontier.push(i);
            }
        }
    }

    /// Resolves `i` through the distance-zero short-circuit when its
    /// summary proved isomorphism: exact all-zero vector, no solver runs.
    fn try_short_circuit(&mut self, i: usize, summary: &PrefilterSummary) {
        if summary.isomorphic && self.exact[i].is_none() {
            self.exact[i] = summary.known_exact(&self.options.measures);
            self.stats.short_circuited += 1;
            self.frontier_insert(i);
        }
    }

    /// Runs the per-candidate filter-and-verify loop over `candidates`
    /// (already-resolved entries are skipped).
    ///
    /// Verification order is most promising first (smallest lower-bound
    /// sum, ties by id): near-answers verify early and build a strong
    /// pruning frontier for the long tail. Exact solving proceeds in waves
    /// of up to `threads` candidates so it still parallelizes; each wave
    /// refreshes the frontier before the next pruning decision, and each
    /// wave boundary is a cancellation checkpoint.
    /// `threads == 1` is the classic sequential filter-and-verify loop.
    fn run(
        &mut self,
        candidates: &[usize],
        summaries: &[Option<PrefilterSummary>],
    ) -> Result<(), Cancelled> {
        let lower = |i: usize| {
            &summaries[i]
                .as_ref()
                .expect("candidates fed to run() are summarized")
                .lower
                .values
        };
        let mut order: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| self.exact[i].is_none())
            .collect();
        order.sort_by(|&a, &b| {
            let sa: f64 = lower(a).iter().sum();
            let sb: f64 = lower(b).iter().sum();
            sa.partial_cmp(&sb)
                .unwrap_or(Ordering::Equal)
                .then(a.cmp(&b))
        });

        let threads = self.options.threads.max(1);
        let mut cursor = 0usize;
        while cursor < order.len() {
            self.cancel.checkpoint()?;
            let mut batch: Vec<usize> = Vec::with_capacity(threads);
            // gss-lint: allow(cancellation-checkpoint) — fills one wave (≤ threads items) of domination checks; the enclosing wave loop checkpoints every pass
            while cursor < order.len() && batch.len() < threads {
                let i = order[cursor];
                cursor += 1;
                if self.frontier_dominates(lower(i)) {
                    self.stats.pruned += 1;
                } else {
                    batch.push(i);
                }
            }
            if batch.is_empty() {
                continue;
            }
            let results: Vec<GcsVector> = parallel_map_indexed(batch.len(), threads, |k| {
                GcsVector::compute(
                    self.db.get(GraphId(batch[k])),
                    self.query,
                    &self.options.measures,
                    &self.options.solvers,
                )
            });
            // gss-lint: allow(cancellation-checkpoint) — records one wave's results (≤ threads items); the enclosing wave loop checkpoints every pass
            for (k, v) in results.into_iter().enumerate() {
                let i = batch[k];
                self.exact[i] = Some(v);
                self.stats.verified += 1;
                self.frontier_insert(i);
            }
        }
        Ok(())
    }
}

/// Bound stage over the whole database: one [`PrefilterSummary`] per
/// candidate (cheap, linear-time each), fed from the cached per-graph
/// [`gss_graph::stats::GraphStats`].
fn summarize_all(
    db: &GraphDatabase,
    query: &Graph,
    options: &QueryOptions,
    ctx: &PrefilterContext,
) -> Vec<Option<PrefilterSummary>> {
    parallel_map_indexed(db.len(), options.threads, |i| {
        let id = GraphId(i);
        // The graph thunk keeps arena-backed candidates unmaterialized
        // unless the WL short-circuit actually needs the full graph.
        Some(prefilter::summarize_deferred(
            || db.get(id),
            db.stats(id),
            query,
            &options.measures,
            ctx,
        ))
    })
}

/// The naive verify stage: exact vectors for every candidate, computed in
/// cancellable waves (results are order-independent, so the wave structure
/// never changes them).
fn naive_verify(
    db: &GraphDatabase,
    query: &Graph,
    options: &QueryOptions,
    cancel: &CancelToken,
) -> Result<Vec<GcsVector>, Cancelled> {
    let threads = options.threads.max(1);
    parallel_map_waves(
        db.len(),
        threads,
        threads * NAIVE_WAVE_PER_THREAD,
        || cancel.checkpoint(),
        |i| {
            GcsVector::compute(
                db.get(GraphId(i)),
                query,
                &options.measures,
                &options.solvers,
            )
        },
    )
}

/// The candidate source stage of an indexed scan: partitions from the
/// index plan, most promising first; a partition whose bound vector is
/// covered by the frontier is skipped **wholesale** — its members get
/// neither a prefilter summary nor a solver call (`summaries` stays `None`
/// for them). Members of surviving partitions are summarized and run
/// through the ordinary per-candidate filter-and-verify stage. Returns
/// `partition_of`: the plan partition index of every *skipped* candidate
/// (usize::MAX elsewhere), which the skyline assembly uses for straggler
/// accounting.
fn run_partitions(
    v: &mut Verifier<'_>,
    index: &dyn QueryIndex,
    ctx: &PrefilterContext,
    summaries: &mut [Option<PrefilterSummary>],
) -> Result<Vec<usize>, Cancelled> {
    let n = v.db.len();
    let plan = index.plan(v.db, v.query, &v.options.measures);
    crate::index::validate_plan(&plan, n);
    // gss-lint: allow(cancellation-checkpoint) — linear plan validation before any solver work; partition counts are small by construction
    for p in &plan.partitions {
        assert_eq!(
            p.bound.values.len(),
            v.options.measures.len(),
            "index partition bound must match the measure count"
        );
    }
    v.stats.index_partitions = plan.partitions.len();
    v.stats.pivot_probes = plan.pivot_probes;

    let mut partition_of: Vec<usize> = vec![usize::MAX; n];
    for pi in plan.most_promising_order() {
        v.cancel.checkpoint()?;
        let part = &plan.partitions[pi];
        if part.members.is_empty() {
            continue;
        }
        if v.frontier_dominates(&part.bound.values) {
            v.stats.index_skipped += part.members.len();
            v.stats.index_partitions_skipped += 1;
            // gss-lint: allow(cancellation-checkpoint) — bookkeeping over one partition's members; the partition loop checkpoints every iteration
            for id in &part.members {
                partition_of[id.index()] = pi;
            }
            continue;
        }
        let members: Vec<usize> = part.members.iter().map(|g| g.index()).collect();
        let batch: Vec<PrefilterSummary> =
            parallel_map_indexed(members.len(), v.options.threads, |k| {
                let id = GraphId(members[k]);
                prefilter::summarize_deferred(
                    || v.db.get(id),
                    v.db.stats(id),
                    v.query,
                    &v.options.measures,
                    ctx,
                )
            });
        // gss-lint: allow(cancellation-checkpoint) — stores one partition's summaries; the partition loop checkpoints every iteration
        for (k, s) in batch.into_iter().enumerate() {
            summaries[members[k]] = Some(s);
        }
        // gss-lint: allow(cancellation-checkpoint) — constant-time domination probes per member, no solver; the partition loop checkpoints and v.run checkpoints per wave
        for &i in &members {
            v.try_short_circuit(i, summaries[i].as_ref().expect("just summarized"));
        }
        v.run(&members, summaries)?;
    }
    Ok(partition_of)
}

/// The verify phase of the prefilter plan: exact vectors for every
/// candidate that survives lower-bound domination, `None` for the pruned.
fn prefilter_verify(
    v: &mut Verifier<'_>,
    summaries: &[Option<PrefilterSummary>],
) -> Result<(), Cancelled> {
    let n = v.db.len();
    // gss-lint: allow(cancellation-checkpoint) — constant-time domination probes, no solver; the wave loop inside v.run checkpoints
    for (i, summary) in summaries.iter().enumerate() {
        v.try_short_circuit(i, summary.as_ref().expect("all summarized"));
    }
    let all: Vec<usize> = (0..n).collect();
    v.run(&all, summaries)
}

/// The contiguous candidate range of shard `s` under an `S`-way static
/// split (ranges cover `0..n` exactly, sizes differ by at most one).
fn shard_range(n: usize, shards: usize, s: usize) -> std::ops::Range<usize> {
    (s * n / shards)..((s + 1) * n / shards)
}

/// The verify phase of the sharded plan: each shard runs its own
/// *sequential* [`Verifier`] over its candidate range — shards, not
/// candidates, are the unit [`QueryOptions::threads`] parallelizes — and
/// returns its final frontier plus every exact vector it computed.
/// `band_k` selects the skyband frontier; `None` is a skyline scan.
///
/// Within a shard, the final skyline frontier equals the shard's *true
/// local skyline*: a local skyline member's lower bound is never covered
/// (a dominator of its bound would dominate its exact vector), so it is
/// always verified and survives the frontier; and any frontier survivor
/// dominated by a pruned candidate's exact vector would transitively be
/// dominated by that candidate's verified dominator, contradicting
/// survival. The per-shard frontiers are therefore deterministic — the
/// shard *and* thread counts only decide how much extra verification
/// happened along the way.
///
/// Each shard yields its frontier (candidate indices) and every exact
/// vector it computed along the way.
type ShardOutput = (Vec<usize>, Vec<(usize, GcsVector)>);

fn sharded_verify(
    db: &GraphDatabase,
    query: &Graph,
    options: &QueryOptions,
    cancel: &CancelToken,
    summaries: &[Option<PrefilterSummary>],
    band_k: Option<usize>,
) -> Result<Vec<ShardOutput>, Cancelled> {
    let n = db.len();
    let shards = options.shards.max(1).min(n.max(1));
    let per_shard = QueryOptions {
        threads: 1,
        ..options.clone()
    };
    let results = parallel_map_indexed(shards, options.threads, |s| {
        let frontier = match band_k {
            None => Frontier::Skyline(Vec::new()),
            Some(k) => Frontier::Band {
                k,
                verified: Vec::new(),
            },
        };
        let mut v = Verifier::new(db, query, &per_shard, cancel, frontier);
        let members: Vec<usize> = shard_range(n, shards, s).collect();
        // gss-lint: allow(cancellation-checkpoint) — constant-time domination probes, no solver; the wave loop inside v.run checkpoints
        for &i in &members {
            v.try_short_circuit(i, summaries[i].as_ref().expect("all summarized"));
        }
        v.run(&members, summaries)?;
        let computed: Vec<(usize, GcsVector)> = members
            .iter()
            .filter_map(|&i| v.exact[i].take().map(|g| (i, g)))
            .collect();
        let frontier = match v.frontier {
            Frontier::Skyline(f) => f,
            Frontier::Band { verified, .. } => verified,
        };
        Ok((frontier, computed))
    });
    results.into_iter().collect()
}

/// Computes `GSS(D, q)` through the staged executor under the resolved
/// plan, with cooperative cancellation. This is the engine behind
/// [`crate::graph_similarity_skyline`]; see the module docs for the stage
/// pipeline and [`resolve_plan`] for plan selection.
pub fn skyline(
    db: &GraphDatabase,
    query: &Graph,
    options: &QueryOptions,
    cancel: &CancelToken,
) -> Result<GssResult, Cancelled> {
    assert!(
        !options.measures.is_empty(),
        "at least one measure is required"
    );
    let n = db.len();
    let plan = resolve_plan(db, options);
    cancel.checkpoint()?;

    // Bound-stage context: the query-side invariants are hoisted once per
    // scan; the isomorphism short-circuit stays off for naive scans and
    // approximate solvers.
    let ctx = PrefilterContext::for_query(query, &options.solvers, plan != ResolvedPlan::Naive);

    let (exact, summaries, pruning) = match plan {
        ResolvedPlan::Naive => {
            // Summaries still materialize (the witness rule consumes
            // per-candidate lower bounds), but nothing is pruned.
            let summaries = summarize_all(db, query, options, &ctx);
            cancel.checkpoint()?;
            let gcs = naive_verify(db, query, options, cancel)?;
            (gcs.into_iter().map(Some).collect(), summaries, None)
        }
        ResolvedPlan::Prefilter => {
            let summaries = summarize_all(db, query, options, &ctx);
            cancel.checkpoint()?;
            let mut v = Verifier::new(db, query, options, cancel, Frontier::Skyline(Vec::new()));
            prefilter_verify(&mut v, &summaries)?;
            (v.exact, summaries, Some(v.stats))
        }
        ResolvedPlan::Indexed => {
            let index = options
                .index
                .as_ref()
                .expect("resolved Indexed implies an index")
                .clone();
            let mut summaries: Vec<Option<PrefilterSummary>> = vec![None; n];
            let mut v = Verifier::new(db, query, options, cancel, Frontier::Skyline(Vec::new()));
            let partition_of = run_partitions(&mut v, index.as_ref(), &ctx, &mut summaries)?;

            // Materialize summaries for the members of skipped partitions:
            // the witness rule and the reported GCS matrix consume
            // per-candidate lower bounds for every excluded graph. This is
            // the reporting half of the bargain — linear-time per
            // candidate, no solver involved — and runs only after the scan
            // decided what to verify.
            let skipped: Vec<usize> = (0..n).filter(|&i| summaries[i].is_none()).collect();
            let batch: Vec<PrefilterSummary> =
                parallel_map_indexed(skipped.len(), options.threads, |k| {
                    let id = GraphId(skipped[k]);
                    prefilter::summarize_with_stats(
                        db.get(id),
                        db.stats(id),
                        query,
                        &options.measures,
                        &ctx,
                    )
                });
            // gss-lint: allow(cancellation-checkpoint) — linear reporting bookkeeping after the checkpointed scan decided what to verify
            for (k, s) in batch.into_iter().enumerate() {
                summaries[skipped[k]] = Some(s);
            }

            // Witness parity: the canonical witness rule resolves an
            // excluded graph through the first skyline member dominating
            // its *own* lower bound, falling back to its exact vector. A
            // skipped candidate's own bound can be looser than its
            // partition's (the pivot triangle bound sees structure the
            // label-alignment bounds cannot), so the frontier may dominate
            // the partition while missing the candidate's bound — verify
            // those rare stragglers so they resolve exactly as the naive
            // scan would. Their exact vectors are provably dominated (the
            // skip was justified by an admissible partition bound), so the
            // skyline cannot change; and a prefilter-only scan verifies
            // the same candidates (a candidate whose bound no verified
            // vector dominates is never pruned), so this never costs more
            // solver calls than the prefilter plan.
            let stragglers: Vec<usize> = skipped
                .iter()
                .copied()
                .filter(|&i| {
                    !v.frontier_dominates(
                        &summaries[i]
                            .as_ref()
                            .expect("skipped candidates were just summarized")
                            .lower
                            .values,
                    )
                })
                .collect();
            v.stats.index_skipped -= stragglers.len();
            // A partition that produced a straggler was not skipped
            // *wholesale* after all — keep the partition counter
            // consistent with the candidate counter in explain output and
            // the benchmark artifact.
            let mut demoted: Vec<usize> = stragglers.iter().map(|&i| partition_of[i]).collect();
            demoted.sort_unstable();
            demoted.dedup();
            v.stats.index_partitions_skipped -= demoted.len();
            v.run(&stragglers, &summaries)?;

            (v.exact, summaries, Some(v.stats))
        }
        ResolvedPlan::Sharded => {
            let summaries = summarize_all(db, query, options, &ctx);
            cancel.checkpoint()?;
            let shard_results = sharded_verify(db, query, options, cancel, &summaries, None)?;

            // Divide-and-conquer merge: the skyline of the union of the
            // per-shard skylines is the skyline of the whole database —
            // every global member is locally non-dominated (so pooled),
            // and every pooled non-member is dominated by a global member
            // that is itself in the pool.
            let mut computed: Vec<Option<GcsVector>> = vec![None; n];
            let mut pool: Vec<usize> = Vec::new();
            // gss-lint: allow(cancellation-checkpoint) — linear merge bookkeeping after the checkpointed shard scans returned
            for (frontier, exacts) in shard_results {
                pool.extend(frontier);
                // gss-lint: allow(cancellation-checkpoint) — moves already-computed vectors, no solver
                for (i, g) in exacts {
                    computed[i] = Some(g);
                }
            }
            pool.sort_unstable();
            let pool_points: Vec<Vec<f64>> = pool
                .iter()
                .map(|&i| {
                    computed[i]
                        .as_ref()
                        .expect("pooled frontiers are verified")
                        .values
                        .clone()
                })
                .collect();
            let sky: Vec<usize> = gss_skyline::skyline(&pool_points, options.skyline_algorithm)
                .into_iter()
                .map(|j| pool[j])
                .collect();

            // Reporting invariance: the document must not depend on the
            // shard count, so exact vectors are reported for exactly the
            // skyline plus the *stragglers* — excluded candidates whose
            // own lower bound no skyline member's exact vector dominates
            // (the same set every unsharded plan resolves through the
            // second witness rule). Extra vectors individual shards
            // happened to verify are deliberately dropped; vectors the
            // shards did not compute are filled here. Stragglers are
            // provably dominated, so the skyline cannot change.
            let mut in_sky = vec![false; n];
            // gss-lint: allow(cancellation-checkpoint) — linear flag fill after the checkpointed shard scans returned
            for &i in &sky {
                in_sky[i] = true;
            }
            let sky_dominates_lower = |i: usize| {
                let lower = &summaries[i].as_ref().expect("all summarized").lower.values;
                sky.iter().any(|&m| {
                    dominance::dominates(
                        &computed[m].as_ref().expect("skyline is verified").values,
                        lower,
                    )
                })
            };
            let stragglers: Vec<usize> = (0..n)
                .filter(|&i| !in_sky[i] && !sky_dominates_lower(i))
                .collect();
            let missing: Vec<usize> = stragglers
                .iter()
                .copied()
                .filter(|&i| computed[i].is_none())
                .collect();
            let threads = options.threads.max(1);
            let fresh = parallel_map_waves(
                missing.len(),
                threads,
                threads * NAIVE_WAVE_PER_THREAD,
                || cancel.checkpoint(),
                |j| {
                    GcsVector::compute(
                        db.get(GraphId(missing[j])),
                        query,
                        &options.measures,
                        &options.solvers,
                    )
                },
            )?;
            // gss-lint: allow(cancellation-checkpoint) — linear result placement; the wave computation above checkpointed
            for (j, g) in fresh.into_iter().enumerate() {
                computed[missing[j]] = Some(g);
            }

            let mut exact: Vec<Option<GcsVector>> = vec![None; n];
            // gss-lint: allow(cancellation-checkpoint) — linear reporting assembly after every solver stage returned
            for &i in sky.iter().chain(stragglers.iter()) {
                exact[i] = computed[i].take();
            }

            // The pruning counters are *derived* from the reported set —
            // not from the per-shard scans, whose incidental verification
            // totals vary with the shard count — so the stats block is
            // invariant too. A candidate outside the reported set was
            // excluded by lower bounds alone, which is exactly what
            // `pruned` means in the other pruned plans.
            let reported = sky.len() + stragglers.len();
            let short_circuited = sky
                .iter()
                .chain(stragglers.iter())
                .filter(|&&i| summaries[i].as_ref().expect("all summarized").isomorphic)
                .count();
            let stats = PruneStats {
                candidates: n,
                verified: reported - short_circuited,
                pruned: n - reported,
                short_circuited,
                ..PruneStats::default()
            };
            (exact, summaries, Some(stats))
        }
    };

    // Assembly: skyline over the verified GCS matrix. Pruned candidates
    // are provably dominated, and removing dominated points never changes
    // a skyline, so running the algorithm on the verified subset yields
    // exactly `GSS(D, q)`.
    let verified: Vec<usize> = (0..n).filter(|&i| exact[i].is_some()).collect();
    let points: Vec<Vec<f64>> = verified
        .iter()
        .map(|&i| exact[i].as_ref().expect("verified").values.clone())
        .collect();
    let skyline: Vec<GraphId> = gss_skyline::skyline(&points, options.skyline_algorithm)
        .into_iter()
        .map(|k| GraphId(verified[k]))
        .collect();

    // Witnesses for the excluded graphs — the identical rule in every
    // plan consumes per-candidate lower bounds. Every plan returns
    // fully-materialized summaries (the indexed source fills in skipped
    // partitions itself, after the verify loop), so this is a plain
    // unwrap.
    let summaries: Vec<PrefilterSummary> = summaries
        .into_iter()
        .map(|s| s.expect("every candidate source materializes all summaries"))
        .collect();
    let dominated = compute_witnesses(n, &skyline, &exact, &summaries);

    // Exact vectors where verified, lower bounds elsewhere.
    let mut evaluated = Vec::with_capacity(n);
    let mut gcs = Vec::with_capacity(n);
    // gss-lint: allow(cancellation-checkpoint) — linear result assembly; every solver stage already returned
    for (i, e) in exact.into_iter().enumerate() {
        match e {
            Some(v) => {
                evaluated.push(true);
                gcs.push(v);
            }
            None => {
                evaluated.push(false);
                gcs.push(summaries[i].lower.clone());
            }
        }
    }

    Ok(GssResult {
        measures: options.measures.clone(),
        plan,
        gcs,
        evaluated,
        skyline,
        dominated,
        pruning,
    })
}

/// Runs one skyline query per input over a shared database, spreading the
/// queries across [`QueryOptions::threads`] workers with one
/// [`CancelToken`] per query (`cancels.len()` must equal `queries.len()`;
/// each query aborts independently). Results are in query order; each
/// entry is what [`skyline`] returns for that query with `threads = 1` —
/// except a *single* [`Plan::Sharded`] query, which keeps the full thread
/// budget so one huge query fans out across its shards instead of running
/// one shard at a time (the sharded document is thread-invariant, so the
/// bytes are unchanged).
pub fn skyline_batch(
    db: &GraphDatabase,
    queries: &[Graph],
    options: &QueryOptions,
    cancels: &[CancelToken],
) -> Vec<Result<GssResult, Cancelled>> {
    assert_eq!(
        queries.len(),
        cancels.len(),
        "one CancelToken per batch query"
    );
    let fan_out = queries.len() == 1 && options.plan == Plan::Sharded;
    let per_query = QueryOptions {
        threads: if fan_out { options.threads } else { 1 },
        ..options.clone()
    };
    parallel_map_indexed(queries.len(), options.threads, |i| {
        skyline(db, &queries[i], &per_query, &cancels[i])
    })
}

/// Computes the `k`-skyband through the staged executor: every database
/// graph similarity-dominated by fewer than `k` others, under any
/// [`Plan`], with cooperative cancellation.
///
/// The pruned plans use the band frontier: a
/// candidate whose lower-bound vector is dominated by `k` distinct
/// verified exact vectors is excluded without solving — those `k` vectors
/// dominate its exact vector too, and by transitivity anything *it* would
/// have dominated already has `k` verified dominators, so membership of
/// every other graph is decided identically to the naive scan.
pub fn skyband(
    db: &GraphDatabase,
    query: &Graph,
    k: usize,
    options: &QueryOptions,
    cancel: &CancelToken,
) -> Result<SkybandResult, Cancelled> {
    assert!(
        !options.measures.is_empty(),
        "at least one measure is required"
    );
    let n = db.len();
    let plan = resolve_plan(db, options);
    cancel.checkpoint()?;
    let ctx = PrefilterContext::for_query(query, &options.solvers, plan != ResolvedPlan::Naive);

    let (exact, pruning): (Vec<Option<GcsVector>>, Option<PruneStats>) = match plan {
        ResolvedPlan::Naive => {
            let gcs = naive_verify(db, query, options, cancel)?;
            (gcs.into_iter().map(Some).collect(), None)
        }
        ResolvedPlan::Prefilter => {
            let summaries = summarize_all(db, query, options, &ctx);
            cancel.checkpoint()?;
            let mut v = Verifier::new(
                db,
                query,
                options,
                cancel,
                Frontier::Band {
                    k,
                    verified: Vec::new(),
                },
            );
            prefilter_verify(&mut v, &summaries)?;
            (v.exact, Some(v.stats))
        }
        ResolvedPlan::Indexed => {
            let index = options
                .index
                .as_ref()
                .expect("resolved Indexed implies an index")
                .clone();
            let mut summaries: Vec<Option<PrefilterSummary>> = vec![None; n];
            let mut v = Verifier::new(
                db,
                query,
                options,
                cancel,
                Frontier::Band {
                    k,
                    verified: Vec::new(),
                },
            );
            // No straggler pass and no summary backfill: the skyband
            // reports membership only, and a skipped partition's bound
            // already proves `k` dominators for every member (the bound is
            // ≤ each member's exact vector per dimension).
            run_partitions(&mut v, index.as_ref(), &ctx, &mut summaries)?;
            (v.exact, Some(v.stats))
        }
        ResolvedPlan::Sharded => {
            let summaries = summarize_all(db, query, options, &ctx);
            cancel.checkpoint()?;
            // Each shard runs the band frontier over its own range; a
            // local exclusion needs `k` *local* verified dominators, which
            // are true dominators, so no band member is ever excluded. For
            // the merged count the argument mirrors the band frontier's:
            // an unverified dominator of a candidate implies `k` verified
            // dominators by transitivity, so members (fewer than `k` true
            // dominators) have every dominator verified and the count over
            // the merged verified set is exact. Stats are not reported —
            // the per-shard verification totals vary with the shard count,
            // and unlike the skyline there is no invariant reported set to
            // derive them from.
            let shard_results = sharded_verify(db, query, options, cancel, &summaries, Some(k))?;
            let mut exact: Vec<Option<GcsVector>> = vec![None; n];
            // gss-lint: allow(cancellation-checkpoint) — linear merge bookkeeping after the checkpointed shard scans returned
            for (_, exacts) in shard_results {
                // gss-lint: allow(cancellation-checkpoint) — moves already-computed vectors, no solver
                for (i, g) in exacts {
                    exact[i] = Some(g);
                }
            }
            (exact, None)
        }
    };

    Ok(SkybandResult {
        k,
        members: band_members(&exact, k),
        plan,
        pruning,
    })
}

/// Skyband assembly: membership by final dominator count over the
/// verified vectors, delegated to [`gss_skyline::k_skyband`] on the
/// compacted verified subset (mirroring how the skyline assembly
/// delegates to [`gss_skyline::skyline`]). Pruned candidates are excluded
/// (they have ≥ `k` dominators by construction), and for a verified
/// candidate the verified-only count equals the true count — any
/// unverified dominator would imply ≥ `k` verified dominators by
/// transitivity.
fn band_members(exact: &[Option<GcsVector>], k: usize) -> Vec<GraphId> {
    let verified: Vec<usize> = (0..exact.len()).filter(|&i| exact[i].is_some()).collect();
    let points: Vec<Vec<f64>> = verified
        .iter()
        .map(|&i| exact[i].as_ref().expect("verified").values.clone())
        .collect();
    gss_skyline::k_skyband(&points, k)
        .into_iter()
        .map(|j| GraphId(verified[j]))
        .collect()
}

/// One witness per excluded graph: the first skyline member (ascending)
/// whose exact vector dominates the graph's lower-bound vector, else the
/// first dominating its exact vector. Lower bounds never exceed exact
/// values, so a lower-bound dominator is always a true dominator; the
/// two-step rule exists so pruned graphs (whose exact vector is unknown)
/// and verified graphs resolve through the same deterministic procedure.
fn compute_witnesses(
    n: usize,
    skyline: &[GraphId],
    exact: &[Option<GcsVector>],
    summaries: &[PrefilterSummary],
) -> Vec<DominationWitness> {
    let sky_point = |s: &GraphId| {
        &exact[s.index()]
            .as_ref()
            .expect("skyline members are verified")
            .values
    };
    let mut dominated = Vec::new();
    for i in 0..n {
        let id = GraphId(i);
        if skyline.binary_search(&id).is_ok() {
            continue;
        }
        let lower = &summaries[i].lower.values;
        let dominator = skyline
            .iter()
            .find(|s| dominance::dominates(sky_point(s), lower))
            .or_else(|| {
                let ev = &exact[i]
                    .as_ref()
                    .expect(
                        "an excluded graph is either pruned (lower-bound dominated) or verified",
                    )
                    .values;
                skyline
                    .iter()
                    .find(|s| dominance::dominates(sky_point(s), ev))
            })
            .copied()
            .expect("every excluded point has a skyline dominator");
        dominated.push(DominationWitness {
            graph: id,
            dominator,
        });
    }
    dominated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{graph_similarity_skyline, try_graph_similarity_skyline};
    use gss_datasets::paper::figure3_database;
    use std::time::Duration;

    fn paper_db() -> (GraphDatabase, Graph) {
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        (db, data.query)
    }

    #[test]
    fn plan_tokens_round_trip() {
        for plan in [
            Plan::Auto,
            Plan::Naive,
            Plan::Prefilter,
            Plan::Indexed,
            Plan::Sharded,
        ] {
            assert_eq!(Plan::parse(plan.name()), Some(plan));
        }
        assert_eq!(Plan::parse("quantum"), None);
        assert_eq!(Plan::default(), Plan::Auto);
    }

    #[test]
    fn auto_resolution_rules() {
        let (db, _) = paper_db(); // 7 graphs: below AUTO_PREFILTER_MIN
        let base = QueryOptions::default();
        assert_eq!(resolve_plan(&db, &base), ResolvedPlan::Naive);
        let pf = QueryOptions {
            prefilter: true,
            ..base.clone()
        };
        assert_eq!(resolve_plan(&db, &pf), ResolvedPlan::Prefilter);
        let explicit = QueryOptions {
            plan: Plan::Prefilter,
            ..base.clone()
        };
        assert_eq!(resolve_plan(&db, &explicit), ResolvedPlan::Prefilter);
        let forced_naive = QueryOptions {
            plan: Plan::Naive,
            prefilter: true,
            ..base.clone()
        };
        assert_eq!(resolve_plan(&db, &forced_naive), ResolvedPlan::Naive);

        // A big database flips Auto to the prefilter pipeline.
        let mut big = db.clone();
        let filler = big.get(GraphId(0)).clone();
        while big.len() < AUTO_PREFILTER_MIN {
            big.push(filler.clone());
        }
        assert_eq!(resolve_plan(&big, &base), ResolvedPlan::Prefilter);
    }

    #[test]
    #[should_panic(expected = "requires QueryOptions::index")]
    fn indexed_plan_without_index_panics() {
        let (db, _) = paper_db();
        resolve_plan(
            &db,
            &QueryOptions {
                plan: Plan::Indexed,
                ..QueryOptions::default()
            },
        );
    }

    #[test]
    fn cancel_token_fires_explicitly_and_by_deadline() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.checkpoint().is_ok());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled(), "clones share state");
        assert_eq!(t.checkpoint(), Err(Cancelled));

        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(expired.is_cancelled());
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
        assert_eq!(format!("{Cancelled}"), "query evaluation cancelled");
    }

    #[test]
    fn pre_cancelled_token_aborts_every_plan() {
        let (db, q) = paper_db();
        let token = CancelToken::new();
        token.cancel();
        for plan in [Plan::Auto, Plan::Naive, Plan::Prefilter, Plan::Sharded] {
            let opts = QueryOptions {
                plan,
                ..QueryOptions::default()
            };
            assert_eq!(
                try_graph_similarity_skyline(&db, &q, &opts, &token).err(),
                Some(Cancelled),
                "{plan:?}"
            );
            assert!(
                crate::query::try_graph_similarity_skyband(&db, &q, 2, &opts, &token).is_err(),
                "{plan:?}"
            );
        }
    }

    #[test]
    fn expired_deadline_token_aborts_the_scan() {
        let (db, q) = paper_db();
        let token = CancelToken::with_deadline(Instant::now());
        assert_eq!(
            skyline(&db, &q, &QueryOptions::default(), &token).err(),
            Some(Cancelled)
        );
    }

    #[test]
    fn batch_cancels_queries_independently() {
        let (db, q) = paper_db();
        let queries = vec![q.clone(), q];
        let live = CancelToken::new();
        let dead = CancelToken::new();
        dead.cancel();
        let results = skyline_batch(
            &db,
            &queries,
            &QueryOptions::default(),
            &[live, dead.clone()],
        );
        assert!(results[0].is_ok());
        assert_eq!(results[1].as_ref().err(), Some(&Cancelled));
    }

    #[test]
    fn result_reports_the_resolved_plan() {
        let (db, q) = paper_db();
        let naive = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        assert_eq!(naive.plan, ResolvedPlan::Naive);
        let pruned = graph_similarity_skyline(
            &db,
            &q,
            &QueryOptions {
                plan: Plan::Prefilter,
                ..QueryOptions::default()
            },
        );
        assert_eq!(pruned.plan, ResolvedPlan::Prefilter);
        assert_eq!(pruned.skyline, naive.skyline);
        assert_eq!(pruned.dominated, naive.dominated);
    }

    #[test]
    fn sharded_plan_matches_unsharded_answers_for_every_shard_count() {
        let (db, q) = paper_db();
        let naive = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        let mut docs: Vec<String> = Vec::new();
        // 7 candidates: exercise one shard, balanced splits, more shards
        // than candidates (clamped), and a degenerate giant count.
        for shards in [1usize, 2, 3, 7, 64] {
            let opts = QueryOptions::default().with_shards(shards);
            let r = graph_similarity_skyline(&db, &q, &opts);
            assert_eq!(r.plan, ResolvedPlan::Sharded, "shards={shards}");
            assert_eq!(r.skyline, naive.skyline, "shards={shards}");
            assert_eq!(r.dominated, naive.dominated, "shards={shards}");
            docs.push(crate::explain::to_json(&db, &r));
        }
        for (i, doc) in docs.iter().enumerate() {
            assert_eq!(
                doc, &docs[0],
                "sharded documents must be byte-identical across shard counts (case {i})"
            );
        }
    }

    #[test]
    fn sharded_document_is_thread_invariant() {
        let (db, q) = paper_db();
        let sequential = QueryOptions::default().with_shards(3);
        let threaded = QueryOptions {
            threads: 4,
            ..sequential.clone()
        };
        let a = graph_similarity_skyline(&db, &q, &sequential);
        let b = graph_similarity_skyline(&db, &q, &threaded);
        assert_eq!(
            crate::explain::to_json(&db, &a),
            crate::explain::to_json(&db, &b)
        );
    }

    #[test]
    fn sharded_skyband_matches_every_other_plan() {
        let (db, q) = paper_db();
        for k in 1..=3 {
            let naive =
                crate::query::graph_similarity_skyband(&db, &q, k, &QueryOptions::default());
            for shards in [1usize, 2, 5] {
                let opts = QueryOptions::default().with_shards(shards);
                let sharded = crate::query::graph_similarity_skyband(&db, &q, k, &opts);
                assert_eq!(sharded.members, naive.members, "k={k} shards={shards}");
                assert_eq!(sharded.plan, ResolvedPlan::Sharded);
                assert_eq!(sharded.pruning, None);
            }
        }
    }

    #[test]
    fn shard_ranges_cover_the_database_exactly() {
        for n in [0usize, 1, 2, 7, 16, 33] {
            for shards in 1..=9usize {
                let mut seen = Vec::new();
                for s in 0..shards {
                    seen.extend(shard_range(n, shards, s));
                }
                assert_eq!(seen, (0..n).collect::<Vec<_>>(), "n={n} shards={shards}");
            }
        }
    }

    #[test]
    fn band_members_counts_dominators() {
        let v = |values: Vec<f64>| Some(GcsVector { values });
        // p0 and p3 are incomparable; both dominate p1, which dominates
        // p2, so dominator counts are p0: 0, p1: 2, p2: 3, p3: 0.
        let exact = vec![
            v(vec![0.0, 1.0]),
            v(vec![1.0, 1.0]),
            v(vec![2.0, 2.0]),
            v(vec![1.0, 0.0]),
        ];
        assert_eq!(band_members(&exact, 0), Vec::<GraphId>::new());
        assert_eq!(band_members(&exact, 1), vec![GraphId(0), GraphId(3)]);
        assert_eq!(band_members(&exact, 2), vec![GraphId(0), GraphId(3)]);
        assert_eq!(
            band_members(&exact, 3),
            vec![GraphId(0), GraphId(1), GraphId(3)]
        );
        // A pruned (None) entry neither votes nor appears.
        let mut with_hole = exact.clone();
        with_hole[1] = None;
        assert_eq!(band_members(&with_hole, 1), vec![GraphId(0), GraphId(3)]);
    }
}
