//! Cheap per-measure lower bounds for the filter-and-verify query pipeline.
//!
//! The naive GSS scan (Section V of the paper) runs the exact solvers —
//! branch-and-bound GED and exact connected MCS — on *every* database graph,
//! which is the textbook bottleneck of graph similarity search. The cure,
//! standard in the filter-and-verify literature (MSQ-Index, pruned GED
//! search), is to compute **admissible lower bounds** on each local distance
//! first and skip the exact solvers whenever the bounds already prove a
//! candidate cannot contribute to the answer.
//!
//! This module computes, in `O(|V| log |V| + |E| log |E|)` per pair:
//!
//! * a **GED lower bound** — the maximum of the label-alignment bound
//!   (vertex + edge label multiset mismatches) and the degree-sequence bound
//!   (`gss_ged::combined_lower_bound`), optionally tightened by the
//!   edge-count difference;
//! * an **MCS upper bound** — the edge-class multiset intersection
//!   (`gss_graph::stats::mcs_upper_bound`), which upper-bounds the edge count
//!   of *any* common subgraph, connected or not. Because `DistMcs` and
//!   `DistGu` are strictly decreasing in `|mcs|`, an upper bound on `|mcs|`
//!   yields a lower bound on both distances;
//! * the **exact** label-histogram distance (it is already linear-time);
//! * a **distance-zero short-circuit**: when the candidate's 1-WL
//!   fingerprint matches the query's, the graphs are connected, and VF2
//!   confirms isomorphism, the exact GCS vector is all-zeros — no solver
//!   runs at all. Active only when both solvers are exact
//!   (see [`PrefilterContext::for_query`]): approximate solvers may report
//!   nonzero distances even for isomorphic pairs, and the pipeline promises
//!   byte-identical results to whatever the configured solvers produce.
//!
//! Soundness contract, relied on by the staged executor in [`crate::exec`]
//! (both the skyline's dominance pruning and the skyband's dominance
//! *counting*): for every measure `m`, `lower_bound_m(g, q) ≤ value_m(g, q)`
//! where `value_m` is whatever the configured solver reports — the bounds
//! hold for the *exact* solvers and remain valid for the approximate ones
//! (bipartite and beam GED only over-estimate, greedy MCS only
//! under-estimates `|mcs|`).

use gss_graph::stats::{
    degree_sequence, degree_sequence_l1_presorted, edge_class_multiset, edge_label_multiset,
    mcs_upper_bound, vertex_label_multiset, EdgeClass, GraphStats, Multiset,
};
use gss_graph::{algo, wl, Graph, Label};

use crate::measures::{GcsVector, GedMode, McsMode, MeasureKind, SolverConfig};

/// Number of 1-WL refinement rounds used for the equality short-circuit —
/// kept equal to the rounds baked into the cached per-graph summaries
/// ([`GraphStats::WL_ROUNDS`]) so cached and ad-hoc fingerprints compare.
const WL_ROUNDS: usize = GraphStats::WL_ROUNDS;

/// The cheap pair summary driving the pruned scan.
#[derive(Clone, Debug, PartialEq)]
pub struct PrefilterSummary {
    /// Per-measure lower bounds, in the query's measure order. Every entry
    /// is `≤` the corresponding exact (or approximate-solver) distance.
    pub lower: GcsVector,
    /// True when the candidate was proven isomorphic to the query: its exact
    /// GCS vector is all-zeros and no solver needs to run.
    pub isomorphic: bool,
}

impl PrefilterSummary {
    /// The exact all-zero GCS vector for an isomorphic candidate, or `None`
    /// when the exact vector still requires solving.
    pub fn known_exact(&self, measures: &[MeasureKind]) -> Option<GcsVector> {
        self.isomorphic.then(|| GcsVector {
            values: vec![0.0; measures.len()],
        })
    }
}

/// The cheap admissible GED lower bound used by the pipeline: label-multiset
/// alignment, degree-sequence alignment and the size difference, whichever
/// is largest.
pub fn ged_lower_bound(g: &Graph, q: &Graph) -> f64 {
    // The size (edge-count) difference is already implied by the edge-label
    // alignment bound, but stating it keeps the bound honest under future
    // changes to the alignment bounds.
    let size_diff = g.size().abs_diff(q.size()) as f64;
    gss_ged::combined_lower_bound(g, q).max(size_diff)
}

/// Upper bound on the connected-MCS edge count the exact solver can return:
/// the edge-class multiset intersection of the pair.
pub fn mcs_edge_upper_bound(g: &Graph, q: &Graph) -> usize {
    mcs_upper_bound(g, q) as usize
}

/// Lower-bounds one measure from the pair bounds.
///
/// `ged_lb` must be an admissible GED lower bound, `mcs_ub` an upper bound
/// on the MCS edge count, and `label_histogram` the *exact* histogram
/// distance (it is linear-time, so the prefilter computes it outright).
pub fn measure_lower_bound(
    measure: MeasureKind,
    ged_lb: f64,
    mcs_ub: usize,
    sizes: (usize, usize),
    label_histogram: f64,
) -> f64 {
    let (s1, s2) = sizes;
    let mcs = mcs_ub as f64;
    match measure {
        MeasureKind::EditDistance => ged_lb,
        // x / (1 + x) is increasing in x, so it maps a GED lower bound to a
        // normalized lower bound.
        MeasureKind::NormalizedEditDistance => ged_lb / (1.0 + ged_lb),
        // 1 − |mcs| / max and 1 − |mcs| / (s1 + s2 − |mcs|) are both
        // decreasing in |mcs|, so substituting the upper bound gives a lower
        // bound. The zero-denominator cases mirror MeasureKind::from_primitives.
        MeasureKind::Mcs => {
            let denom = s1.max(s2) as f64;
            if denom == 0.0 {
                0.0
            } else {
                1.0 - mcs / denom
            }
        }
        MeasureKind::Gu => {
            let denom = (s1 + s2) as f64 - mcs;
            if denom == 0.0 {
                0.0
            } else {
                1.0 - mcs / denom
            }
        }
        MeasureKind::LabelHistogram => label_histogram,
    }
}

/// Per-query state shared by every [`summarize`] call of one scan: the
/// query-side invariants — label multisets, edge-class multiset, sorted
/// degree sequence, WL fingerprint — are computed **once** instead of once
/// per candidate, and the (worst-case exponential) isomorphism
/// short-circuit is enabled only when it is both wanted and sound.
#[derive(Clone, Debug)]
pub struct PrefilterContext {
    query_fingerprint: u64,
    query_connected: bool,
    check_isomorphism: bool,
    vertex_labels: Multiset<Label>,
    edge_labels: Multiset<Label>,
    edge_classes: Multiset<EdgeClass>,
    degrees: Vec<usize>,
    order: usize,
    size: usize,
    label_total: u32,
}

impl PrefilterContext {
    /// Builds the context for one query scan.
    ///
    /// The isomorphism short-circuit claims the exact GCS vector is
    /// all-zeros, which is only what the configured solvers would report
    /// when both are **exact**: the bipartite/beam GED upper bounds and the
    /// greedy MCS legitimately return nonzero distances for isomorphic
    /// pairs, and the pipeline's contract is byte-identical results to
    /// whatever the solvers produce. With approximate (or budgeted) solvers
    /// the short-circuit is therefore disabled; lower-bound pruning remains
    /// active and sound.
    pub fn for_query(q: &Graph, solvers: &SolverConfig, prefilter: bool) -> Self {
        let check = prefilter && solvers.ged == GedMode::Exact && solvers.mcs == McsMode::Exact;
        let vertex_labels = vertex_label_multiset(q);
        let edge_labels = edge_label_multiset(q);
        let label_total = vertex_labels.total() + edge_labels.total();
        PrefilterContext {
            query_fingerprint: if check {
                wl::wl_fingerprint(q, WL_ROUNDS)
            } else {
                0
            },
            query_connected: check && algo::is_connected(q),
            check_isomorphism: check,
            vertex_labels,
            edge_labels,
            edge_classes: edge_class_multiset(q),
            degrees: degree_sequence(q),
            order: q.order(),
            size: q.size(),
            label_total,
        }
    }
}

/// Computes the pair summary for a candidate against the query.
///
/// `q` must be the graph the context was built for; all query-side
/// invariants (label multisets, degree sequence, WL fingerprint) come from
/// the context so only the candidate side is derived per call.
///
/// Standalone convenience form of [`summarize_with_stats`]: derives the
/// candidate-side [`GraphStats`] on the fly. Scans over a
/// [`crate::GraphDatabase`] use the cached per-graph summaries instead, so
/// the candidate side is computed once per graph ever, not once per scan.
pub fn summarize(
    g: &Graph,
    q: &Graph,
    measures: &[MeasureKind],
    ctx: &PrefilterContext,
) -> PrefilterSummary {
    summarize_with_stats(g, &GraphStats::compute(g), q, measures, ctx)
}

/// [`summarize`] with the candidate's precomputed [`GraphStats`]: the only
/// per-call work left is combining the two precomputed sides (multiset
/// intersections) and, for WL-equal pairs, the VF2 isomorphism check.
///
/// `stats` must describe `g` (the database stats cache guarantees this for
/// stored graphs).
pub fn summarize_with_stats(
    g: &Graph,
    stats: &GraphStats,
    q: &Graph,
    measures: &[MeasureKind],
    ctx: &PrefilterContext,
) -> PrefilterSummary {
    summarize_deferred(|| g, stats, q, measures, ctx)
}

/// [`summarize_with_stats`] with the candidate graph behind a thunk.
///
/// Everything the summary needs comes from `stats` and `ctx` — the only
/// consumer of the candidate *graph* is the VF2 isomorphism check behind
/// the WL-fingerprint short-circuit, which fires for a vanishing
/// fraction of candidates. Deferring the graph lets arena-backed
/// databases (`GraphDatabase::get` materializes lazily) prefilter whole
/// scans from contiguous stat columns without reconstructing a single
/// pruned candidate. `summarize_with_stats` delegates here, so both
/// entry points produce byte-identical summaries by construction.
pub fn summarize_deferred<'g>(
    graph: impl FnOnce() -> &'g Graph,
    stats: &GraphStats,
    q: &Graph,
    measures: &[MeasureKind],
    ctx: &PrefilterContext,
) -> PrefilterSummary {
    // Distance-zero short-circuit. Connectivity is required because the MCS
    // measures use the *connected* MCS: for a disconnected graph, even the
    // graph itself has DistMcs > 0, so all-zeros would be wrong.
    let isomorphic = ctx.check_isomorphism
        && ctx.query_connected
        && stats.wl_fingerprint == ctx.query_fingerprint
        && stats.connected
        && gss_iso::are_isomorphic(graph(), q);

    // Candidate-side summaries, combined with the context's query side —
    // the same quantities as `ged_lower_bound`/`mcs_edge_upper_bound`
    // without recomputing the query's half of each bound.
    let vertex_align = (stats.order.max(ctx.order) as u32)
        - stats.vertex_labels.intersection_size(&ctx.vertex_labels);
    let edge_align =
        (stats.size.max(ctx.size) as u32) - stats.edge_labels.intersection_size(&ctx.edge_labels);
    let degree_lb = degree_sequence_l1_presorted(&stats.degrees, &ctx.degrees).div_ceil(2);
    let size_diff = stats.size.abs_diff(ctx.size);
    let ged_lb = (f64::from(vertex_align + edge_align))
        .max(degree_lb as f64)
        .max(size_diff as f64);
    let mcs_ub = stats.edge_classes.intersection_size(&ctx.edge_classes) as usize;
    let sizes = (stats.size, ctx.size);
    let mismatch = stats
        .vertex_labels
        .symmetric_difference_size(&ctx.vertex_labels)
        + stats
            .edge_labels
            .symmetric_difference_size(&ctx.edge_labels);
    let total = stats.label_total() + ctx.label_total;
    let label_histogram = if total == 0 {
        0.0
    } else {
        f64::from(mismatch) / f64::from(total)
    };

    let lower = GcsVector {
        values: measures
            .iter()
            .map(|&m| measure_lower_bound(m, ged_lb, mcs_ub, sizes, label_histogram))
            .collect(),
    };
    PrefilterSummary { lower, isomorphic }
}

/// Counters describing what the pruned scan did, for `explain` output and
/// benchmarking. Skyline queries fill them via [`crate::GssResult::pruning`],
/// skyband queries via [`crate::SkybandResult::pruning`]; a naive-plan run
/// reports `None` instead.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Database size (candidates considered).
    pub candidates: usize,
    /// Candidates whose exact GCS vector was computed by the solvers.
    pub verified: usize,
    /// Candidates skipped because their lower-bound vector was dominated by
    /// an already-verified exact vector.
    pub pruned: usize,
    /// Candidates resolved by the WL + isomorphism distance-zero
    /// short-circuit (no solver ran; their exact vector is all-zeros).
    pub short_circuited: usize,
    /// Candidates skipped wholesale by the metric index: their partition's
    /// bound vector was dominated before any per-candidate work
    /// (no summary, no solver). Zero without [`crate::QueryOptions::index`].
    pub index_skipped: usize,
    /// Partitions in the index plan (zero without an index).
    pub index_partitions: usize,
    /// Partitions skipped wholesale.
    pub index_partitions_skipped: usize,
    /// Cheap query-to-pivot probes the index plan cost (bound computations,
    /// not exact solver calls).
    pub pivot_probes: usize,
}

impl PruneStats {
    /// Fraction of candidates that skipped exact solving, in `[0, 1]`.
    pub fn pruning_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            (self.pruned + self.short_circuited + self.index_skipped) as f64
                / self.candidates as f64
        }
    }

    /// Fraction of candidates the index skipped before any per-candidate
    /// lower-bound computation, in `[0, 1]`.
    pub fn index_skip_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.index_skipped as f64 / self.candidates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::{compute_primitives, label_histogram_stats, SolverConfig};
    use gss_graph::{GraphBuilder, Vocabulary};

    fn pair() -> (Graph, Graph) {
        let mut v = Vocabulary::new();
        let a = GraphBuilder::new("a", &mut v)
            .vertex("x", "A")
            .vertex("y", "B")
            .vertex("z", "C")
            .path(&["x", "y", "z"], "-")
            .build()
            .unwrap();
        let b = GraphBuilder::new("b", &mut v)
            .vertex("x", "A")
            .vertex("y", "B")
            .vertex("w", "W")
            .edge("x", "y", "-")
            .edge("y", "w", "=")
            .build()
            .unwrap();
        (a, b)
    }

    fn exact_ctx(q: &Graph) -> PrefilterContext {
        PrefilterContext::for_query(q, &SolverConfig::default(), true)
    }

    #[test]
    fn lower_bounds_never_exceed_exact_values() {
        let (a, b) = pair();
        let measures = [
            MeasureKind::EditDistance,
            MeasureKind::NormalizedEditDistance,
            MeasureKind::Mcs,
            MeasureKind::Gu,
            MeasureKind::LabelHistogram,
        ];
        let summary = summarize(&a, &b, &measures, &exact_ctx(&b));
        let p = compute_primitives(&a, &b, &SolverConfig::default());
        for (i, m) in measures.iter().enumerate() {
            let exact = m.from_primitives(&p);
            assert!(
                summary.lower.values[i] <= exact + 1e-12,
                "{}: lower {} > exact {}",
                m.name(),
                summary.lower.values[i],
                exact
            );
        }
        assert!(!summary.isomorphic);
    }

    #[test]
    fn isomorphic_pair_short_circuits_to_zero() {
        let (a, _) = pair();
        let summary = summarize(&a, &a, &MeasureKind::paper_query_measures(), &exact_ctx(&a));
        assert!(summary.isomorphic);
        let exact = summary
            .known_exact(&MeasureKind::paper_query_measures())
            .unwrap();
        assert_eq!(exact.values, vec![0.0, 0.0, 0.0]);
        // The short-circuit vector must be byte-identical to what the
        // solvers produce.
        let p = compute_primitives(&a, &a, &SolverConfig::default());
        for (i, m) in MeasureKind::paper_query_measures().iter().enumerate() {
            assert_eq!(exact.values[i], m.from_primitives(&p));
        }
    }

    #[test]
    fn disconnected_graphs_do_not_short_circuit() {
        // Two components: the connected MCS of the graph with itself misses
        // the smaller component, so DistMcs(g, g) > 0 and all-zeros would be
        // unsound.
        let mut v = Vocabulary::new();
        let g = GraphBuilder::new("two", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .edge("a", "b", "-")
            .edge("c", "d", "-")
            .build()
            .unwrap();
        let summary = summarize(&g, &g, &MeasureKind::paper_query_measures(), &exact_ctx(&g));
        assert!(
            !summary.isomorphic,
            "disconnected pairs must go through the solvers"
        );
        let p = compute_primitives(&g, &g, &SolverConfig::default());
        assert!(MeasureKind::Mcs.from_primitives(&p) > 0.0);
    }

    #[test]
    fn empty_pair_is_safe() {
        let mut v = Vocabulary::new();
        let e1 = GraphBuilder::new("e1", &mut v).build().unwrap();
        let e2 = GraphBuilder::new("e2", &mut v).build().unwrap();
        let summary = summarize(
            &e1,
            &e2,
            &MeasureKind::paper_query_measures(),
            &exact_ctx(&e2),
        );
        for lb in &summary.lower.values {
            assert_eq!(*lb, 0.0);
        }
    }

    #[test]
    fn approximate_solvers_disable_the_short_circuit() {
        use crate::measures::{GedMode, McsMode};
        let (a, _) = pair();
        for solvers in [
            SolverConfig {
                ged: GedMode::Bipartite,
                ..SolverConfig::default()
            },
            SolverConfig {
                mcs: McsMode::Greedy,
                ..SolverConfig::default()
            },
            SolverConfig {
                ged: GedMode::Beam(4),
                mcs: McsMode::Greedy,
            },
            SolverConfig {
                ged: GedMode::ExactBudget(10),
                ..SolverConfig::default()
            },
        ] {
            let ctx = PrefilterContext::for_query(&a, &solvers, true);
            let summary = summarize(&a, &a, &MeasureKind::paper_query_measures(), &ctx);
            assert!(!summary.isomorphic, "{solvers:?} must not short-circuit");
        }
        // Lower bounds are still produced.
        let ctx = PrefilterContext::for_query(
            &a,
            &SolverConfig {
                ged: GedMode::Bipartite,
                mcs: McsMode::Greedy,
            },
            true,
        );
        let summary = summarize(&a, &a, &MeasureKind::paper_query_measures(), &ctx);
        assert_eq!(summary.lower.values, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn context_path_matches_standalone_bounds() {
        // `summarize` combines the hoisted query-side invariants with the
        // candidate side; the result must be exactly what the standalone
        // pair functions compute.
        let (a, b) = pair();
        let measures = [
            MeasureKind::EditDistance,
            MeasureKind::NormalizedEditDistance,
            MeasureKind::Mcs,
            MeasureKind::Gu,
            MeasureKind::LabelHistogram,
        ];
        let summary = summarize(&a, &b, &measures, &exact_ctx(&b));
        let ged_lb = ged_lower_bound(&a, &b);
        let mcs_ub = mcs_edge_upper_bound(&a, &b);
        let (mismatch, total) = label_histogram_stats(&a, &b);
        let lh = f64::from(mismatch) / f64::from(total);
        for (i, m) in measures.iter().enumerate() {
            assert_eq!(
                summary.lower.values[i],
                measure_lower_bound(*m, ged_lb, mcs_ub, (a.size(), b.size()), lh),
                "{}",
                m.name()
            );
        }
    }

    #[test]
    fn cached_stats_path_matches_ad_hoc_summaries() {
        // `summarize_with_stats` fed from the database cache must produce
        // exactly what the standalone `summarize` computes, for exact and
        // approximate solver configs alike.
        use crate::database::{GraphDatabase, GraphId};
        let (a, b) = pair();
        let mut db = GraphDatabase::new();
        let ida = db.push(a.clone());
        let _ = db.push(b.clone());
        for solvers in [
            SolverConfig::default(),
            SolverConfig {
                ged: GedMode::Bipartite,
                mcs: McsMode::Greedy,
            },
        ] {
            let ctx = PrefilterContext::for_query(&b, &solvers, true);
            for id in [ida, GraphId(1)] {
                let g = db.get(id).clone();
                let cached = summarize_with_stats(
                    &g,
                    db.stats(id),
                    &b,
                    &MeasureKind::paper_query_measures(),
                    &ctx,
                );
                let ad_hoc = summarize(&g, &b, &MeasureKind::paper_query_measures(), &ctx);
                assert_eq!(cached, ad_hoc, "{solvers:?} g{}", id.index());
            }
        }
    }

    #[test]
    fn pruning_rate_arithmetic() {
        let stats = PruneStats {
            candidates: 10,
            verified: 4,
            pruned: 5,
            short_circuited: 1,
            ..PruneStats::default()
        };
        assert!((stats.pruning_rate() - 0.6).abs() < 1e-12);
        assert_eq!(stats.index_skip_rate(), 0.0);
        assert_eq!(PruneStats::default().pruning_rate(), 0.0);
        assert_eq!(PruneStats::default().index_skip_rate(), 0.0);

        let indexed = PruneStats {
            candidates: 10,
            verified: 2,
            pruned: 2,
            short_circuited: 1,
            index_skipped: 5,
            index_partitions: 4,
            index_partitions_skipped: 2,
            pivot_probes: 3,
        };
        assert!((indexed.pruning_rate() - 0.8).abs() < 1e-12);
        assert!((indexed.index_skip_rate() - 0.5).abs() < 1e-12);
    }
}
