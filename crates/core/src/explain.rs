//! Dominance explanations and result serialization.
//!
//! The paper argues (Section VI) that returning each answer "with a vector
//! of scores showing different similarities" is itself a feature of the
//! skyline approach. This module turns a [`GssResult`] into explanation
//! structures — per-graph dominator lists with per-dimension comparisons —
//! and serializes results to a small, dependency-free JSON subset for
//! scripting consumers of the `gss` CLI.

use std::fmt::Write as _;

use crate::database::{GraphDatabase, GraphId};
use crate::jsonio::escape as json_escape;
use crate::query::{BatchStats, GssResult};

/// Why (or why not) one graph is in the skyline, in full detail.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The graph being explained.
    pub graph: GraphId,
    /// True when the graph is Pareto-optimal.
    pub in_skyline: bool,
    /// True when the explanation rests on the graph's exact GCS vector;
    /// false for graphs the filter-and-verify pipeline pruned (their
    /// dominator list is then derived from the lower-bound vector — sound,
    /// but possibly incomplete).
    pub exact: bool,
    /// Every database graph that similarity-dominates it (empty for skyline
    /// members), ascending. Only verified graphs are listed as dominators
    /// (a pruned graph's stored vector is a lower bound and must not be
    /// credited with dominating anything).
    pub dominators: Vec<GraphId>,
    /// Dimensions (measure indices) on which the graph is the unique best
    /// among the verified vectors — the paper's "most interesting w.r.t. X"
    /// remarks (e.g. g4 for DistEd, g1 for DistMcs, g7 for DistGu). A
    /// pruned graph never appears here: its dominator ties-or-beats it on
    /// every dimension.
    pub best_dimensions: Vec<usize>,
}

/// Builds explanations for every database graph from a query result.
///
/// For naive results every vector is exact and the output is exhaustive.
/// For pruned results ([`crate::QueryOptions::prefilter`]) the dominator
/// lists consider verified vectors only; a pruned graph keeps at least its
/// recorded witness.
pub fn explain_all(result: &GssResult) -> Vec<Explanation> {
    let n = result.gcs.len();
    let points: Vec<&Vec<f64>> = result.gcs.iter().map(|g| &g.values).collect();
    let dims = result.measures.len();

    // Unique minimum per dimension, among verified vectors.
    let mut best_of_dim: Vec<Option<usize>> = Vec::with_capacity(dims);
    for d in 0..dims {
        let mut best: Option<(usize, f64)> = None;
        let mut unique = true;
        for (i, p) in points.iter().enumerate() {
            if !result.evaluated[i] {
                continue;
            }
            match best {
                None => best = Some((i, p[d])),
                Some((_, v)) if p[d] < v => {
                    best = Some((i, p[d]));
                    unique = true;
                }
                Some((_, v)) if p[d] == v => unique = false,
                _ => {}
            }
        }
        best_of_dim.push(best.filter(|_| unique).map(|(i, _)| i));
    }

    (0..n)
        .map(|i| {
            // Comparing a verified vector (j) against a lower bound (i,
            // when pruned) is sound: dominating the lower bound implies
            // dominating the true vector.
            let mut dominators: Vec<GraphId> = (0..n)
                .filter(|&j| {
                    j != i && result.evaluated[j] && gss_skyline::dominates(points[j], points[i])
                })
                .map(GraphId)
                .collect();
            if dominators.is_empty() {
                // A pruned graph whose lower bound is only *equalled* by its
                // dominator still has a recorded witness — keep it so the
                // explanation never claims Pareto-optimality for a pruned
                // graph.
                if let Some(w) = result.witness_for(GraphId(i)) {
                    dominators.push(w);
                }
            }
            let best_dimensions: Vec<usize> =
                (0..dims).filter(|&d| best_of_dim[d] == Some(i)).collect();
            Explanation {
                graph: GraphId(i),
                in_skyline: dominators.is_empty(),
                exact: result.evaluated[i],
                dominators,
                best_dimensions,
            }
        })
        .collect()
}

/// Serializes a query result as JSON (stable key order, no dependencies):
///
/// ```json
/// {
///   "measures": ["DistEd", "DistMcs", "DistGu"],
///   "plan": "naive",
///   "graphs": [
///     {"name": "g1", "gcs": [4.0, 0.33, 0.5], "in_skyline": true,
///      "dominators": [], "best_dimensions": [1]},
///     …
///   ],
///   "skyline": ["g1", "g4"]
/// }
/// ```
pub fn to_json(db: &GraphDatabase, result: &GssResult) -> String {
    let explanations = explain_all(result);
    let pruned_run = result.pruning.is_some();
    let mut out = String::from("{\n  \"measures\": [");
    for (i, m) in result.measures.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", json_escape(m.name()));
    }
    let _ = write!(out, "],\n  \"plan\": \"{}\"", result.plan.name());
    out.push_str(",\n  \"graphs\": [\n");
    for (i, ex) in explanations.iter().enumerate() {
        let name = json_escape(db.get(ex.graph).name());
        let values: Vec<String> = result.gcs[i]
            .values
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        let dominators: Vec<String> = ex
            .dominators
            .iter()
            .map(|d| format!("\"{}\"", json_escape(db.get(*d).name())))
            .collect();
        let dims: Vec<String> = ex.best_dimensions.iter().map(usize::to_string).collect();
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"gcs\": [{}], \"in_skyline\": {}, \"dominators\": [{}], \"best_dimensions\": [{}]",
            name,
            values.join(", "),
            ex.in_skyline,
            dominators.join(", "),
            dims.join(", ")
        );
        if pruned_run {
            // Only pruned runs distinguish exact vectors from lower bounds;
            // the key is omitted otherwise to keep the naive JSON stable.
            let _ = write!(out, ", \"exact\": {}", ex.exact);
        }
        out.push('}');
        out.push_str(if i + 1 < explanations.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"skyline\": [");
    for (i, id) in result.skyline.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", json_escape(db.get(*id).name()));
    }
    out.push(']');
    if let Some(stats) = &result.pruning {
        let _ = write!(
            out,
            ",\n  \"pruning\": {{\"candidates\": {}, \"verified\": {}, \"pruned\": {}, \"short_circuited\": {}, \"rate\": {:.4}",
            stats.candidates, stats.verified, stats.pruned, stats.short_circuited, stats.pruning_rate()
        );
        if stats.index_partitions > 0 {
            // Index fields appear only for indexed scans, keeping the
            // prefilter-only JSON byte-stable across engine versions.
            let _ = write!(
                out,
                ", \"index_skipped\": {}, \"index_skip_rate\": {:.4}, \"index_partitions\": {}, \"index_partitions_skipped\": {}, \"pivot_probes\": {}",
                stats.index_skipped,
                stats.index_skip_rate(),
                stats.index_partitions,
                stats.index_partitions_skipped,
                stats.pivot_probes
            );
        }
        out.push('}');
    }
    out.push_str("\n}\n");
    out
}

/// Serializes aggregated batch counters as a one-line JSON object — the
/// `"batch"` payload of [`to_json_batch`] and of the `gss-server` `stats`
/// verb. `verified` counts exact solver calls.
pub fn batch_stats_to_json(stats: &BatchStats) -> String {
    format!(
        "{{\"queries\": {}, \"candidates\": {}, \"evaluated\": {}, \"verified\": {}, \
         \"pruned\": {}, \"short_circuited\": {}, \"index_skipped\": {}, \"pruning_rate\": {:.4}}}",
        stats.queries,
        stats.candidates,
        stats.evaluated,
        stats.verified,
        stats.pruned,
        stats.short_circuited,
        stats.index_skipped,
        stats.pruning_rate()
    )
}

/// Serializes a whole batch of results (from
/// [`crate::graph_similarity_skyline_batch`]): the aggregated
/// [`BatchStats`] followed by the per-query explain documents, in query
/// order.
pub fn to_json_batch(db: &GraphDatabase, results: &[GssResult]) -> String {
    let stats = BatchStats::aggregate(results);
    let mut out = String::from("{\n  \"batch\": ");
    out.push_str(&batch_stats_to_json(&stats));
    out.push_str(",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(to_json(db, r).trim_end());
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{graph_similarity_skyline, QueryOptions};
    use gss_datasets::paper::figure3_database;

    fn paper_result() -> (GraphDatabase, GssResult) {
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        let r = graph_similarity_skyline(&db, &data.query, &QueryOptions::default());
        (db, r)
    }

    #[test]
    fn explanations_match_the_papers_discussion() {
        let (_db, r) = paper_result();
        let ex = explain_all(&r);
        // g4 is the unique best on DistEd (dim 0), g1 on DistMcs (dim 1),
        // g7 on DistGu (dim 2) — exactly Section VI's remarks.
        assert_eq!(ex[3].best_dimensions, vec![0], "g4 best by DistEd");
        assert_eq!(ex[0].best_dimensions, vec![1], "g1 best by DistMcs");
        assert_eq!(ex[6].best_dimensions, vec![2], "g7 best by DistGu");
        // g5 is the "good compromise": best nowhere yet in the skyline.
        assert!(ex[4].in_skyline);
        assert!(ex[4].best_dimensions.is_empty());
        // Dominator lists: g3 dominated (exactly) by g5.
        assert_eq!(ex[2].dominators, vec![GraphId(4)]);
        // Skyline members have no dominators.
        for e in &ex {
            assert_eq!(e.in_skyline, e.dominators.is_empty());
        }
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_names() {
        let (db, r) = paper_result();
        let json = to_json(&db, &r);
        // Structural spot-checks (no JSON parser in the dependency set —
        // check the invariants that matter to consumers).
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"name\":").count(), 7);
        assert!(json.contains("\"measures\": [\"DistEd\", \"DistMcs\", \"DistGu\"]"));
        assert!(json.contains("\"plan\": \"naive\""), "{json}");
        assert!(json.contains("\"skyline\": [\"g1\", \"g4\", \"g5\", \"g7\"]"));
        // Balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn pruned_results_explain_soundly() {
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        let opts = QueryOptions {
            prefilter: true,
            ..QueryOptions::default()
        };
        let r = graph_similarity_skyline(&db, &data.query, &opts);
        let naive = graph_similarity_skyline(&db, &data.query, &QueryOptions::default());
        let ex = explain_all(&r);
        let naive_ex = explain_all(&naive);
        for (e, ne) in ex.iter().zip(&naive_ex) {
            // Skyline membership agrees with the naive explanation.
            assert_eq!(e.in_skyline, ne.in_skyline, "graph {:?}", e.graph);
            // Pruned graphs are flagged and never claimed Pareto-optimal.
            if !e.exact {
                assert!(!e.in_skyline);
                assert!(!e.dominators.is_empty());
            }
            // Every listed dominator really dominates in the naive matrix.
            for d in &e.dominators {
                assert!(gss_skyline::dominates(
                    &naive.gcs[d.index()].values,
                    &naive.gcs[e.graph.index()].values
                ));
            }
        }
        // JSON carries the pruning summary and per-graph exactness.
        let json = to_json(&db, &r);
        assert!(json.contains("\"pruning\": {"));
        assert!(json.contains("\"exact\": true"));
        // Braces stay balanced with the extra object.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn batch_json_aggregates_stats() {
        use crate::query::{graph_similarity_skyline_batch, BatchStats};
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        let queries = vec![data.query.clone(), db.get(GraphId(0)).clone()];
        let opts = QueryOptions {
            prefilter: true,
            ..QueryOptions::default()
        };
        let results = graph_similarity_skyline_batch(&db, &queries, &opts);
        let stats = BatchStats::aggregate(&results);
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.candidates, 2 * db.len());
        assert_eq!(
            stats.verified + stats.pruned + stats.short_circuited + stats.index_skipped,
            stats.candidates
        );
        let json = to_json_batch(&db, &results);
        assert!(json.contains("\"batch\": {\"queries\": 2"), "{json}");
        assert_eq!(json.matches("\"skyline\":").count(), 2);
        // The whole document parses with the workspace JSON parser.
        let v = crate::jsonio::Value::parse(&json).expect("valid JSON");
        assert_eq!(
            v.get("batch")
                .and_then(|b| b.get("queries"))
                .and_then(crate::jsonio::Value::as_f64),
            Some(2.0)
        );
        assert_eq!(
            v.get("results")
                .and_then(crate::jsonio::Value::as_array)
                .map(<[_]>::len),
            Some(2)
        );
    }
}
