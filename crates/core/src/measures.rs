//! The paper's local distance measures and their shared primitives.
//!
//! All three measures of Section IV (and the normalized edit distance used
//! by Section VII) are functions of two *primitives* of a graph pair: the
//! uniform graph edit distance and the connected maximum-common-subgraph
//! edge count. [`compute_primitives`] runs the configured exact/approximate
//! solvers once per pair and every requested measure derives from the result
//! ([`MeasureKind::from_primitives`]), so adding a dimension to a query
//! costs almost nothing extra.

use std::cell::RefCell;

use gss_ged::{beam::beam_ged, bipartite::bipartite_ged_with, exact_ged, CostModel, GedOptions};
use gss_graph::Graph;
use gss_mcs::{greedy::greedy_mcs, mcs_edge_size};

thread_local! {
    /// Per-thread bipartite-GED workspace (flat cost matrix + Hungarian
    /// dual/slack buffers), reused across every candidate evaluation a
    /// worker thread performs in a scan. Thread-local rather than plumbed
    /// through the public API: the wave-parallel scans hand contiguous
    /// candidate ranges to each worker, so one workspace per thread gives
    /// the same reuse as explicit caller-provided plumbing with zero
    /// signature churn. Results are bit-identical to fresh buffers
    /// (property-tested in `gss-ged`).
    static GED_WORKSPACE: RefCell<gss_ged::Workspace> = RefCell::new(gss_ged::Workspace::new());
}

/// Which GED solver the evaluator runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum GedMode {
    /// Exact branch and bound (warm-started by the bipartite bound).
    #[default]
    Exact,
    /// Exact search with a node budget; falls back to the best mapping found
    /// (an upper bound) when the budget runs out.
    ExactBudget(u64),
    /// Riesen–Bunke bipartite upper bound only.
    Bipartite,
    /// Beam search with the given width.
    Beam(usize),
}

/// Which MCS solver the evaluator runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum McsMode {
    /// Exact branch and bound.
    #[default]
    Exact,
    /// Multi-start greedy (lower bound on `|mcs|`).
    Greedy,
}

/// Solver configuration for a query.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverConfig {
    /// GED solver choice.
    pub ged: GedMode,
    /// MCS solver choice.
    pub mcs: McsMode,
}

/// The shared primitives of a pair.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PairPrimitives {
    /// (Possibly approximate) uniform graph edit distance.
    pub ged: f64,
    /// (Possibly approximate) connected MCS size in edges.
    pub mcs_edges: usize,
    /// Sizes `|g1|`, `|g2|` in edges.
    pub sizes: (usize, usize),
    /// Size of the symmetric difference of the combined vertex+edge label
    /// multisets (exact, `O(|V|+|E|)`).
    pub label_mismatch: u32,
    /// Total label occurrences across both graphs
    /// (`|V1|+|E1|+|V2|+|E2|`), the normalizer for the histogram measure.
    pub label_total: u32,
}

/// The local distance measures of the paper.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MeasureKind {
    /// `DistEd` — uniform graph edit distance (Definition 8). Unbounded.
    EditDistance,
    /// `DistN-Ed = x / (1 + x)` — the normalized edit distance of
    /// Section VII. In `[0, 1)`.
    NormalizedEditDistance,
    /// `DistMcs = 1 − |mcs| / max(|g1|, |g2|)` (Definition 9, Bunke–Shearer).
    Mcs,
    /// `DistGu = 1 − |mcs| / (|g1| + |g2| − |mcs|)` (Definition 10, Wallis
    /// et al. graph-union / Jaccard form).
    Gu,
    /// **Extension** (not in the paper): the normalized label-histogram
    /// distance — the symmetric difference of the combined vertex+edge
    /// label multisets over the total label count. A structure-free
    /// `O(|V|+|E|)` feature measure in `[0, 1]`, usable as an extra GCS
    /// dimension or a cheap pre-filter. It lower-bound-correlates with GED:
    /// every mismatched label needs at least one edit operation.
    LabelHistogram,
}

impl MeasureKind {
    /// Display name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            MeasureKind::EditDistance => "DistEd",
            MeasureKind::NormalizedEditDistance => "DistN-Ed",
            MeasureKind::Mcs => "DistMcs",
            MeasureKind::Gu => "DistGu",
            MeasureKind::LabelHistogram => "DistLH",
        }
    }

    /// Derives the measure value from pair primitives.
    pub fn from_primitives(self, p: &PairPrimitives) -> f64 {
        let (s1, s2) = p.sizes;
        let mcs = p.mcs_edges as f64;
        match self {
            MeasureKind::EditDistance => p.ged,
            MeasureKind::NormalizedEditDistance => p.ged / (1.0 + p.ged),
            MeasureKind::Mcs => {
                let denom = s1.max(s2) as f64;
                if denom == 0.0 {
                    0.0 // two empty graphs are identical
                } else {
                    1.0 - mcs / denom
                }
            }
            MeasureKind::Gu => {
                let denom = (s1 + s2) as f64 - mcs;
                if denom == 0.0 {
                    0.0
                } else {
                    1.0 - mcs / denom
                }
            }
            MeasureKind::LabelHistogram => {
                if p.label_total == 0 {
                    0.0
                } else {
                    f64::from(p.label_mismatch) / f64::from(p.label_total)
                }
            }
        }
    }

    /// The measure set of the paper's Section V/VI queries:
    /// `GCS = (DistEd, DistMcs, DistGu)`.
    pub fn paper_query_measures() -> Vec<MeasureKind> {
        vec![MeasureKind::EditDistance, MeasureKind::Mcs, MeasureKind::Gu]
    }

    /// The measure set of the paper's Section VII diversity refinement:
    /// `(DistN-Ed, DistMcs, DistGu)`.
    pub fn paper_diversity_measures() -> Vec<MeasureKind> {
        vec![
            MeasureKind::NormalizedEditDistance,
            MeasureKind::Mcs,
            MeasureKind::Gu,
        ]
    }
}

/// Computes pair primitives under a [`SolverConfig`].
pub fn compute_primitives(g1: &Graph, g2: &Graph, config: &SolverConfig) -> PairPrimitives {
    let cost = CostModel::uniform();
    let bipartite = |g1: &Graph, g2: &Graph| {
        GED_WORKSPACE.with(|ws| bipartite_ged_with(g1, g2, &cost, &mut ws.borrow_mut()))
    };
    let ged = match config.ged {
        GedMode::Exact => {
            let warm = bipartite(g1, g2);
            exact_ged(
                g1,
                g2,
                &GedOptions {
                    cost,
                    warm_start: Some(warm.mapping),
                    node_limit: None,
                },
            )
            .cost
        }
        GedMode::ExactBudget(limit) => {
            let warm = bipartite(g1, g2);
            exact_ged(
                g1,
                g2,
                &GedOptions {
                    cost,
                    warm_start: Some(warm.mapping),
                    node_limit: Some(limit),
                },
            )
            .cost
        }
        GedMode::Bipartite => bipartite(g1, g2).cost,
        GedMode::Beam(width) => beam_ged(g1, g2, &cost, width).cost,
    };
    let mcs_edges = match config.mcs {
        McsMode::Exact => mcs_edge_size(g1, g2),
        McsMode::Greedy => greedy_mcs(g1, g2, usize::MAX).edges(),
    };
    let (label_mismatch, label_total) = label_histogram_stats(g1, g2);
    PairPrimitives {
        ged,
        mcs_edges,
        sizes: (g1.size(), g2.size()),
        label_mismatch,
        label_total,
    }
}

/// Symmetric-difference and total size of the combined vertex+edge label
/// multisets of a pair.
pub(crate) fn label_histogram_stats(g1: &Graph, g2: &Graph) -> (u32, u32) {
    use gss_graph::stats::{edge_label_multiset, vertex_label_multiset};
    let (v1, v2) = (vertex_label_multiset(g1), vertex_label_multiset(g2));
    let (e1, e2) = (edge_label_multiset(g1), edge_label_multiset(g2));
    let mismatch = v1.symmetric_difference_size(&v2) + e1.symmetric_difference_size(&e2);
    let total = v1.total() + v2.total() + e1.total() + e2.total();
    (mismatch, total)
}

/// A graph compound similarity vector (Definition 11): one local distance
/// per requested measure, in measure order.
#[derive(Clone, Debug, PartialEq)]
pub struct GcsVector {
    /// The distance values.
    pub values: Vec<f64>,
}

impl GcsVector {
    /// Builds the GCS vector for a pair.
    pub fn compute(
        g1: &Graph,
        g2: &Graph,
        measures: &[MeasureKind],
        config: &SolverConfig,
    ) -> GcsVector {
        let p = compute_primitives(g1, g2, config);
        GcsVector {
            values: measures.iter().map(|m| m.from_primitives(&p)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::{GraphBuilder, Vocabulary};

    fn pair() -> (Graph, Graph) {
        let mut v = Vocabulary::new();
        let a = GraphBuilder::new("a", &mut v)
            .vertex("x", "A")
            .vertex("y", "B")
            .vertex("z", "C")
            .path(&["x", "y", "z"], "-")
            .build()
            .unwrap();
        let b = GraphBuilder::new("b", &mut v)
            .vertex("x", "A")
            .vertex("y", "B")
            .vertex("w", "W")
            .edge("x", "y", "-")
            .edge("y", "w", "-")
            .build()
            .unwrap();
        (a, b)
    }

    #[test]
    fn primitives_and_measures() {
        let (a, b) = pair();
        let p = compute_primitives(&a, &b, &SolverConfig::default());
        assert_eq!(p.ged, 1.0); // relabel C→W
        assert_eq!(p.mcs_edges, 1); // shared A-B edge… plus? B-C vs B-W blocked → 1
        assert_eq!(p.sizes, (2, 2));
        assert_eq!(MeasureKind::EditDistance.from_primitives(&p), 1.0);
        assert_eq!(MeasureKind::NormalizedEditDistance.from_primitives(&p), 0.5);
        assert_eq!(MeasureKind::Mcs.from_primitives(&p), 0.5);
        let gu = MeasureKind::Gu.from_primitives(&p);
        assert!((gu - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn gu_is_stronger_than_mcs() {
        // SimGu ≤ SimMcs ⟺ DistGu ≥ DistMcs — the paper's Section IV-C remark.
        let (a, b) = pair();
        let p = compute_primitives(&a, &b, &SolverConfig::default());
        assert!(MeasureKind::Gu.from_primitives(&p) >= MeasureKind::Mcs.from_primitives(&p));
    }

    #[test]
    fn empty_graph_measures_are_defined() {
        let mut v = Vocabulary::new();
        let e1 = GraphBuilder::new("e1", &mut v).build().unwrap();
        let e2 = GraphBuilder::new("e2", &mut v).build().unwrap();
        let p = compute_primitives(&e1, &e2, &SolverConfig::default());
        for m in [
            MeasureKind::EditDistance,
            MeasureKind::NormalizedEditDistance,
            MeasureKind::Mcs,
            MeasureKind::Gu,
        ] {
            assert_eq!(m.from_primitives(&p), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn approximate_solvers_bound_exact() {
        let (a, b) = pair();
        let exact = compute_primitives(&a, &b, &SolverConfig::default());
        let approx = compute_primitives(
            &a,
            &b,
            &SolverConfig {
                ged: GedMode::Bipartite,
                mcs: McsMode::Greedy,
            },
        );
        assert!(
            approx.ged >= exact.ged - 1e-9,
            "bipartite is an upper bound"
        );
        assert!(
            approx.mcs_edges <= exact.mcs_edges,
            "greedy is a lower bound"
        );
        let beam = compute_primitives(
            &a,
            &b,
            &SolverConfig {
                ged: GedMode::Beam(8),
                ..Default::default()
            },
        );
        assert!(beam.ged >= exact.ged - 1e-9);
        let budget = compute_primitives(
            &a,
            &b,
            &SolverConfig {
                ged: GedMode::ExactBudget(2),
                ..Default::default()
            },
        );
        assert!(budget.ged >= exact.ged - 1e-9);
    }

    #[test]
    fn gcs_vector_follows_measure_order() {
        let (a, b) = pair();
        let measures = MeasureKind::paper_query_measures();
        let gcs = GcsVector::compute(&a, &b, &measures, &SolverConfig::default());
        assert_eq!(gcs.values.len(), 3);
        assert_eq!(gcs.values[0], 1.0); // DistEd first
        assert_eq!(gcs.values[1], 0.5); // DistMcs second
    }

    #[test]
    fn names_match_paper_notation() {
        assert_eq!(MeasureKind::EditDistance.name(), "DistEd");
        assert_eq!(MeasureKind::NormalizedEditDistance.name(), "DistN-Ed");
        assert_eq!(MeasureKind::Mcs.name(), "DistMcs");
        assert_eq!(MeasureKind::Gu.name(), "DistGu");
        assert_eq!(MeasureKind::LabelHistogram.name(), "DistLH");
    }

    #[test]
    fn label_histogram_measure() {
        let (a, b) = pair();
        let p = compute_primitives(&a, &b, &SolverConfig::default());
        // Labels: a has {A,B,C} + {-,-}; b has {A,B,W} + {-,-}:
        // mismatch = C vs W = 2; total = 3+3+2+2 = 10.
        assert_eq!(p.label_mismatch, 2);
        assert_eq!(p.label_total, 10);
        let lh = MeasureKind::LabelHistogram.from_primitives(&p);
        assert!((lh - 0.2).abs() < 1e-12);
        // Identity ⟹ zero.
        let pp = compute_primitives(&a, &a, &SolverConfig::default());
        assert_eq!(MeasureKind::LabelHistogram.from_primitives(&pp), 0.0);
    }

    #[test]
    fn label_histogram_under_bounds_ged() {
        // Every mismatched label occurrence needs ≥ half an edit op
        // (a relabel fixes one per side), so mismatch/2 ≤ GED.
        let (a, b) = pair();
        let p = compute_primitives(&a, &b, &SolverConfig::default());
        assert!(f64::from(p.label_mismatch) / 2.0 <= p.ged + 1e-9);
    }
}
