//! The graph database: a set of graphs sharing one label vocabulary.

use gss_graph::format::{parse_database, write_database};
use gss_graph::{Graph, GraphBuilder, GraphError, Vocabulary};

/// Identifier of a graph inside a [`GraphDatabase`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GraphId(pub usize);

impl GraphId {
    /// The id as a dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A database `D = {g1, …, gn}` of labeled graphs.
///
/// Owning the [`Vocabulary`] guarantees the workspace-wide invariant that
/// graphs compared against each other use the same label interning.
#[derive(Debug, Clone, Default)]
pub struct GraphDatabase {
    vocab: Vocabulary,
    graphs: Vec<Graph>,
}

impl GraphDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps pre-built parts (e.g. the reconstructed paper dataset). The
    /// caller asserts that every graph was built against `vocab`.
    pub fn from_parts(vocab: Vocabulary, graphs: Vec<Graph>) -> Self {
        GraphDatabase { vocab, graphs }
    }

    /// Parses a database from the `t/v/e` text format.
    pub fn from_text(input: &str) -> Result<Self, GraphError> {
        let mut vocab = Vocabulary::new();
        let graphs = parse_database(input, &mut vocab)?;
        Ok(GraphDatabase { vocab, graphs })
    }

    /// Serializes the database to the `t/v/e` text format.
    pub fn to_text(&self) -> String {
        write_database(&self.graphs, &self.vocab)
    }

    /// Adds a graph built through a builder wired to this database's
    /// vocabulary; returns its id.
    ///
    /// ```
    /// use gss_core::GraphDatabase;
    ///
    /// let mut db = GraphDatabase::new();
    /// let id = db
    ///     .add("triangle", |b| {
    ///         b.vertices(&["x", "y", "z"], "C").cycle(&["x", "y", "z"], "-")
    ///     })
    ///     .unwrap();
    /// assert_eq!(db.get(id).size(), 3);
    /// ```
    pub fn add<F>(&mut self, name: &str, build: F) -> Result<GraphId, GraphError>
    where
        F: for<'v> FnOnce(GraphBuilder<'v>) -> GraphBuilder<'v>,
    {
        let builder = GraphBuilder::new(name, &mut self.vocab);
        let graph = build(builder).build()?;
        Ok(self.push(graph))
    }

    /// Adds an already-built graph (must share this database's vocabulary).
    pub fn push(&mut self, graph: Graph) -> GraphId {
        let id = GraphId(self.graphs.len());
        self.graphs.push(graph);
        id
    }

    /// Builds a query graph against this database's vocabulary *without*
    /// storing it.
    pub fn build_query<F>(&mut self, name: &str, build: F) -> Result<Graph, GraphError>
    where
        F: for<'v> FnOnce(GraphBuilder<'v>) -> GraphBuilder<'v>,
    {
        let builder = GraphBuilder::new(name, &mut self.vocab);
        build(builder).build()
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when the database holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The graph behind an id.
    ///
    /// # Panics
    /// Panics for ids not created by this database.
    pub fn get(&self, id: GraphId) -> &Graph {
        &self.graphs[id.0]
    }

    /// Iterates `(id, graph)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (GraphId, &Graph)> + '_ {
        self.graphs.iter().enumerate().map(|(i, g)| (GraphId(i), g))
    }

    /// All graphs as a slice (paper order).
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Mutable access to the vocabulary (for wiring external builders).
    pub fn vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }

    /// Finds a graph id by name (first match).
    pub fn find_by_name(&self, name: &str) -> Option<GraphId> {
        self.graphs
            .iter()
            .position(|g| g.name() == name)
            .map(GraphId)
    }

    /// Groups the database into isomorphism classes: each inner vector holds
    /// the ids of mutually isomorphic graphs (singletons for unique graphs),
    /// ordered by first occurrence.
    ///
    /// Candidates are bucketed by Weisfeiler–Lehman fingerprint first, so
    /// the quadratic exact check only runs inside (typically tiny) buckets.
    pub fn isomorphism_classes(&self) -> Vec<Vec<GraphId>> {
        use std::collections::HashMap;
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, g) in self.graphs.iter().enumerate() {
            buckets
                .entry(gss_graph::wl::wl_fingerprint(g, 2))
                .or_default()
                .push(i);
        }
        let mut classes: Vec<Vec<GraphId>> = Vec::new();
        let mut bucket_keys: Vec<(usize, u64)> = buckets
            .iter()
            .map(|(&fp, members)| (members[0], fp))
            .collect();
        bucket_keys.sort(); // first-occurrence order
        for (_, fp) in bucket_keys {
            let members = &buckets[&fp];
            let mut local: Vec<Vec<GraphId>> = Vec::new();
            'member: for &i in members {
                for class in &mut local {
                    let representative = class[0];
                    if gss_iso::are_isomorphic(
                        &self.graphs[representative.index()],
                        &self.graphs[i],
                    ) {
                        class.push(GraphId(i));
                        continue 'member;
                    }
                }
                local.push(vec![GraphId(i)]);
            }
            classes.extend(local);
        }
        classes.sort_by_key(|c| c[0]);
        classes
    }

    /// Ids of graphs that are isomorphic duplicates of an earlier graph —
    /// what a deduplicating ingest would drop.
    pub fn duplicate_ids(&self) -> Vec<GraphId> {
        self.isomorphism_classes()
            .into_iter()
            .flat_map(|class| class.into_iter().skip(1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut db = GraphDatabase::new();
        let a = db.add("a", |b| b.vertex("x", "X")).unwrap();
        let b = db
            .add("b", |b| b.vertices(&["p", "q"], "P").edge("p", "q", "-"))
            .unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(a).name(), "a");
        assert_eq!(db.get(b).size(), 1);
        assert_eq!(db.find_by_name("b"), Some(b));
        assert_eq!(db.find_by_name("zzz"), None);
        assert!(!db.is_empty());
    }

    #[test]
    fn builder_errors_propagate() {
        let mut db = GraphDatabase::new();
        let err = db.add("bad", |b| b.edge("no", "pe", "-")).unwrap_err();
        assert!(matches!(err, GraphError::UnknownVertexName { .. }));
        assert!(db.is_empty(), "failed add must not insert");
    }

    #[test]
    fn shared_vocabulary_across_graphs() {
        let mut db = GraphDatabase::new();
        db.add("a", |b| b.vertex("x", "C")).unwrap();
        db.add("b", |b| b.vertex("y", "C")).unwrap();
        let la = db.get(GraphId(0)).vertex_label(gss_graph::VertexId::new(0));
        let lb = db.get(GraphId(1)).vertex_label(gss_graph::VertexId::new(0));
        assert_eq!(la, lb, "same string label must intern identically");
    }

    #[test]
    fn text_round_trip() {
        let mut db = GraphDatabase::new();
        db.add("mol", |b| {
            b.vertex("c1", "C").vertex("o", "O").edge("c1", "o", "=")
        })
        .unwrap();
        let text = db.to_text();
        let db2 = GraphDatabase::from_text(&text).unwrap();
        assert_eq!(db2.len(), 1);
        assert_eq!(db2.get(GraphId(0)).name(), "mol");
        assert_eq!(db2.to_text(), text);
    }

    #[test]
    fn isomorphism_classes_group_duplicates() {
        let mut db = GraphDatabase::new();
        // Two structurally identical triangles entered in different orders,
        // one distinct path, and an exact re-insertion.
        db.add("t1", |b| {
            b.vertices(&["a", "b", "c"], "C")
                .cycle(&["a", "b", "c"], "-")
        })
        .unwrap();
        db.add("p", |b| {
            b.vertices(&["a", "b", "c"], "C")
                .path(&["a", "b", "c"], "-")
        })
        .unwrap();
        db.add("t2", |b| {
            b.vertices(&["x", "y", "z"], "C")
                .cycle(&["z", "x", "y"], "-")
        })
        .unwrap();
        db.add("t3", |b| {
            b.vertices(&["q", "r", "s"], "C")
                .cycle(&["q", "r", "s"], "-")
        })
        .unwrap();

        let classes = db.isomorphism_classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0], vec![GraphId(0), GraphId(2), GraphId(3)]);
        assert_eq!(classes[1], vec![GraphId(1)]);
        assert_eq!(db.duplicate_ids(), vec![GraphId(2), GraphId(3)]);
    }

    #[test]
    fn isomorphism_classes_respect_labels() {
        let mut db = GraphDatabase::new();
        db.add("c", |b| b.vertices(&["a", "b"], "C").edge("a", "b", "-"))
            .unwrap();
        db.add("n", |b| b.vertices(&["a", "b"], "N").edge("a", "b", "-"))
            .unwrap();
        assert_eq!(db.isomorphism_classes().len(), 2);
        assert!(db.duplicate_ids().is_empty());
    }

    #[test]
    fn query_built_on_same_vocab() {
        let mut db = GraphDatabase::new();
        db.add("g", |b| b.vertex("x", "C")).unwrap();
        let q = db.build_query("q", |b| b.vertex("y", "C")).unwrap();
        assert_eq!(db.len(), 1, "query must not be stored");
        let lg = db.get(GraphId(0)).vertex_label(gss_graph::VertexId::new(0));
        let lq = q.vertex_label(gss_graph::VertexId::new(0));
        assert_eq!(lg, lq);
    }
}
