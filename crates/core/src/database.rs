//! The graph database: a set of graphs sharing one label vocabulary.

use std::sync::{Arc, OnceLock};

use gss_graph::format::{parse_database, write_database};
use gss_graph::stats::GraphStats;
use gss_graph::{Graph, GraphBuilder, GraphError, Vocabulary};

/// Identifier of a graph inside a [`GraphDatabase`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GraphId(pub usize);

impl GraphId {
    /// The id as a dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A database `D = {g1, …, gn}` of labeled graphs.
///
/// Owning the [`Vocabulary`] guarantees the workspace-wide invariant that
/// graphs compared against each other use the same label interning.
///
/// Every stored graph also carries a lazily-built, cached
/// [`GraphStats`] summary ([`GraphDatabase::stats`]): label multisets,
/// edge-class multiset, sorted degree sequence, WL fingerprint and
/// connectivity — computed at most **once per graph for the lifetime of
/// the database** instead of once per candidate per scan. The mutating
/// APIs keep the cache aligned: [`GraphDatabase::push`] adds a fresh
/// cell, [`GraphDatabase::remove`] drops one, and
/// [`GraphDatabase::replace`] resets the touched cell — so a computed
/// summary never goes stale. Clones share the cells, which is what makes
/// the `gss-store` MVCC layer cheap: a new epoch clones the database and
/// only the touched graphs lose their cached summaries.
///
/// # Epochs
///
/// A database carries a monotonically increasing **epoch** counter
/// ([`GraphDatabase::epoch`], 0 for freshly loaded/built databases) that
/// is folded into [`GraphDatabase::fingerprint`]. The `gss-store`
/// snapshot store bumps it on every mutation batch, so two snapshots
/// never share a fingerprint — even when a remove+insert round-trip
/// reproduces byte-identical content — which is what keeps
/// fingerprint-keyed caches (the server's result cache) epoch-consistent.
#[derive(Debug, Clone, Default)]
pub struct GraphDatabase {
    vocab: Vocabulary,
    graphs: Vec<Graph>,
    /// Mutation-batch generation this content belongs to (see type docs).
    epoch: u64,
    /// One cache cell per graph, aligned with `graphs`. `Arc` so clones
    /// share already-computed summaries; `OnceLock` for thread-safe
    /// fill-once semantics under the parallel scans.
    // gss-lint: exempt(GraphDatabase::stats) — derived cache: every summary is a pure function of `graphs` + `vocab`, which the fingerprint already covers; hashing fill state would make the key depend on scan history
    stats: Vec<Arc<OnceLock<GraphStats>>>,
}

impl GraphDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps pre-built parts (e.g. the reconstructed paper dataset). The
    /// caller asserts that every graph was built against `vocab`.
    pub fn from_parts(vocab: Vocabulary, graphs: Vec<Graph>) -> Self {
        let stats = graphs.iter().map(|_| Arc::default()).collect();
        GraphDatabase {
            vocab,
            graphs,
            epoch: 0,
            stats,
        }
    }

    /// Parses a database from the `t/v/e` text format.
    pub fn from_text(input: &str) -> Result<Self, GraphError> {
        let mut vocab = Vocabulary::new();
        let graphs = parse_database(input, &mut vocab)?;
        Ok(GraphDatabase::from_parts(vocab, graphs))
    }

    /// Serializes the database to the `t/v/e` text format.
    pub fn to_text(&self) -> String {
        write_database(&self.graphs, &self.vocab)
    }

    /// Adds a graph built through a builder wired to this database's
    /// vocabulary; returns its id.
    ///
    /// ```
    /// use gss_core::GraphDatabase;
    ///
    /// let mut db = GraphDatabase::new();
    /// let id = db
    ///     .add("triangle", |b| {
    ///         b.vertices(&["x", "y", "z"], "C").cycle(&["x", "y", "z"], "-")
    ///     })
    ///     .unwrap();
    /// assert_eq!(db.get(id).size(), 3);
    /// ```
    pub fn add<F>(&mut self, name: &str, build: F) -> Result<GraphId, GraphError>
    where
        F: for<'v> FnOnce(GraphBuilder<'v>) -> GraphBuilder<'v>,
    {
        let builder = GraphBuilder::new(name, &mut self.vocab);
        let graph = build(builder).build()?;
        Ok(self.push(graph))
    }

    /// Adds an already-built graph (must share this database's vocabulary).
    pub fn push(&mut self, graph: Graph) -> GraphId {
        let id = GraphId(self.graphs.len());
        self.graphs.push(graph);
        self.stats.push(Arc::default());
        id
    }

    /// Removes a graph, compacting the dense id space: every graph after
    /// it shifts down by one id. Returns the removed graph. Derived
    /// artifacts holding old ids (indexes, snapshots) must be remapped or
    /// rebuilt — the `gss-store` mutation path does exactly that and bumps
    /// the epoch so stale fingerprints stop validating.
    ///
    /// # Panics
    /// Panics for ids not created by this database.
    pub fn remove(&mut self, id: GraphId) -> Graph {
        self.stats.remove(id.0);
        self.graphs.remove(id.0)
    }

    /// Replaces the graph behind an id in place (same id, new content),
    /// resetting its cached stats cell. Returns the previous graph. The
    /// replacement must share this database's vocabulary.
    ///
    /// # Panics
    /// Panics for ids not created by this database.
    pub fn replace(&mut self, id: GraphId, graph: Graph) -> Graph {
        self.stats[id.0] = Arc::default();
        std::mem::replace(&mut self.graphs[id.0], graph)
    }

    /// Builds a query graph against this database's vocabulary *without*
    /// storing it.
    pub fn build_query<F>(&mut self, name: &str, build: F) -> Result<Graph, GraphError>
    where
        F: for<'v> FnOnce(GraphBuilder<'v>) -> GraphBuilder<'v>,
    {
        let builder = GraphBuilder::new(name, &mut self.vocab);
        build(builder).build()
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when the database holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The graph behind an id.
    ///
    /// # Panics
    /// Panics for ids not created by this database.
    pub fn get(&self, id: GraphId) -> &Graph {
        &self.graphs[id.0]
    }

    /// The cached [`GraphStats`] summary of a stored graph, computed on
    /// first access and reused by every later scan (and by clones of this
    /// database).
    ///
    /// # Panics
    /// Panics for ids not created by this database.
    pub fn stats(&self, id: GraphId) -> &GraphStats {
        self.stats[id.0].get_or_init(|| GraphStats::compute(&self.graphs[id.0]))
    }

    /// Eagerly fills every stats cache cell — useful at load time in
    /// long-lived processes (e.g. `gss-server`) so the first query does not
    /// pay the whole database's summary cost.
    pub fn precompute_stats(&self) {
        for i in 0..self.graphs.len() {
            let _ = self.stats(GraphId(i));
        }
    }

    /// Iterates `(id, graph)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (GraphId, &Graph)> + '_ {
        self.graphs.iter().enumerate().map(|(i, g)| (GraphId(i), g))
    }

    /// All graphs as a slice (paper order).
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Mutable access to the vocabulary (for wiring external builders).
    pub fn vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }

    /// The mutation epoch this content belongs to (0 for freshly
    /// loaded/built databases; bumped by the `gss-store` snapshot store
    /// on every mutation batch). Folded into
    /// [`GraphDatabase::fingerprint`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets the mutation epoch (see [`GraphDatabase::epoch`]). Intended
    /// for the snapshot store's batch-apply path; changing the epoch
    /// changes the fingerprint, so derived artifacts built against the
    /// old epoch stop validating.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Finds a graph id by name (first match).
    pub fn find_by_name(&self, name: &str) -> Option<GraphId> {
        self.graphs
            .iter()
            .position(|g| g.name() == name)
            .map(GraphId)
    }

    /// Groups the database into isomorphism classes: each inner vector holds
    /// the ids of mutually isomorphic graphs (singletons for unique graphs),
    /// ordered by first occurrence.
    ///
    /// Candidates are bucketed by Weisfeiler–Lehman fingerprint first, so
    /// the quadratic exact check only runs inside (typically tiny) buckets.
    pub fn isomorphism_classes(&self) -> Vec<Vec<GraphId>> {
        use std::collections::HashMap;
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, g) in self.graphs.iter().enumerate() {
            buckets
                .entry(gss_graph::wl::wl_fingerprint(g, 2))
                .or_default()
                .push(i);
        }
        let mut classes: Vec<Vec<GraphId>> = Vec::new();
        let mut bucket_keys: Vec<(usize, u64)> = buckets
            .iter()
            .map(|(&fp, members)| (members[0], fp))
            .collect();
        bucket_keys.sort(); // first-occurrence order
        for (_, fp) in bucket_keys {
            let members = &buckets[&fp];
            let mut local: Vec<Vec<GraphId>> = Vec::new();
            'member: for &i in members {
                for class in &mut local {
                    let representative = class[0];
                    if gss_iso::are_isomorphic(
                        &self.graphs[representative.index()],
                        &self.graphs[i],
                    ) {
                        class.push(GraphId(i));
                        continue 'member;
                    }
                }
                local.push(vec![GraphId(i)]);
            }
            classes.extend(local);
        }
        classes.sort_by_key(|c| c[0]);
        classes
    }

    /// Ids of graphs that are isomorphic duplicates of an earlier graph —
    /// what a deduplicating ingest would drop.
    pub fn duplicate_ids(&self) -> Vec<GraphId> {
        self.isomorphism_classes()
            .into_iter()
            .flat_map(|class| class.into_iter().skip(1))
            .collect()
    }

    /// A structural fingerprint of the database: a 64-bit hash of the
    /// mutation epoch plus every graph's vertex labels and edge list in
    /// insertion order.
    ///
    /// Derived artifacts (e.g. a serialized `gss-index` pivot index) store
    /// this value and refuse to load against a database whose content or
    /// ordering has changed. Renaming graphs does not change the
    /// fingerprint; any structural or label edit does, and so does a
    /// mutation-epoch bump — two live-store snapshots never collide even
    /// when a mutation round-trip restores identical content.
    pub fn fingerprint(&self) -> u64 {
        let mut h = codec::Fnv64::new();
        h.write_u64(self.epoch);
        // Labels hash as their vocabulary strings, not their interned ids:
        // ids are vocabulary-relative, and two different databases can
        // intern different strings to the same dense ids.
        let label = |h: &mut codec::Fnv64, l: gss_graph::Label| {
            let name = self.vocab.name(l).unwrap_or("");
            h.write_u64(name.len() as u64);
            h.write(name.as_bytes());
        };
        h.write_u64(self.graphs.len() as u64);
        for g in &self.graphs {
            h.write_u64(g.order() as u64);
            h.write_u64(g.size() as u64);
            for v in g.vertices() {
                label(&mut h, g.vertex_label(v));
            }
            for e in g.edges() {
                let edge = g.edge(e);
                h.write_u64(edge.u.index() as u64);
                h.write_u64(edge.v.index() as u64);
                label(&mut h, edge.label);
            }
        }
        h.finish()
    }
}

pub mod codec {
    //! Versioned binary serialization for database-derived artifacts.
    //!
    //! A tiny dependency-free little-endian codec with the framing every
    //! persistent artifact in the workspace shares: an 8-byte magic, a
    //! `u32` format version, a length-delimited payload and a trailing
    //! FNV-1a checksum. [`Writer`] produces the frame, [`Reader`] verifies
    //! magic/version/checksum up front so consumers only ever decode
    //! integrity-checked bytes. The first user is the `gss-index` pivot
    //! index (`PivotIndex::{to_bytes, from_bytes}`).

    use std::fmt;

    /// Streaming FNV-1a 64-bit hasher (checksums and fingerprints).
    #[derive(Clone, Debug)]
    pub struct Fnv64(u64);

    impl Fnv64 {
        /// The standard FNV-1a offset basis.
        pub fn new() -> Self {
            Fnv64(0xcbf2_9ce4_8422_2325)
        }

        /// Absorbs raw bytes.
        pub fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }

        /// Absorbs a `u64` (little-endian).
        pub fn write_u64(&mut self, v: u64) {
            self.write(&v.to_le_bytes());
        }

        /// The digest so far.
        pub fn finish(&self) -> u64 {
            self.0
        }
    }

    impl Default for Fnv64 {
        fn default() -> Self {
            Fnv64::new()
        }
    }

    /// Why a binary artifact failed to decode.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum CodecError {
        /// The magic bytes do not match the expected artifact type.
        BadMagic,
        /// The payload checksum does not match (truncation or corruption).
        BadChecksum,
        /// The reader ran past the end of the payload.
        Truncated,
        /// The payload has bytes left after the last expected field.
        TrailingBytes,
        /// The format version is newer than this build understands.
        UnsupportedVersion {
            /// Version found in the artifact header.
            found: u32,
            /// Highest version this build can read.
            supported: u32,
        },
        /// A field decoded to a value that violates the format's invariants.
        Invalid(String),
    }

    impl fmt::Display for CodecError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                CodecError::BadMagic => write!(f, "not a recognized artifact (bad magic)"),
                CodecError::BadChecksum => write!(f, "checksum mismatch (corrupt or truncated)"),
                CodecError::Truncated => write!(f, "unexpected end of data"),
                CodecError::TrailingBytes => write!(f, "trailing bytes after payload"),
                CodecError::UnsupportedVersion { found, supported } => write!(
                    f,
                    "format version {found} is newer than supported version {supported}"
                ),
                CodecError::Invalid(msg) => write!(f, "invalid field: {msg}"),
            }
        }
    }

    impl std::error::Error for CodecError {}

    /// Builds a framed artifact: magic, version, payload, FNV-1a checksum.
    #[derive(Debug)]
    pub struct Writer {
        buf: Vec<u8>,
    }

    impl Writer {
        /// Starts a frame with the given 8-byte magic and format version.
        pub fn new(magic: &[u8; 8], version: u32) -> Self {
            let mut buf = Vec::with_capacity(64);
            buf.extend_from_slice(magic);
            buf.extend_from_slice(&version.to_le_bytes());
            Writer { buf }
        }

        /// Appends a `u32`.
        pub fn u32(&mut self, v: u32) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        /// Appends a `u64`.
        pub fn u64(&mut self, v: u64) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        /// Appends a `usize` as `u64`.
        pub fn usize(&mut self, v: usize) {
            self.u64(v as u64);
        }

        /// Appends an `f64` by bit pattern (exact round-trip).
        pub fn f64(&mut self, v: f64) {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }

        /// Appends length-delimited raw bytes (`u64` length, then the
        /// bytes verbatim).
        pub fn bytes(&mut self, v: &[u8]) {
            self.usize(v.len());
            self.buf.extend_from_slice(v);
        }

        /// Appends a length-delimited UTF-8 string.
        pub fn str(&mut self, v: &str) {
            self.bytes(v.as_bytes());
        }

        /// Finishes the frame: appends the checksum of everything written
        /// (magic and version included) and returns the bytes.
        pub fn finish(self) -> Vec<u8> {
            let mut h = Fnv64::new();
            h.write(&self.buf);
            let mut buf = self.buf;
            buf.extend_from_slice(&h.finish().to_le_bytes());
            buf
        }
    }

    /// Decodes a framed artifact produced by [`Writer`].
    #[derive(Debug)]
    pub struct Reader<'a> {
        data: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// Verifies magic, version and checksum; returns the reader
        /// positioned at the payload plus the artifact's version.
        ///
        /// `supported` is the highest version this build understands;
        /// older versions are the caller's job to branch on.
        pub fn new(
            data: &'a [u8],
            magic: &[u8; 8],
            supported: u32,
        ) -> Result<(Self, u32), CodecError> {
            if data.len() < 8 + 4 + 8 {
                return Err(if data.get(..8) == Some(&magic[..]) {
                    CodecError::BadChecksum
                } else {
                    CodecError::BadMagic
                });
            }
            if &data[..8] != magic {
                return Err(CodecError::BadMagic);
            }
            let (payload, tail) = data.split_at(data.len() - 8);
            let mut h = Fnv64::new();
            h.write(payload);
            if tail != h.finish().to_le_bytes() {
                return Err(CodecError::BadChecksum);
            }
            let version = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
            if version > supported {
                return Err(CodecError::UnsupportedVersion {
                    found: version,
                    supported,
                });
            }
            Ok((
                Reader {
                    data: payload,
                    pos: 12,
                },
                version,
            ))
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
            let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
            if end > self.data.len() {
                return Err(CodecError::Truncated);
            }
            let s = &self.data[self.pos..end];
            self.pos = end;
            Ok(s)
        }

        /// Reads a `u32`.
        pub fn u32(&mut self) -> Result<u32, CodecError> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
        }

        /// Reads a `u64`.
        pub fn u64(&mut self) -> Result<u64, CodecError> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
        }

        /// Reads a `usize` (stored as `u64`), rejecting values that do not
        /// fit the platform.
        pub fn usize(&mut self) -> Result<usize, CodecError> {
            usize::try_from(self.u64()?)
                .map_err(|_| CodecError::Invalid("length exceeds platform usize".into()))
        }

        /// Reads an `f64` by bit pattern.
        pub fn f64(&mut self) -> Result<f64, CodecError> {
            Ok(f64::from_bits(self.u64()?))
        }

        /// Reads length-delimited raw bytes written by [`Writer::bytes`].
        pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
            let len = self.usize()?;
            self.take(len)
        }

        /// Reads a length-delimited UTF-8 string written by
        /// [`Writer::str`], rejecting invalid UTF-8.
        pub fn str(&mut self) -> Result<&'a str, CodecError> {
            std::str::from_utf8(self.bytes()?)
                .map_err(|_| CodecError::Invalid("string field is not valid UTF-8".into()))
        }

        /// Asserts the payload was consumed exactly.
        pub fn finish(self) -> Result<(), CodecError> {
            if self.pos == self.data.len() {
                Ok(())
            } else {
                Err(CodecError::TrailingBytes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut db = GraphDatabase::new();
        let a = db.add("a", |b| b.vertex("x", "X")).unwrap();
        let b = db
            .add("b", |b| b.vertices(&["p", "q"], "P").edge("p", "q", "-"))
            .unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(a).name(), "a");
        assert_eq!(db.get(b).size(), 1);
        assert_eq!(db.find_by_name("b"), Some(b));
        assert_eq!(db.find_by_name("zzz"), None);
        assert!(!db.is_empty());
    }

    #[test]
    fn builder_errors_propagate() {
        let mut db = GraphDatabase::new();
        let err = db.add("bad", |b| b.edge("no", "pe", "-")).unwrap_err();
        assert!(matches!(err, GraphError::UnknownVertexName { .. }));
        assert!(db.is_empty(), "failed add must not insert");
    }

    #[test]
    fn shared_vocabulary_across_graphs() {
        let mut db = GraphDatabase::new();
        db.add("a", |b| b.vertex("x", "C")).unwrap();
        db.add("b", |b| b.vertex("y", "C")).unwrap();
        let la = db.get(GraphId(0)).vertex_label(gss_graph::VertexId::new(0));
        let lb = db.get(GraphId(1)).vertex_label(gss_graph::VertexId::new(0));
        assert_eq!(la, lb, "same string label must intern identically");
    }

    #[test]
    fn text_round_trip() {
        let mut db = GraphDatabase::new();
        db.add("mol", |b| {
            b.vertex("c1", "C").vertex("o", "O").edge("c1", "o", "=")
        })
        .unwrap();
        let text = db.to_text();
        let db2 = GraphDatabase::from_text(&text).unwrap();
        assert_eq!(db2.len(), 1);
        assert_eq!(db2.get(GraphId(0)).name(), "mol");
        assert_eq!(db2.to_text(), text);
    }

    #[test]
    fn isomorphism_classes_group_duplicates() {
        let mut db = GraphDatabase::new();
        // Two structurally identical triangles entered in different orders,
        // one distinct path, and an exact re-insertion.
        db.add("t1", |b| {
            b.vertices(&["a", "b", "c"], "C")
                .cycle(&["a", "b", "c"], "-")
        })
        .unwrap();
        db.add("p", |b| {
            b.vertices(&["a", "b", "c"], "C")
                .path(&["a", "b", "c"], "-")
        })
        .unwrap();
        db.add("t2", |b| {
            b.vertices(&["x", "y", "z"], "C")
                .cycle(&["z", "x", "y"], "-")
        })
        .unwrap();
        db.add("t3", |b| {
            b.vertices(&["q", "r", "s"], "C")
                .cycle(&["q", "r", "s"], "-")
        })
        .unwrap();

        let classes = db.isomorphism_classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0], vec![GraphId(0), GraphId(2), GraphId(3)]);
        assert_eq!(classes[1], vec![GraphId(1)]);
        assert_eq!(db.duplicate_ids(), vec![GraphId(2), GraphId(3)]);
    }

    #[test]
    fn isomorphism_classes_respect_labels() {
        let mut db = GraphDatabase::new();
        db.add("c", |b| b.vertices(&["a", "b"], "C").edge("a", "b", "-"))
            .unwrap();
        db.add("n", |b| b.vertices(&["a", "b"], "N").edge("a", "b", "-"))
            .unwrap();
        assert_eq!(db.isomorphism_classes().len(), 2);
        assert!(db.duplicate_ids().is_empty());
    }

    #[test]
    fn codec_round_trips_and_rejects_corruption() {
        use codec::{CodecError, Reader, Writer};
        const MAGIC: &[u8; 8] = b"GSSTEST\0";
        let mut w = Writer::new(MAGIC, 3);
        w.u32(7);
        w.u64(u64::MAX);
        w.usize(42);
        w.f64(-0.125);
        let bytes = w.finish();

        let (mut r, version) = Reader::new(&bytes, MAGIC, 3).unwrap();
        assert_eq!(version, 3);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap(), -0.125);
        r.finish().unwrap();

        // Underread is detected by finish, overread by the accessor.
        let (r, _) = Reader::new(&bytes, MAGIC, 3).unwrap();
        assert_eq!(r.finish().unwrap_err(), CodecError::TrailingBytes);
        let (mut r2, _) = Reader::new(&bytes, MAGIC, 3).unwrap();
        for _ in 0..4 {
            let _ = r2.u64();
        }
        assert_eq!(r2.u64().unwrap_err(), CodecError::Truncated);

        // Wrong magic, future version, flipped bit, truncation.
        assert_eq!(
            Reader::new(&bytes, b"OTHERMAG", 3).unwrap_err(),
            CodecError::BadMagic
        );
        assert_eq!(
            Reader::new(&bytes, MAGIC, 2).unwrap_err(),
            CodecError::UnsupportedVersion {
                found: 3,
                supported: 2
            }
        );
        let mut corrupt = bytes.clone();
        corrupt[14] ^= 1;
        assert_eq!(
            Reader::new(&corrupt, MAGIC, 3).unwrap_err(),
            CodecError::BadChecksum
        );
        assert_eq!(
            Reader::new(&bytes[..bytes.len() - 1], MAGIC, 3).unwrap_err(),
            CodecError::BadChecksum
        );
        assert_eq!(
            Reader::new(&bytes[..4], MAGIC, 3).unwrap_err(),
            CodecError::BadMagic
        );
    }

    #[test]
    fn codec_strings_and_bytes_round_trip() {
        use codec::{CodecError, Reader, Writer};
        const MAGIC: &[u8; 8] = b"GSSTEST\0";
        let mut w = Writer::new(MAGIC, 1);
        w.str("t a\nv 0 C\n");
        w.bytes(&[0, 255, 7]);
        w.str("");
        let bytes = w.finish();

        let (mut r, _) = Reader::new(&bytes, MAGIC, 1).unwrap();
        assert_eq!(r.str().unwrap(), "t a\nv 0 C\n");
        assert_eq!(r.bytes().unwrap(), &[0, 255, 7]);
        assert_eq!(r.str().unwrap(), "");
        r.finish().unwrap();

        // A length that runs past the payload is a truncation, and
        // invalid UTF-8 is rejected as a typed error.
        let mut w = Writer::new(MAGIC, 1);
        w.usize(1_000_000);
        let bytes = w.finish();
        let (mut r, _) = Reader::new(&bytes, MAGIC, 1).unwrap();
        assert_eq!(r.bytes().unwrap_err(), CodecError::Truncated);
        let mut w = Writer::new(MAGIC, 1);
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.finish();
        let (mut r, _) = Reader::new(&bytes, MAGIC, 1).unwrap();
        assert!(matches!(r.str().unwrap_err(), CodecError::Invalid(_)));
    }

    #[test]
    fn fingerprint_tracks_structure_not_names() {
        let mut db = GraphDatabase::new();
        db.add("a", |b| b.vertices(&["x", "y"], "C").edge("x", "y", "-"))
            .unwrap();
        let fp = db.fingerprint();
        assert_eq!(fp, db.fingerprint(), "deterministic");

        // Renaming a graph leaves the fingerprint alone…
        let mut renamed = db.clone();
        let g = renamed.get(GraphId(0)).clone();
        let mut g2 = g.clone();
        g2.set_name("other");
        renamed = GraphDatabase::from_parts(renamed.vocab().clone(), vec![g2]);
        assert_eq!(renamed.fingerprint(), fp);

        // …while adding a graph or editing structure changes it.
        let mut grown = db.clone();
        grown.add("b", |b| b.vertex("z", "N")).unwrap();
        assert_ne!(grown.fingerprint(), fp);
        let mut edited = GraphDatabase::new();
        edited
            .add("a", |b| b.vertices(&["x", "y"], "C").edge("x", "y", "="))
            .unwrap();
        assert_ne!(edited.fingerprint(), fp);
    }

    #[test]
    fn remove_compacts_ids_and_replace_resets_stats() {
        let mut db = GraphDatabase::new();
        db.add("a", |b| b.vertex("x", "A")).unwrap();
        db.add("b", |b| b.vertices(&["p", "q"], "B").edge("p", "q", "-"))
            .unwrap();
        db.add("c", |b| b.vertex("y", "C")).unwrap();
        let snapshot = db.clone();

        let gone = db.remove(GraphId(1));
        assert_eq!(gone.name(), "b");
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(GraphId(1)).name(), "c", "ids compact");
        assert_eq!(db.stats(GraphId(1)).order, 1);
        // The clone taken before the removal is untouched.
        assert_eq!(snapshot.len(), 3);
        assert_eq!(snapshot.get(GraphId(1)).name(), "b");

        let replacement = db
            .build_query("a2", |b| b.vertices(&["u", "v"], "A").edge("u", "v", "-"))
            .unwrap();
        let old = db.replace(GraphId(0), replacement);
        assert_eq!(old.name(), "a");
        assert_eq!(db.stats(GraphId(0)).order, 2, "stats cell was reset");
        assert_eq!(snapshot.stats(GraphId(0)).order, 1, "clone keeps its own");
    }

    #[test]
    fn epoch_is_folded_into_the_fingerprint() {
        let mut db = GraphDatabase::new();
        db.add("a", |b| b.vertices(&["x", "y"], "C").edge("x", "y", "-"))
            .unwrap();
        assert_eq!(db.epoch(), 0, "fresh databases start at epoch 0");
        let fp0 = db.fingerprint();

        // Same content at a later epoch fingerprints differently…
        let mut bumped = db.clone();
        bumped.set_epoch(7);
        assert_eq!(bumped.epoch(), 7);
        assert_ne!(bumped.fingerprint(), fp0);
        // …deterministically…
        assert_eq!(bumped.fingerprint(), bumped.fingerprint());
        // …and restoring the epoch restores the fingerprint.
        bumped.set_epoch(0);
        assert_eq!(bumped.fingerprint(), fp0);
    }

    #[test]
    fn stats_cache_matches_fresh_computation_and_tracks_pushes() {
        let mut db = GraphDatabase::new();
        let a = db
            .add("a", |b| {
                b.vertices(&["x", "y", "z"], "C")
                    .cycle(&["x", "y", "z"], "-")
            })
            .unwrap();
        let cached = db.stats(a).clone();
        assert_eq!(cached, GraphStats::compute(db.get(a)));
        assert!(cached.connected);
        assert_eq!(cached.size, 3);

        // Pushing more graphs leaves earlier cells intact and adds new ones.
        let b = db.add("b", |b| b.vertex("q", "N")).unwrap();
        assert_eq!(db.stats(a), &cached);
        assert_eq!(db.stats(b).order, 1);
        assert!(!db.stats(b).connected || db.get(b).order() <= 1);

        // Clones share computed cells (same values either way).
        let clone = db.clone();
        assert_eq!(clone.stats(a), &cached);
        db.precompute_stats();
        assert_eq!(db.stats(b), clone.stats(b));
    }

    #[test]
    fn query_built_on_same_vocab() {
        let mut db = GraphDatabase::new();
        db.add("g", |b| b.vertex("x", "C")).unwrap();
        let q = db.build_query("q", |b| b.vertex("y", "C")).unwrap();
        assert_eq!(db.len(), 1, "query must not be stored");
        let lg = db.get(GraphId(0)).vertex_label(gss_graph::VertexId::new(0));
        let lq = q.vertex_label(gss_graph::VertexId::new(0));
        assert_eq!(lg, lq);
    }
}
